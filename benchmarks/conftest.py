"""Shared fixtures for the benchmark suite.

Every experiment benchmark runs its figure once (``benchmark.pedantic``,
one round) at a reduced-but-representative scale, records the wall time via
pytest-benchmark, and writes the regenerated figure data to
``benchmarks/results/<exp_id>.txt`` so a run leaves the paper-shaped tables
behind for inspection.
"""

import pathlib

import pytest

from repro.experiments.base import ExperimentResult
from repro.experiments.config import Profile

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

BENCH_PROFILE = Profile(
    name="bench",
    n_topologies=2,
    trials_per_topology=2,
    group_sizes=(4, 8, 16, 28),
    loads=(0.01, 0.04, 0.08, 0.12),
    load_duration=40_000,
    load_warmup=4_000,
    load_degrees=(4, 16),
)


@pytest.fixture
def bench_profile() -> Profile:
    return BENCH_PROFILE


@pytest.fixture
def record_result():
    """Write an experiment's regenerated table next to the benchmarks."""

    def _record(result: ExperimentResult) -> ExperimentResult:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{result.exp_id}.txt"
        path.write_text(result.to_table() + "\n")
        return result

    return _record
