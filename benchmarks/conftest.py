"""Shared fixtures for the benchmark suite.

Every experiment benchmark runs its figure once (``benchmark.pedantic``,
one round) at a reduced-but-representative scale, records the wall time via
pytest-benchmark, and writes the regenerated figure data to
``benchmarks/results/<exp_id>.txt`` so a run leaves the paper-shaped tables
behind for inspection.

The figure benchmarks go through the experiment runner, so the environment
controls their execution policy:

* ``REPRO_BENCH_JOBS`` -- worker processes per experiment (default 1).
  Results are byte-identical across jobs counts; only the wall time moves.
* ``REPRO_BENCH_CACHE`` -- cache directory.  Leave unset (the default) for
  honest timings; set it to time the warm-cache path instead.
"""

import os
import pathlib

import pytest

from repro.experiments.base import ExperimentResult
from repro.experiments.config import Profile
from repro.experiments.registry import run_experiment

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

BENCH_PROFILE = Profile(
    name="bench",
    n_topologies=2,
    trials_per_topology=2,
    group_sizes=(4, 8, 16, 28),
    loads=(0.01, 0.04, 0.08, 0.12),
    load_duration=40_000,
    load_warmup=4_000,
    load_degrees=(4, 16),
)


@pytest.fixture
def bench_profile() -> Profile:
    return BENCH_PROFILE


@pytest.fixture
def bench_run(bench_profile):
    """Run an experiment under the env-configured execution policy."""
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    cache_dir = os.environ.get("REPRO_BENCH_CACHE") or None

    def _run(exp_id: str) -> ExperimentResult:
        return run_experiment(
            exp_id, bench_profile, jobs=jobs, cache_dir=cache_dir
        )

    return _run


@pytest.fixture
def record_result():
    """Write an experiment's regenerated table next to the benchmarks."""

    def _record(result: ExperimentResult) -> ExperimentResult:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{result.exp_id}.txt"
        path.write_text(result.to_table() + "\n")
        return result

    return _record
