"""Group-churn repair cost: incremental patches vs replan-every-change.

Drives one seeded join/leave stream through two dynamic groups -- one
that grafts/prunes its multicast plan in place, one that replans from
scratch on every membership change -- and records, per (scheme, group
size, churn rate):

* wall-clock time spent applying the membership changes on each side
  (the planner-work saving incremental repair buys);
* the patched side's replan fraction (how often a patch fell back to a
  full replan: legality, quality bound, or epoch staleness);
* patched-vs-fresh plan-cost ratios from the paired harness (the twin's
  plan *is* the fresh plan, so the quality drift is measured exactly);
* the delivery-identity verdict -- the differential that makes the
  timing comparison meaningful at all.

Run directly to produce the pinned sweep artifact::

    PYTHONPATH=src python benchmarks/bench_groups.py [-o BENCH_groups.json]

The ``smoke`` tests at the bottom are the CI churn regression baseline
(CI runs ``pytest benchmarks/bench_groups.py -k smoke``): a fixed-seed
paired run that must keep delivery sets identical with a bounded replan
fraction, plus timings for the artifact history.
"""

import argparse
import json
import time

from repro.groups import DynamicGroupManager, churn_stream, run_paired_churn
from repro.groups.churn import derive_seed
from repro.params import SimParams
from repro.sim.network import SimNetwork
from repro.topology.irregular import generate_irregular_topology

SWEEP_SCHEMES = ("tree", "path")
SWEEP_SIZES = (4, 8, 16)
SWEEP_RATES = (0.5, 1.0)
SWEEP_STEPS = 120
SWEEP_SEED = 11


def _build(seed: int, group_size: int):
    """One network + initial membership + churn stream, all from the seed."""
    import random

    params = SimParams()
    topo = generate_irregular_topology(params, seed=derive_seed(seed, "topology"))
    params = params.replace(
        num_switches=topo.num_switches, num_nodes=topo.num_nodes
    )
    net = SimNetwork(topo, params)
    pool = [n for n in range(params.num_nodes) if n != 0]
    rng = random.Random(derive_seed(seed, "members"))
    initial = tuple(sorted(rng.sample(pool, group_size)))
    return net, params, pool, initial


def time_membership_changes(
    scheme: str, group_size: int, rate: float, steps: int, seed: int
) -> dict:
    """Wall time of one churn stream's membership changes, patched vs replan.

    Both sides run on identical fresh networks and apply the identical
    event stream; only the repair flag differs, so the timing difference
    is exactly the planner work the patches avoid.
    """
    sides = {}
    for label, repair in (("patched", True), ("replanned", False)):
        net, _params, pool, initial = _build(seed, group_size)
        events = churn_stream(
            seed, steps, tuple(pool), 0, initial, rate
        )
        g = DynamicGroupManager(net, default_scheme=scheme).create(
            0, list(initial), repair=repair
        )
        t0 = time.perf_counter()
        for ev in events:
            if ev.op == "join":
                g.join(ev.node)
            else:
                g.leave(ev.node)
        elapsed = time.perf_counter() - t0
        sides[label] = {
            "churn_s": round(elapsed, 4),
            "events": len(events),
            "replans": g.stats.replans,
        }
    patched, replanned = sides["patched"], sides["replanned"]
    return {
        "patched_churn_s": patched["churn_s"],
        "replanned_churn_s": replanned["churn_s"],
        "events": patched["events"],
        "patched_replans": patched["replans"],
        "speedup": round(
            replanned["churn_s"] / patched["churn_s"], 3
        ) if patched["churn_s"] else None,
    }


def run_sweep(
    schemes=SWEEP_SCHEMES, sizes=SWEEP_SIZES, rates=SWEEP_RATES,
    steps=SWEEP_STEPS, seed=SWEEP_SEED,
) -> dict:
    results = []
    for scheme in schemes:
        for size in sizes:
            for rate in rates:
                timing = time_membership_changes(
                    scheme, size, rate, steps, seed
                )
                report = run_paired_churn(
                    SimParams(), scheme, seed=seed, steps=steps,
                    group_size=size, churn_rate=rate, table_capacity=8,
                )
                if not report.delivery_identical:
                    raise AssertionError(
                        f"patched and replanned deliveries diverged for "
                        f"{scheme}/size={size}/rate={rate}: "
                        f"{report.mismatches[:3]}"
                    )
                results.append({
                    "scheme": scheme,
                    "group_size": size,
                    "churn_rate": rate,
                    **timing,
                    "replan_fraction": round(
                        report.patched_stats["replan_fraction"], 4
                    ),
                    "max_cost_ratio": round(report.max_cost_ratio, 4),
                    "mean_cost_ratio": round(report.mean_cost_ratio, 4),
                    "delivery_identical": report.delivery_identical,
                    "verify_failures": report.verify_failures,
                    "tables": report.table_stats,
                    "digest": report.digest(),
                })
    return {
        "bench": "group-churn",
        "steps": steps,
        "seed": seed,
        "note": (
            "speedup compares wall time of membership changes only "
            "(patched grafts/prunes vs replanning from scratch); "
            "cost ratios compare the patched plan's static link cost "
            "against the replan-every-change twin's fresh plan"
        ),
        "results": results,
    }


# ----------------------------------------------------------------------
# CI smoke baseline
# ----------------------------------------------------------------------
def test_smoke_paired_churn_identical_and_bounded():
    report = run_paired_churn(
        SimParams(), "tree", seed=SWEEP_SEED, steps=30, group_size=6,
        churn_rate=0.8, table_capacity=4,
    )
    assert report.delivery_identical, report.mismatches
    assert report.verify_failures == 0
    assert report.patched_stats["replan_fraction"] <= 0.2


def test_smoke_patched_churn_speed(benchmark):
    res = benchmark.pedantic(
        lambda: time_membership_changes("tree", 6, 0.8, 30, SWEEP_SEED),
        rounds=3, iterations=1,
    )
    assert res["events"] > 0


def test_smoke_path_repair_speed(benchmark):
    res = benchmark.pedantic(
        lambda: time_membership_changes("path", 6, 0.8, 30, SWEEP_SEED),
        rounds=3, iterations=1,
    )
    assert res["events"] > 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output", default="BENCH_groups.json",
        help="where to write the sweep JSON (default: %(default)s)",
    )
    parser.add_argument("--steps", type=int, default=SWEEP_STEPS)
    parser.add_argument("--seed", type=int, default=SWEEP_SEED)
    args = parser.parse_args()
    payload = run_sweep(steps=args.steps, seed=args.seed)
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    for entry in payload["results"]:
        print(
            f"{entry['scheme']:>5} size={entry['group_size']:>2} "
            f"rate={entry['churn_rate']:.2f}: "
            f"patch {entry['patched_churn_s']:.3f}s vs "
            f"replan {entry['replanned_churn_s']:.3f}s "
            f"({entry['speedup']}x), "
            f"replan_fraction={entry['replan_fraction']:.3f}, "
            f"mean_cost_ratio={entry['mean_cost_ratio']:.3f}"
        )
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
