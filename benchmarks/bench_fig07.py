"""E2: regenerate Figure 7 (single-multicast latency vs number of switches).

Asserts: path-based multicast degrades as switches increase (fewer
destinations per switch => more worms, more phases) while NI- and tree-based
schemes stay nearly flat.
"""


def test_fig07(benchmark, bench_run, record_result):
    result = benchmark.pedantic(
        lambda: bench_run("fig07"), rounds=1, iterations=1
    )
    record_result(result)
    path_8 = result.curve("8sw/path").y
    path_32 = result.curve("32sw/path").y
    assert path_32[-1] > path_8[-1]
    tree_8 = result.curve("8sw/tree").y
    tree_32 = result.curve("32sw/tree").y
    assert tree_32[-1] < tree_8[-1] * 1.5  # near-flat
    ni_8 = result.curve("8sw/ni").y
    ni_32 = result.curve("32sw/ni").y
    assert ni_32[-1] < ni_8[-1] * 1.5  # near-flat
