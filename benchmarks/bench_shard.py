"""Sharded-runner scaling sweep: serial vs inline vs process-parallel.

Extends the fig07-style switch axis to 512-1024 switches -- scales the
single-process simulator cannot sweep comfortably -- and records, per
(switch count, shard count):

* wall-clock times for the serial reference, the inline sharded backend
  and the process-parallel backend (the latter two are byte-identical by
  construction; the bench asserts it);
* the window-protocol overheads (rounds, boundary messages);
* the per-shard event split and the load-balance speedup bound
  ``sum(events) / max(events)`` -- the parallelism the partition exposes,
  which the process backend converts to wall-clock speedup when cores are
  available (``cpu_count`` is recorded so single-core CI numbers are not
  mistaken for the protocol's ceiling).

Run directly to produce the pinned sweep artifact::

    PYTHONPATH=src python benchmarks/bench_shard.py [-o BENCH_shard.json]

The ``smoke`` tests at the bottom are the CI shard regression baseline:
a reduced 64-switch scenario where the process backend must reproduce the
inline backend's merged trace digest byte-for-byte, plus timings for the
artifact history (CI runs ``pytest benchmarks/bench_shard.py -k smoke
--benchmark-json=...``).
"""

import argparse
import json
import os
import time

from repro.shard import ShardSimulation, run_serial, seeded_scenario
from repro.shard.procpool import ProcShardSimulation

SWEEP_SWITCHES = (128, 256, 512, 1024)
SWEEP_SHARDS = (1, 2, 4, 8)


def sweep_scenario(num_switches: int):
    """One 64-worm multidestination scenario per system size.

    ``link_delay = switch_delay = 16`` widens the conservative lookahead
    window to 32 cycles, amortizing each synchronization barrier over more
    simulated work -- the regime the sharded runner targets.
    """
    return seeded_scenario(
        num_switches,
        64,
        11,
        hosts_per_switch=2,
        packet_flits=256,
        fanout=6,
        spacing=8,
        link_delay=16,
        switch_delay=16,
    )


def run_sweep(
    switches=SWEEP_SWITCHES, shard_counts=SWEEP_SHARDS
) -> dict:
    results = []
    for num_switches in switches:
        t0 = time.perf_counter()
        scen = sweep_scenario(num_switches)
        build_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        deliveries, _trace = run_serial(scen)
        serial_s = time.perf_counter() - t0

        entry = {
            "num_switches": num_switches,
            "num_jobs": len(scen.jobs),
            "scenario_build_s": round(build_s, 3),
            "serial_s": round(serial_s, 3),
            "deliveries": len(deliveries),
            "shards": [],
        }
        for shards in shard_counts:
            t0 = time.perf_counter()
            inline = ShardSimulation(scen, shards).run()
            inline_s = time.perf_counter() - t0

            t0 = time.perf_counter()
            proc = ProcShardSimulation(scen, shards).run()
            proc_s = time.perf_counter() - t0

            if proc.digest != inline.digest:  # backends must agree
                raise AssertionError(
                    f"process backend diverged from inline at "
                    f"{num_switches} switches / {shards} shards"
                )
            events = proc.events_per_shard
            balance_bound = (
                sum(events) / max(events) if max(events) else 1.0
            )
            entry["shards"].append(
                {
                    "shards": shards,
                    "inline_s": round(inline_s, 3),
                    "proc_s": round(proc_s, 3),
                    "wall_speedup_vs_serial": round(serial_s / proc_s, 3),
                    "balance_speedup_bound": round(balance_bound, 3),
                    "rounds": proc.rounds,
                    "messages": proc.messages,
                    "events_per_shard": list(events),
                    "boundary_links": len(proc.plan.boundary_links),
                    "canonical_digest": proc.canonical,
                }
            )
        results.append(entry)
    return {
        "bench": "shard-scaling",
        "cpu_count": os.cpu_count(),
        "note": (
            "wall_speedup_vs_serial needs cores >= shards to approach "
            "balance_speedup_bound; on fewer cores it measures protocol "
            "overhead, not the parallelism ceiling"
        ),
        "results": results,
    }


# ----------------------------------------------------------------------
# CI smoke baseline: reduced 64-switch scenario
# ----------------------------------------------------------------------
def _smoke_scenario():
    return seeded_scenario(
        64,
        16,
        11,
        hosts_per_switch=2,
        packet_flits=128,
        fanout=4,
        spacing=16,
        link_delay=16,
        switch_delay=16,
    )


def test_smoke_proc_backend_byte_identical_to_inline():
    scen = _smoke_scenario()
    inline = ShardSimulation(scen, 2).run()
    proc = ProcShardSimulation(scen, 2).run()
    assert proc.digest == inline.digest
    assert proc.deliveries == inline.deliveries
    assert proc.messages == inline.messages


def test_smoke_serial_speed(benchmark):
    scen = _smoke_scenario()
    res = benchmark.pedantic(
        lambda: run_serial(scen), rounds=3, iterations=1
    )
    assert len(res[0]) == 16 * 4


def test_smoke_sharded_speed(benchmark):
    scen = _smoke_scenario()
    res = benchmark.pedantic(
        lambda: ShardSimulation(scen, 2).run(), rounds=3, iterations=1
    )
    assert len(res.deliveries) == 16 * 4


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output", default="BENCH_shard.json",
        help="where to write the sweep JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--switches", type=int, nargs="+", default=list(SWEEP_SWITCHES),
    )
    parser.add_argument(
        "--shards", type=int, nargs="+", default=list(SWEEP_SHARDS),
    )
    args = parser.parse_args()
    payload = run_sweep(tuple(args.switches), tuple(args.shards))
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    for entry in payload["results"]:
        print(
            f"{entry['num_switches']:>5} switches: "
            f"serial {entry['serial_s']:.2f}s | "
            + " | ".join(
                f"{s['shards']}sh {s['proc_s']:.2f}s "
                f"(bound {s['balance_speedup_bound']:.2f}x)"
                for s in entry["shards"]
            )
        )
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
