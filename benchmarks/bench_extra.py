"""E7: the experiments the paper mentions but omits for space (Section 4.2.3):
host overhead magnitude, system size, and packet length."""


def test_extra_host_overhead(benchmark, bench_run, record_result):
    result = benchmark.pedantic(
        lambda: bench_run("extra-hostoverhead"),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    # Latency scales with o_host for every scheme (software-dominated).
    for scheme in ("ni", "path", "tree"):
        lo = result.curve(f"o_h=250/{scheme}").y
        hi = result.curve(f"o_h=4000/{scheme}").y
        assert all(h > l for h, l in zip(hi, lo))


def test_extra_system_size(benchmark, bench_run, record_result):
    result = benchmark.pedantic(
        lambda: bench_run("extra-systemsize"),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    # Tree-based stays flat as the system grows (single phase regardless).
    small = result.curve("16n/4sw/tree").y[0]
    large = result.curve("64n/16sw/tree").y[0]
    assert large < small * 1.5


def test_extra_packet_length(benchmark, bench_run, record_result):
    result = benchmark.pedantic(
        lambda: bench_run("extra-packetlen"),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    assert result.series
