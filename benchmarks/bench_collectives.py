"""Benchmarks for the collective operations built on multicast."""

from repro.mpi import Communicator
from repro.params import SimParams
from repro.sim.network import SimNetwork
from repro.topology.irregular import generate_irregular_topology


def make_comm(scheme="tree"):
    params = SimParams()
    topo = generate_irregular_topology(params, seed=3)
    return Communicator(SimNetwork(topo, params), multicast_scheme=scheme)


def test_bcast_tree(benchmark):
    lat = benchmark(lambda: make_comm("tree").time("bcast"))
    assert lat > 0


def test_bcast_binomial(benchmark):
    lat = benchmark(lambda: make_comm("binomial").time("bcast"))
    assert lat > 0


def test_barrier(benchmark):
    lat = benchmark(lambda: make_comm().time("barrier"))
    assert lat > 0


def test_allreduce(benchmark):
    lat = benchmark(lambda: make_comm().time("allreduce"))
    assert lat > 0


def test_collective_cost_ordering():
    """Not a timing benchmark: records the simulated cost ordering."""
    comm_costs = {
        op: make_comm().time(op)
        for op in ("bcast", "reduce", "allreduce", "barrier")
    }
    assert comm_costs["allreduce"] > comm_costs["reduce"]
    assert comm_costs["allreduce"] > comm_costs["bcast"]
