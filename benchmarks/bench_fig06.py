"""E1: regenerate Figure 6 (single-multicast latency vs R = o_host/o_ni).

Asserts the figure's headline shape: the tree-based scheme is best at every
R, and the NI-based scheme's latency falls monotonically as R rises while
the path-based scheme's is R-insensitive by comparison.
"""


def test_fig06(benchmark, bench_run, record_result):
    result = benchmark.pedantic(
        lambda: bench_run("fig06"), rounds=1, iterations=1
    )
    record_result(result)
    for r in ("R=0.5", "R=1", "R=2", "R=4"):
        tree = result.curve(f"{r}/tree").y
        ni = result.curve(f"{r}/ni").y
        path = result.curve(f"{r}/path").y
        assert all(t < n for t, n in zip(tree, ni))
        assert all(t < p for t, p in zip(tree, path))
    ni_low = result.curve("R=0.5/ni").y
    ni_high = result.curve("R=4/ni").y
    assert all(h < l for h, l in zip(ni_high, ni_low))
    # Low R favours path over NI; high R closes (or reverses) the gap.
    gap_low = result.curve("R=0.5/ni").y[-1] / result.curve("R=0.5/path").y[-1]
    gap_high = result.curve("R=4/ni").y[-1] / result.curve("R=4/path").y[-1]
    assert gap_high < gap_low
