"""Collective workload engine: raw-speed trajectory + CI smoke baseline.

Sweeps the open-loop workload engine (:mod:`repro.workloads`) over
(scheme x collective x offered rate) and writes the pinned artifact::

    PYTHONPATH=src python benchmarks/bench_workloads.py [-o BENCH_workloads.json]

The committed ``BENCH_workloads.json`` is **fully deterministic** -- engine
event counts, admission/completion accounting, tail quantiles, and replay
digests, never wall-clock times -- so CI regenerates it and diffs byte for
byte.  Event counts are the raw-speed trajectory: an optimisation that
makes the engine do less work shows up as a falling ``events`` column (and
an intended model change shows up loudly, as a diff).  Wall-clock numbers
go to the console and to the pytest-benchmark ``smoke`` artifacts only.

The ``smoke`` tests at the bottom are the CI baseline
(``pytest benchmarks/bench_workloads.py -k smoke``): fixed-seed workload
runs that must replay to identical digests, plus timed runs for the
benchmark history.
"""

import argparse
import json
import time

from repro.params import SimParams
from repro.topology.irregular import generate_topology_family
from repro.workloads import run_workload

SWEEP_SCHEMES = ("ni", "path", "tree")
SWEEP_COLLECTIVES = ("broadcast", "allreduce", "barrier")
SWEEP_RATES = (0.0002, 0.0008)
SWEEP_DURATION = 40_000
SWEEP_WARMUP = 4_000
SWEEP_SEED = 11


def _run_point(scheme: str, collective: str, rate: float, seed: int = SWEEP_SEED):
    params = SimParams()
    topo = generate_topology_family(params, 1)[0]
    return run_workload(
        topo,
        params,
        scheme,
        seed=seed,
        rate=rate,
        duration=SWEEP_DURATION,
        warmup=SWEEP_WARMUP,
        kinds=(collective,),
    )


def run_sweep(seed: int = SWEEP_SEED) -> tuple[dict, list[float]]:
    """The deterministic payload plus per-point wall times (console only)."""
    results = []
    walls: list[float] = []
    for scheme in SWEEP_SCHEMES:
        for collective in SWEEP_COLLECTIVES:
            for rate in SWEEP_RATES:
                t0 = time.perf_counter()
                report = _run_point(scheme, collective, rate, seed)
                walls.append(time.perf_counter() - t0)
                v = report.to_value()
                results.append({
                    "scheme": scheme,
                    "collective": collective,
                    "rate": rate,
                    "admitted": v["admitted"],
                    "measured": v["measured"],
                    "completed": v["completed"],
                    "miss_fraction": v["miss_fraction"],
                    "throughput": v["throughput"],
                    "saturated": v["saturated"],
                    "latency": v["latency"],
                    "events": v["events"],
                    "digest": report.digest(),
                })
    payload = {
        "bench": "collective-workloads",
        "seed": seed,
        "duration": SWEEP_DURATION,
        "warmup": SWEEP_WARMUP,
        "note": (
            "deterministic raw-speed trajectory: every field is a pure "
            "function of the seed (event counts stand in for wall time, "
            "which lives in the pytest-benchmark artifacts); CI "
            "regenerates this file and requires a byte-identical diff"
        ),
        "results": results,
    }
    return payload, walls


# ----------------------------------------------------------------------
# CI smoke baseline
# ----------------------------------------------------------------------
def test_smoke_workload_replays_identically():
    a = _run_point("tree", "broadcast", 0.0002)
    b = _run_point("tree", "broadcast", 0.0002)
    assert a.digest() == b.digest()
    assert a.completed == a.measured > 0
    assert a.miss_fraction == 0.0


def test_smoke_open_loop_admissions_scheme_independent():
    # The open-loop contract at bench scale: every scheme is offered the
    # identical schedule, however differently it copes.
    reports = [
        _run_point(s, "allreduce", 0.0008) for s in SWEEP_SCHEMES
    ]
    assert len({r.admitted for r in reports}) == 1
    assert len({r.schedule_sha for r in reports}) == 1


def test_smoke_broadcast_workload_speed(benchmark):
    report = benchmark.pedantic(
        lambda: _run_point("tree", "broadcast", 0.0008),
        rounds=3, iterations=1,
    )
    assert report.completed > 0


def test_smoke_allreduce_workload_speed(benchmark):
    report = benchmark.pedantic(
        lambda: _run_point("ni", "allreduce", 0.0002),
        rounds=3, iterations=1,
    )
    assert report.completed > 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output", default="BENCH_workloads.json",
        help="where to write the sweep JSON (default: %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=SWEEP_SEED)
    args = parser.parse_args()
    payload, walls = run_sweep(seed=args.seed)
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    for entry, wall in zip(payload["results"], walls):
        p99 = entry["latency"]["p99"]
        print(
            f"{entry['scheme']:>5} {entry['collective']:>9} "
            f"rate={entry['rate']:.4f}: "
            f"{entry['completed']}/{entry['measured']} completed, "
            f"miss={entry['miss_fraction']:.3f}, "
            f"p99={'sat' if p99 is None else round(p99)}, "
            f"events={entry['events']}, wall={wall:.2f}s"
        )
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
