"""E3: regenerate Figure 8 (single-multicast latency vs message length).

Asserts: the NI-based scheme's disadvantage against the path-based scheme
shrinks as messages span more packets (FPFS pipelining vs whole-message
store-and-forward per path phase), with tree-based best at every length.
"""


def test_fig08(benchmark, bench_run, record_result):
    result = benchmark.pedantic(
        lambda: bench_run("fig08"), rounds=1, iterations=1
    )
    record_result(result)
    for v in ("128f", "256f", "512f", "1024f"):
        tree = result.curve(f"{v}/tree").y
        for scheme in ("ni", "path"):
            other = result.curve(f"{v}/{scheme}").y
            assert all(t < o for t, o in zip(tree, other))
    ratio_short = (
        result.curve("128f/ni").y[-1] / result.curve("128f/path").y[-1]
    )
    ratio_long = (
        result.curve("512f/ni").y[-1] / result.curve("512f/path").y[-1]
    )
    assert ratio_long < ratio_short
