"""E5: regenerate Figure 10 (latency vs applied load, varying switch count).

Asserts: the path-based scheme's loaded latency degrades as switches
increase, approaching the NI-based scheme; tree-based stays uniformly good.
"""


def test_fig10(benchmark, bench_run, record_result):
    result = benchmark.pedantic(
        lambda: bench_run("fig10"), rounds=1, iterations=1
    )
    record_result(result)
    p8 = result.curve("8sw/16-way/path").y[0]
    p32 = result.curve("32sw/16-way/path").y[0]
    assert p8 is not None and p32 is not None and p32 > p8
    t8 = result.curve("8sw/16-way/tree").y[0]
    t32 = result.curve("32sw/16-way/tree").y[0]
    assert t32 < t8 * 1.5  # tree near-uniform across switch counts
