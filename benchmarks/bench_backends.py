"""Backend speed comparison: worm-level event model vs flit-level reference.

The event backend exists because cycle-accurate simulation is orders of
magnitude slower; this benchmark records the actual ratio on an identical
scenario (and asserts both produce the same answer while at it).

The ``smoke`` tests at the bottom are the CI regression baseline: a seeded
16-switch / 4-worm multidestination scenario run on both backends, asserting
byte-identical delivery output before timing them.  CI runs
``pytest benchmarks/bench_backends.py -k smoke --benchmark-json=...`` and
archives the JSON so simulator slowdowns show up in the artifact history.
"""

import json

from repro.params import SimParams
from repro.routing.updown import UpDownRouting
from repro.sim.crossval import run_event_scenario, run_flit_scenario
from repro.sim.flitsim import FlitLevelFabric, unicast_route
from repro.sim.network import SimNetwork
from repro.sim.worm import Worm
from repro.topology.irregular import generate_irregular_topology

PARAMS = SimParams(adaptive_routing=False)
TOPO = generate_irregular_topology(PARAMS, seed=3)
JOBS = [(i * 40, i % 8, 24 + (i % 8)) for i in range(8)]

SMOKE_PARAMS = SimParams(adaptive_routing=False, num_switches=16, packet_flits=512)
SMOKE_TOPO = generate_irregular_topology(SMOKE_PARAMS, seed=7)
SMOKE_JOBS = [
    (0, 7, (0, 8, 9, 24)),
    (25, 14, (3, 4, 22, 24)),
    (50, 5, (0, 1, 14, 19)),
    (75, 5, (7, 8, 17, 20)),
]


def run_event() -> list[float]:
    net = SimNetwork(TOPO, PARAMS)
    out: list[float] = []
    for t, src, dst in JOBS:
        def launch(s=src, d=dst):
            w = Worm(net.engine, net.params, net.unicast_steer(d),
                     on_delivered=lambda _n, tt: out.append(tt), rng=net.rng)
            w.start(net.fabric.inject[s], None)

        if t == 0:
            launch()
        else:
            net.engine.at(t, launch)
    net.run()
    return sorted(out)


def run_flit() -> list[float]:
    rt = UpDownRouting.build(TOPO)
    fab = FlitLevelFabric(TOPO, PARAMS)
    for t, src, dst in JOBS:
        fab.inject(t, unicast_route(TOPO, rt, src, dst))
    fab.run()
    return sorted(float(v) for v in fab.deliveries.values())


def test_event_backend_speed(benchmark):
    res = benchmark(run_event)
    assert len(res) == len(JOBS)


def test_flit_backend_speed(benchmark):
    res = benchmark.pedantic(run_flit, rounds=2, iterations=1)
    assert len(res) == len(JOBS)


def test_backends_agree_on_benchmark_scenario():
    assert run_event() == run_flit()


# ----------------------------------------------------------------------
# CI smoke baseline: 16-switch / 4-worm multidestination scenario
# ----------------------------------------------------------------------
def _delivery_bytes(deliveries: dict) -> bytes:
    """Canonical byte encoding of a delivery map (cross-backend comparable)."""
    rows = [[k[0], k[1], float(v)] for k, v in sorted(deliveries.items())]
    return json.dumps(rows).encode()


def test_smoke_backends_byte_identical():
    ev = run_event_scenario(SMOKE_TOPO, SMOKE_PARAMS, SMOKE_JOBS)
    fl = run_flit_scenario(SMOKE_TOPO, SMOKE_PARAMS, SMOKE_JOBS)
    assert len(fl) == sum(len(dsts) for _, _, dsts in SMOKE_JOBS)
    assert _delivery_bytes(ev) == _delivery_bytes(fl)


def test_smoke_event_backend_speed(benchmark):
    res = benchmark(lambda: run_event_scenario(SMOKE_TOPO, SMOKE_PARAMS, SMOKE_JOBS))
    assert len(res) == 16


def test_smoke_flit_backend_speed(benchmark):
    res = benchmark.pedantic(
        lambda: run_flit_scenario(SMOKE_TOPO, SMOKE_PARAMS, SMOKE_JOBS),
        rounds=3,
        iterations=1,
    )
    assert len(res) == 16
