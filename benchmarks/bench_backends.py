"""Backend speed comparison: worm-level event model vs flit-level reference.

The event backend exists because cycle-accurate simulation is orders of
magnitude slower; this benchmark records the actual ratio on an identical
scenario (and asserts both produce the same answer while at it).
"""

from repro.params import SimParams
from repro.routing.updown import UpDownRouting
from repro.sim.flitsim import FlitLevelFabric, unicast_route
from repro.sim.network import SimNetwork
from repro.sim.worm import Worm
from repro.topology.irregular import generate_irregular_topology

PARAMS = SimParams(adaptive_routing=False)
TOPO = generate_irregular_topology(PARAMS, seed=3)
JOBS = [(i * 40, i % 8, 24 + (i % 8)) for i in range(8)]


def run_event() -> list[float]:
    net = SimNetwork(TOPO, PARAMS)
    out: list[float] = []
    for t, src, dst in JOBS:
        def launch(s=src, d=dst):
            w = Worm(net.engine, net.params, net.unicast_steer(d),
                     on_delivered=lambda _n, tt: out.append(tt), rng=net.rng)
            w.start(net.fabric.inject[s], None)

        if t == 0:
            launch()
        else:
            net.engine.at(t, launch)
    net.run()
    return sorted(out)


def run_flit() -> list[float]:
    rt = UpDownRouting.build(TOPO)
    fab = FlitLevelFabric(TOPO, PARAMS)
    for t, src, dst in JOBS:
        fab.inject(t, unicast_route(TOPO, rt, src, dst))
    fab.run()
    return sorted(float(v) for v in fab.deliveries.values())


def test_event_backend_speed(benchmark):
    res = benchmark(run_event)
    assert len(res) == len(JOBS)


def test_flit_backend_speed(benchmark):
    res = benchmark.pedantic(run_flit, rounds=2, iterations=1)
    assert len(res) == len(JOBS)


def test_backends_agree_on_benchmark_scenario():
    assert run_event() == run_flit()
