"""E4: regenerate Figure 9 (latency vs applied load, varying R).

Asserts: at light load the tree-based scheme has the lowest latency for
every R and degree; at high R the NI scheme closes on the path-based scheme
under load.
"""


def test_fig09(benchmark, bench_run, record_result):
    result = benchmark.pedantic(
        lambda: bench_run("fig09"), rounds=1, iterations=1
    )
    record_result(result)
    for r in ("R=0.5", "R=2", "R=4"):
        for d in (4, 16):
            tree = result.curve(f"{r}/{d}-way/tree").y[0]
            path = result.curve(f"{r}/{d}-way/path").y[0]
            ni = result.curve(f"{r}/{d}-way/ni").y[0]
            assert tree is not None
            if path is not None:
                assert tree <= path * 1.05
            if ni is not None:
                assert tree <= ni * 1.05
    # Low R: NI clearly worse than path at light load; high R: gap shrinks.
    lo = result.curve("R=0.5/4-way/ni").y[0] / result.curve("R=0.5/4-way/path").y[0]
    hi = result.curve("R=4/4-way/ni").y[0] / result.curve("R=4/4-way/path").y[0]
    assert hi < lo
