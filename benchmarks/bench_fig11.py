"""E6: regenerate Figure 11 (latency vs applied load, varying message length).

Asserts: tree-based is best at both message lengths; for long messages under
load at high degree the NI scheme's extra traffic keeps it at or behind the
path-based scheme (the paper's Section 4.3.3 observation).
"""


def test_fig11(benchmark, bench_run, record_result):
    result = benchmark.pedantic(
        lambda: bench_run("fig11"), rounds=1, iterations=1
    )
    record_result(result)
    for v in ("128f", "512f"):
        for d in (4, 16):
            tree = result.curve(f"{v}/{d}-way/tree").y[0]
            path = result.curve(f"{v}/{d}-way/path").y[0]
            ni = result.curve(f"{v}/{d}-way/ni").y[0]
            assert tree is not None
            if path is not None:
                assert tree <= path * 1.05
            if ni is not None:
                assert tree <= ni * 1.05
    ni = result.curve("512f/16-way/ni").y[0]
    path = result.curve("512f/16-way/path").y[0]
    assert ni is not None and path is not None and ni >= path * 0.95
