"""Micro-benchmarks of the simulator core (engine, fabric, schemes).

These are true pytest-benchmark timings (multiple rounds) of the hot paths,
useful for tracking simulator performance over time -- the experiment
benches above time whole figures instead.
"""

import random

from repro.multicast import make_scheme
from repro.params import SimParams
from repro.sim.engine import Engine
from repro.sim.network import SimNetwork
from repro.topology.irregular import generate_irregular_topology
from repro.traffic.load import run_load_experiment


def test_engine_event_throughput(benchmark):
    def churn():
        eng = Engine()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                eng.after(1, tick)

        eng.after(0, tick)
        eng.run()
        return count

    assert benchmark(churn) == 10_000


def test_network_construction(benchmark):
    params = SimParams()
    topo = generate_irregular_topology(params, seed=3)
    net = benchmark(lambda: SimNetwork(topo, params))
    assert net.topo.num_nodes == 32


def _run_one(scheme_name):
    params = SimParams()
    topo = generate_irregular_topology(params, seed=3)
    dests = random.Random(0).sample(range(1, 32), 15)

    def once():
        net = SimNetwork(topo, params)
        res = make_scheme(scheme_name).execute(net, 0, dests)
        net.run()
        return res

    return once


def test_single_multicast_tree(benchmark):
    res = benchmark(_run_one("tree"))
    assert res.complete


def test_single_multicast_ni(benchmark):
    res = benchmark(_run_one("ni"))
    assert res.complete


def test_single_multicast_path(benchmark):
    res = benchmark(_run_one("path"))
    assert res.complete


def test_single_multicast_binomial(benchmark):
    res = benchmark(_run_one("binomial"))
    assert res.complete


def test_load_point_tree(benchmark):
    params = SimParams()
    topo = generate_irregular_topology(params, seed=3)
    point = benchmark.pedantic(
        lambda: run_load_experiment(
            topo, params, "tree", degree=4, effective_load=0.05,
            duration=40_000, warmup=4_000,
        ),
        rounds=1,
        iterations=1,
    )
    assert point.completed > 0
