"""E8: ablation benches for the design choices DESIGN.md calls out."""


def test_ablation_buffer(benchmark, bench_run, record_result):
    result = benchmark.pedantic(
        lambda: bench_run("ablation-buffer"),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    # Isolated multicasts see little buffer sensitivity (no contention to
    # absorb); the sweep documents that non-result explicitly.
    for scheme in ("tree", "path"):
        small = result.curve(f"buf=8/{scheme}").y
        big = result.curve(f"buf=256/{scheme}").y
        assert all(abs(a - b) / b < 0.25 for a, b in zip(small, big))


def test_ablation_fpfs(benchmark, bench_run, record_result):
    result = benchmark.pedantic(
        lambda: bench_run("ablation-fpfs"),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    fpfs = result.curve("fpfs/ni").y
    saf = result.curve("store&fwd/ni").y
    assert all(f < s for f, s in zip(fpfs, saf))


def test_ablation_routing(benchmark, bench_run, record_result):
    result = benchmark.pedantic(
        lambda: bench_run("ablation-routing"),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    assert result.series


def test_ablation_path_strategy(benchmark, bench_run, record_result):
    result = benchmark.pedantic(
        lambda: bench_run("ablation-pathstrategy"),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    assert result.series


def test_ablation_fixed_k(benchmark, bench_run, record_result):
    result = benchmark.pedantic(
        lambda: bench_run("ablation-fixedk"),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    auto = result.curve("ni/auto").y
    chain = result.curve("ni/k=1").y
    assert all(a < c for a, c in zip(auto, chain))
