"""Planted-violation tests for the whole-program analyzers.

Every analyzer rule gets a fixture tree that violates it (and a minimally
different one that does not), the suppression mechanics get regression
coverage for multi-line statements and justification enforcement, and the
epoch-sequence verifier is proven to detect a planted epoch-1 CDG cycle --
a checker that cannot find the bug it exists for proves nothing by passing.
"""

import pathlib
import textwrap

import pytest

from repro.analyze import run_analysis
from repro.analyze.epochs import verify_epoch_sequence
from repro.lint import run_lint
from repro.lint.suppress import (
    is_suppressed,
    parse_suppression_comments,
    parse_suppressions,
    statement_anchors,
)
from repro.routing.bfs_tree import build_bfs_tree
from repro.routing.updown import UpDownRouting
from repro.topology.graph import NetworkTopology, PortRef, SwitchLink


def write_tree(root: pathlib.Path, files: dict[str, str]) -> pathlib.Path:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


def analyze(root: pathlib.Path):
    return run_analysis([root])


def rules_found(result) -> set[str]:
    return {f.rule for f in result.findings}


# ----------------------------------------------------------------------
# Determinism taint: unordered-into-sink
# ----------------------------------------------------------------------
class TestTaint:
    def test_loop_over_set_into_scheduler_is_flagged(self, tmp_path):
        root = write_tree(tmp_path, {"sim/sched.py": """
            def schedule_all(engine, nodes):
                pending = set(nodes)
                for n in pending:
                    engine.at(1.0, n)
        """})
        result = analyze(root)
        assert "unordered-into-sink" in rules_found(result)
        [f] = [f for f in result.findings
               if f.rule == "unordered-into-sink"]
        assert f.path.endswith("sched.py") and f.line == 5

    def test_sorted_laundering_clears_the_taint(self, tmp_path):
        root = write_tree(tmp_path, {"sim/sched.py": """
            def schedule_all(engine, nodes):
                pending = set(nodes)
                for n in sorted(pending):
                    engine.at(1.0, n)
        """})
        assert analyze(root).findings == []

    def test_tainted_argument_reaches_trace_and_heap(self, tmp_path):
        root = write_tree(tmp_path, {"sim/emitters.py": """
            from heapq import heappush

            def note(trace, switches):
                order = list({s + 1 for s in switches})
                trace.emit("arb", order)

            def arbitrate(queue, requests):
                ready = set(requests)
                heappush(queue, ready)
        """})
        result = analyze(root)
        lines = sorted(
            f.line for f in result.findings
            if f.rule == "unordered-into-sink"
        )
        assert lines == [6, 10]

    def test_order_insensitive_reductions_are_clean(self, tmp_path):
        root = write_tree(tmp_path, {"sim/folds.py": """
            def total(engine, nodes):
                pending = set(nodes)
                engine.at(1.0, len(pending))
                engine.after(sum(pending), max(pending))
        """})
        assert analyze(root).findings == []

    def test_set_returning_helper_taints_callers(self, tmp_path):
        root = write_tree(tmp_path, {"sim/helpers.py": """
            def frontier(topo) -> frozenset:
                return frozenset(topo)

            def kick(engine, topo):
                for s in frontier(topo):
                    engine.after(1.0, s)
        """})
        result = analyze(root)
        assert "unordered-into-sink" in rules_found(result)


# ----------------------------------------------------------------------
# identity-in-sim
# ----------------------------------------------------------------------
class TestIdentity:
    def test_id_and_environ_are_flagged_in_sim_scope(self, tmp_path):
        root = write_tree(tmp_path, {"sim/keys.py": """
            import os

            def cache_key(net):
                return (id(net), os.environ.get("SEED"))
        """})
        result = analyze(root)
        assert [f.rule for f in result.findings] == \
            ["identity-in-sim", "identity-in-sim"]

    def test_outside_sim_scope_is_not_flagged(self, tmp_path):
        root = write_tree(tmp_path, {"repro/tools/keys.py": """
            def cache_key(obj):
                return id(obj)
        """})
        assert analyze(root).findings == []


# ----------------------------------------------------------------------
# Partition safety: runtime-global-mutation / cross-network-mutation
# ----------------------------------------------------------------------
class TestPartitionSafety:
    def test_runner_reachable_global_write_is_flagged(self, tmp_path):
        root = write_tree(tmp_path, {"traffic/load.py": """
            RESULTS = {}

            def run_load_experiment(cfg):
                return helper(cfg)

            def helper(cfg):
                RESULTS[cfg] = 1
                return RESULTS
        """})
        result = analyze(root)
        [f] = [f for f in result.findings
               if f.rule == "runtime-global-mutation"]
        assert f.line == 8
        assert "run_load_experiment" in f.message
        assert "RESULTS" in f.message
        # ...and the module classification follows.
        mod = result.manifest["modules"]["traffic.load"]
        assert mod["classification"] == "cross-partition-mutating"
        assert mod["reachable_global_writers"] == ["traffic.load:helper"]

    def test_unreachable_registry_write_stays_partition_local(self, tmp_path):
        root = write_tree(tmp_path, {"traffic/load.py": """
            PATTERNS = {}

            def register(name, fn):
                PATTERNS[name] = fn

            def run_load_experiment(cfg):
                return PATTERNS[cfg]()
        """})
        result = analyze(root)
        assert "runtime-global-mutation" not in rules_found(result)
        mod = result.manifest["modules"]["traffic.load"]
        assert mod["classification"] == "partition-local"
        assert mod["mutable_globals"] == ["PATTERNS"]

    def test_cross_network_write_outside_sim_is_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "sim/network.py": """
                class SimNetwork:
                    def __init__(self):
                        self.routing = None
                        self.trace = None
            """,
            "traffic/meddle.py": """
                from sim.network import SimNetwork

                def hijack(net: SimNetwork):
                    net.routing = None

                def observe(net: SimNetwork, trace):
                    net.trace = trace
            """,
        })
        result = analyze(root)
        found = [f for f in result.findings
                 if f.rule == "cross-network-mutation"]
        assert [f.line for f in found] == [5]
        assert "routing" in found[0].message
        # net.trace is a documented observer slot: allowed.

    def test_sim_layer_may_write_its_own_network(self, tmp_path):
        root = write_tree(tmp_path, {
            "sim/network.py": """
                class SimNetwork:
                    def __init__(self):
                        self.routing = None
            """,
            "sim/reconf.py": """
                from sim.network import SimNetwork

                def reconfigure(net: SimNetwork, routing):
                    net.routing = routing
            """,
        })
        assert analyze(root).findings == []


# ----------------------------------------------------------------------
# Lint-registry bridge
# ----------------------------------------------------------------------
class TestLintBridge:
    def test_one_lint_run_carries_the_analyzer_rules(self, tmp_path):
        root = write_tree(tmp_path, {"sim/both.py": """
            RETRIES = []

            def key(net):
                return id(net)

            def schedule(engine, nodes):
                for n in set(nodes):
                    engine.at(1.0, n)
        """})
        result = run_lint([root], run_model=False)
        assert {"identity-in-sim", "unordered-into-sink"} <= \
            {f.rule for f in result.findings}


# ----------------------------------------------------------------------
# Suppressions: multi-line statements and justifications
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_disable_on_statement_first_line_covers_inner_lines(
        self, tmp_path
    ):
        source = """
            def cache_key(net):
                key = (  # lint: disable=identity-in-sim -- net pinned by caller
                    id(net),
                )
                return key
        """
        root = write_tree(tmp_path, {"sim/multi.py": source})
        result = run_lint([root], run_model=False)
        assert result.findings == []
        assert result.suppressed == 1
        # Control: without the comment the same tree is flagged on the
        # inner line, proving the anchor (not the rule) did the work.
        bare = write_tree(tmp_path / "bare", {
            "sim/multi.py": source.replace(
                "  # lint: disable=identity-in-sim -- net pinned by caller",
                "",
            ),
        })
        flagged = run_lint([bare], run_model=False)
        assert [f.rule for f in flagged.findings] == ["identity-in-sim"]
        assert flagged.findings[0].line == 4

    def test_statement_anchor_unit_behavior(self):
        import ast

        source = (
            "x = 1\n"
            "y = (\n"
            "    2,\n"
            "    3,\n"
            ")\n"
        )
        anchors = statement_anchors(ast.parse(source))
        assert anchors[1] == 1
        assert anchors[3] == 2 and anchors[4] == 2
        supp = parse_suppressions(
            "x = 1\n"
            "y = (  # lint: disable=some-rule\n"
        )
        assert supp == {2: frozenset({"some-rule"})}
        assert is_suppressed(supp, "some-rule", 3, None) is False
        assert is_suppressed(supp, "some-rule", 3, {3: 1}) is False
        assert is_suppressed(supp, "some-rule", 3, anchors) is True

    def test_justification_parsing(self):
        comments = parse_suppression_comments(
            "a = 1  # lint: disable=rule-a,rule-b -- both safe here\n"
            "b = 2  # lint: disable=rule-c\n"
        )
        assert comments[1].rules == frozenset({"rule-a", "rule-b"})
        assert comments[1].justification == "both safe here"
        assert comments[2].justification is None

    def test_unjustified_analyze_suppression_is_a_finding(self, tmp_path):
        root = write_tree(tmp_path, {"sim/keys.py": """
            def cache_key(net):
                return id(net)  # lint: disable=identity-in-sim
        """})
        result = analyze(root)
        assert [f.rule for f in result.findings] == \
            ["unjustified-suppression"]
        assert result.suppressed == 1

    def test_justified_analyze_suppression_is_clean(self, tmp_path):
        root = write_tree(tmp_path, {"sim/keys.py": """
            def cache_key(net):
                return id(net)  # lint: disable=identity-in-sim -- transient
        """})
        result = analyze(root)
        assert result.findings == []
        assert result.suppressed == 1


# ----------------------------------------------------------------------
# Epoch-sequence verifier
# ----------------------------------------------------------------------
def ring_topology(chord: bool = False) -> NetworkTopology:
    """A 4-switch ring (one host per switch), optionally with a 0-2 chord."""
    links = [
        SwitchLink(0, PortRef(0, 1), PortRef(1, 1)),
        SwitchLink(1, PortRef(1, 2), PortRef(2, 1)),
        SwitchLink(2, PortRef(2, 2), PortRef(3, 1)),
        SwitchLink(3, PortRef(3, 2), PortRef(0, 2)),
    ]
    if chord:
        links.append(SwitchLink(4, PortRef(0, 3), PortRef(2, 3)))
    return NetworkTopology(4, 4, [PortRef(s, 0) for s in range(4)], links)


def cyclic_up_orientation(topo: NetworkTopology) -> UpDownRouting:
    """A corrupt orientation whose 'up' links run clockwise around the ring."""
    rt = UpDownRouting(topo=topo, tree=build_bfs_tree(topo, root=0))
    clockwise = {0: 1, 1: 2, 2: 3, 3: 0}
    for lk in topo.links:
        rt._up_end[lk.link_id] = clockwise.get(
            lk.link_id, rt._bfs_up_end(lk))
    rt._compute_tables()
    return rt


class TestEpochVerifier:
    def test_healthy_sequence_is_proven_at_every_epoch(self):
        topo = ring_topology(chord=True)
        assert verify_epoch_sequence(topo, [4, 1]) == []

    def test_planted_epoch1_cycle_is_detected(self):
        topo = ring_topology(chord=True)

        def builder(current, epoch):
            if epoch == 1:
                return cyclic_up_orientation(current)
            return UpDownRouting.build(current)

        problems = verify_epoch_sequence(
            topo, [4], routing_builder=builder)
        assert problems, "the planted cycle must be detected"
        assert any(
            p.kind == "cdg-cycle" and p.epoch == 1 for p in problems
        )
        assert not any(p.epoch == 0 for p in problems), \
            "epoch 0 used the honest builder and must stay clean"

    def test_disconnecting_fault_is_a_finding(self):
        topo = ring_topology()
        problems = verify_epoch_sequence(topo, [0, 1])
        assert [p.kind for p in problems] == ["disconnect"]
        assert problems[0].epoch == 2

    def test_scenario_faults_replay_in_fire_time_order(self):
        pytest.importorskip("repro.fuzz")
        from repro.fuzz.scenario import FuzzScenario, scheme_spec
        from repro.params import SimParams

        topo = ring_topology(chord=True)
        params = SimParams(
            num_nodes=topo.num_nodes,
            num_switches=topo.num_switches,
            ports_per_switch=topo.ports_per_switch,
        )
        from repro.analyze.epochs import verify_scenario_epochs

        scenario = FuzzScenario(
            topo=topo,
            params=params,
            source=0,
            dests=(2, 3),
            schemes=(scheme_spec("tree"),),
            compare_backends=False,
            fault_schedule=((50.0, 1), (10.0, 4)),
        )
        assert verify_scenario_epochs(scenario) == []

    def dfs_fixture_topology(self) -> NetworkTopology:
        """A topology whose BFS tree has an edge pointing *up* under DFS
        preorder labels -- legitimate for the dfs orientation, but the
        BFS-subtree witness used to misreport it as a reachability
        violation."""
        from repro.params import SimParams
        from repro.topology.irregular import generate_irregular_topology

        params = SimParams(num_switches=10, num_nodes=8, topology_seed=0)
        return generate_irregular_topology(params, seed=0)

    def test_dfs_orientation_is_verified_with_dfs_witness(self):
        topo = self.dfs_fixture_topology()
        routing = UpDownRouting.build(topo, orientation="dfs")
        tree = routing.tree
        links = {lk.link_id: lk for lk in topo.links}
        assert any(
            routing.is_up_traversal(
                links[tree.parent_link[s]], tree.parent[s])
            for s in range(topo.num_switches) if tree.parent[s] >= 0
        ), "fixture must exercise an up-oriented BFS-tree edge"
        for lk in topo.links:
            assert verify_epoch_sequence(
                topo, [lk.link_id], orientation="dfs") == []

    def test_dfs_witness_detects_corrupt_orientation(self):
        topo = self.dfs_fixture_topology()

        def builder(current, epoch):
            rt = UpDownRouting.build(current, orientation="dfs")
            if epoch == 1:
                lk = current.links[0]
                rt._up_end[lk.link_id] = (
                    lk.b.switch if rt._up_end[lk.link_id] == lk.a.switch
                    else lk.a.switch)
                rt._compute_tables()
            return rt

        problems = verify_epoch_sequence(
            topo, [topo.links[-1].link_id], orientation="dfs",
            routing_builder=builder)
        assert any(
            p.kind == "reachability" and p.epoch == 1
            and "DFS" in p.detail for p in problems
        ), "the flipped up end must contradict the DFS label witness"
        assert not any(p.epoch == 0 for p in problems), \
            "epoch 0 used the honest builder and must stay clean"
