"""CLI behaviour of ``python -m repro.lint`` / ``repro-lint``."""

import json
import pathlib
import textwrap

from repro.lint.cli import main


def plant_violation(tmp_path: pathlib.Path) -> pathlib.Path:
    d = tmp_path / "sim"
    d.mkdir()
    (d / "bad.py").write_text(textwrap.dedent("""
        import time

        def stamp():
            return time.time()
    """))
    return d


def test_violation_exits_nonzero_with_rule_and_location(tmp_path, capsys):
    d = plant_violation(tmp_path)
    code = main([str(d), "--no-model"])
    out = capsys.readouterr().out
    assert code == 1
    assert "wall-clock" in out
    assert "bad.py:5" in out


def test_json_report_is_parseable(tmp_path, capsys):
    d = plant_violation(tmp_path)
    code = main([str(d), "--no-model", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["version"] == 1
    assert payload["counts"]["error"] == 1
    [finding] = payload["findings"]
    assert finding["rule"] == "wall-clock"
    assert finding["line"] == 5


def test_clean_dir_exits_zero(tmp_path, capsys):
    d = tmp_path / "sim"
    d.mkdir()
    (d / "good.py").write_text("def f(x):\n    return x + 1\n")
    assert main([str(d), "--no-model"]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_model_rules_run_on_saved_topology(tmp_path, capsys):
    from repro.topology.irregular import generate_irregular_topology
    from repro.topology.serialization import save_topology
    from repro.params import SimParams

    topo = generate_irregular_topology(SimParams(), seed=5)
    tf = tmp_path / "topo.json"
    save_topology(topo, tf)
    d = tmp_path / "sim"
    d.mkdir()
    (d / "empty.py").write_text("")
    code = main([
        str(d), "--model-seeds", "1", "--topology", str(tf), "--json",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["contexts_checked"] == 2  # seed 1 + the saved topology


def test_missing_path_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_list_rules_names_every_family(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "unseeded-random", "wall-clock", "blanket-except", "float-time-eq",
        "mutable-default", "import-cycle", "multicast-cdg-cycle",
        "cdg-negative-control", "reachability-superset",
        "path-plan-legality", "header-capacity",
    ):
        assert rule_id in out
