"""Tests for the trace-derived occupancy timeline renderer."""

from repro.multicast import make_scheme
from repro.params import SimParams
from repro.sim.network import SimNetwork
from repro.sim.tracelog import TraceLog
from repro.visual.timeline import occupancy_intervals, render_timeline
from tests.topo_fixtures import make_line


def traced_run():
    net = SimNetwork(make_line(3), SimParams())
    net.trace = TraceLog()
    res = make_scheme("tree").execute(net, 0, [1, 2])
    net.run()
    assert res.complete
    return net.trace


class TestOccupancyIntervals:
    def test_intervals_well_formed(self):
        intervals = occupancy_intervals(traced_run())
        assert intervals
        for ch, worm, start, end in intervals:
            assert end >= start
            assert worm.startswith("tree:")

    def test_unmatched_grants_dropped(self):
        log = TraceLog()
        log.emit(1.0, "grant", "w", "chA")
        log.emit(2.0, "grant", "w", "chB")
        log.emit(5.0, "release", "w", "chA")
        ivs = occupancy_intervals(log)
        assert ivs == [("chA", "w", 1.0, 5.0)]


class TestRenderTimeline:
    def test_renders_rows_and_legend(self):
        out = render_timeline(traced_run())
        assert "time" in out
        assert "inj:n0->s0" in out
        assert "a=" in out  # legend glyph

    def test_channel_filter(self):
        out = render_timeline(traced_run(), channel_filter="del:")
        assert "del:" in out
        assert "inj:" not in out.replace("a=tree", "")

    def test_empty_trace(self):
        assert "no completed" in render_timeline(TraceLog())

    def test_serialized_worms_do_not_overlap_on_channel(self):
        # Two packets through the same injection channel: their bars on that
        # channel must not overlap in time.
        net = SimNetwork(make_line(3), SimParams(message_packets=2))
        net.trace = TraceLog()
        res = make_scheme("tree").execute(net, 0, [2])
        net.run()
        assert res.complete
        ivs = [
            iv for iv in occupancy_intervals(net.trace)
            if iv[0].startswith("inj:")
        ]
        assert len(ivs) == 2
        ivs.sort(key=lambda iv: iv[2])
        assert ivs[0][3] <= ivs[1][2]
