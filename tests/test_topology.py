"""Unit tests for the irregular topology generator and graph model."""

import pytest

from repro.params import SimParams
from repro.topology import NetworkTopology, PortRef, SwitchLink
from repro.topology.irregular import (
    generate_irregular_topology,
    generate_topology_family,
)


def small_params(**kw) -> SimParams:
    return SimParams(**kw)


class TestNetworkTopologyModel:
    def make_two_switch(self) -> NetworkTopology:
        return NetworkTopology(
            num_switches=2,
            ports_per_switch=4,
            node_attachment=[PortRef(0, 0), PortRef(1, 0)],
            links=[SwitchLink(0, PortRef(0, 1), PortRef(1, 1))],
        )

    def test_basic_accessors(self):
        topo = self.make_two_switch()
        assert topo.num_nodes == 2
        assert topo.switch_of_node(0) == 0
        assert topo.switch_of_node(1) == 1
        assert topo.nodes_on_switch(0) == [0]
        assert topo.neighbors(0) == [1]
        assert topo.degree(0) == 1
        assert topo.free_ports(0) == 2
        assert topo.is_connected()

    def test_other_end_and_end_on(self):
        lk = SwitchLink(5, PortRef(0, 1), PortRef(1, 2))
        assert lk.other_end(0) == PortRef(1, 2)
        assert lk.other_end(1) == PortRef(0, 1)
        assert lk.end_on(1) == PortRef(1, 2)
        with pytest.raises(ValueError):
            lk.other_end(2)

    def test_self_link_rejected(self):
        with pytest.raises(ValueError, match="self-link"):
            NetworkTopology(
                num_switches=1,
                ports_per_switch=4,
                node_attachment=[],
                links=[SwitchLink(0, PortRef(0, 0), PortRef(0, 1))],
            )

    def test_double_port_use_rejected(self):
        with pytest.raises(ValueError, match="used twice"):
            NetworkTopology(
                num_switches=2,
                ports_per_switch=4,
                node_attachment=[PortRef(0, 0)],
                links=[SwitchLink(0, PortRef(0, 0), PortRef(1, 0))],
            )

    def test_port_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            NetworkTopology(
                num_switches=1,
                ports_per_switch=2,
                node_attachment=[PortRef(0, 5)],
                links=[],
            )

    def test_disconnected_detection(self):
        topo = NetworkTopology(
            num_switches=2,
            ports_per_switch=4,
            node_attachment=[],
            links=[],
        )
        assert not topo.is_connected()

    def test_multi_links_allowed(self):
        topo = NetworkTopology(
            num_switches=2,
            ports_per_switch=4,
            node_attachment=[],
            links=[
                SwitchLink(0, PortRef(0, 0), PortRef(1, 0)),
                SwitchLink(1, PortRef(0, 1), PortRef(1, 1)),
            ],
        )
        assert topo.degree(0) == 2
        assert topo.neighbors(0) == [1]

    def test_to_networkx(self):
        g = self.make_two_switch().to_networkx()
        assert g.number_of_nodes() == 4  # 2 switches + 2 hosts
        assert g.number_of_edges() == 3  # 1 link + 2 attachments


class TestGenerator:
    def test_default_dimensions(self):
        p = small_params()
        topo = generate_irregular_topology(p)
        assert topo.num_switches == p.num_switches
        assert topo.num_nodes == p.num_nodes
        assert topo.ports_per_switch == p.ports_per_switch
        assert topo.is_connected()

    def test_port_budget_respected(self):
        topo = generate_irregular_topology(small_params())
        for s in range(topo.num_switches):
            assert topo.free_ports(s) >= 0

    def test_deterministic_in_seed(self):
        p = small_params()
        t1 = generate_irregular_topology(p, seed=42)
        t2 = generate_irregular_topology(p, seed=42)
        assert [(l.link_id, l.a, l.b) for l in t1.links] == [
            (l.link_id, l.a, l.b) for l in t2.links
        ]
        assert t1.node_attachment == t2.node_attachment

    def test_different_seeds_differ(self):
        p = small_params()
        t1 = generate_irregular_topology(p, seed=1)
        t2 = generate_irregular_topology(p, seed=2)
        assert (
            t1.node_attachment != t2.node_attachment
            or [(l.a, l.b) for l in t1.links] != [(l.a, l.b) for l in t2.links]
        )

    def test_pure_tree_when_no_extra_links(self):
        p = small_params()
        topo = generate_irregular_topology(p, seed=3, extra_link_fraction=0.0)
        assert len(topo.links) == p.num_switches - 1
        assert topo.is_connected()

    @pytest.mark.parametrize("switches,nodes", [(4, 16), (8, 32), (16, 32), (32, 32)])
    def test_paper_sweep_dimensions(self, switches, nodes):
        p = small_params(num_switches=switches, num_nodes=nodes)
        topo = generate_irregular_topology(p, seed=5)
        assert topo.is_connected()
        assert topo.num_nodes == nodes

    def test_single_switch_system(self):
        p = small_params(num_switches=1, num_nodes=4, ports_per_switch=8)
        topo = generate_irregular_topology(p)
        assert topo.links == []
        assert topo.is_connected()

    def test_infeasible_dimensions_rejected(self):
        with pytest.raises(ValueError):
            generate_irregular_topology(
                small_params(num_switches=2, num_nodes=32, ports_per_switch=4)
            )

    def test_bad_extra_fraction_rejected(self):
        with pytest.raises(ValueError):
            generate_irregular_topology(small_params(), extra_link_fraction=1.5)

    def test_family_distinct_and_sized(self):
        fam = generate_topology_family(small_params(), 4)
        assert len(fam) == 4
        assert all(t.is_connected() for t in fam)
        with pytest.raises(ValueError):
            generate_topology_family(small_params(), 0)
