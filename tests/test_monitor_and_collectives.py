"""Tests for utilization monitoring and the collective operations."""

import pytest

from repro.collectives import (
    barrier,
    broadcast,
    multicast_with_acks,
    reduce_to_root,
)
from repro.multicast import make_scheme
from repro.params import SimParams
from repro.sim.monitor import NetworkMonitor
from repro.sim.network import SimNetwork
from repro.topology.irregular import generate_irregular_topology
from repro.traffic.load import run_load_experiment
from tests.topo_fixtures import make_line


def default_net(seed=3, **kw) -> SimNetwork:
    p = SimParams(**kw)
    return SimNetwork(generate_irregular_topology(p, seed=seed), p)


class TestMonitor:
    def test_idle_network_zero_utilization(self):
        net = default_net()
        mon = NetworkMonitor(net)
        net.engine.at(1000, lambda: None)
        net.run()
        rep = mon.report()
        assert rep.mean_link_utilization == 0.0
        assert rep.total_flits_moved == 0

    def test_single_worm_utilization_accounting(self):
        net = SimNetwork(make_line(3), SimParams())
        mon = NetworkMonitor(net)
        worm_res = []
        net.hosts[0].launch_worm(
            net.unicast_steer(2), None,
            on_delivered=lambda n, t: worm_res.append(t),
        )
        net.run()
        rep = mon.report()
        # 4 channels carried exactly L flits each.
        assert rep.total_flits_moved == 4 * net.params.packet_flits
        assert rep.max_link_utilization > 0
        assert rep.mean_cpu_utilization == 0.0  # raw worm, no host stack

    def test_empty_window_rejected(self):
        net = default_net()
        mon = NetworkMonitor(net)
        with pytest.raises(ValueError):
            mon.report()

    def test_bottleneck_under_load_is_software(self):
        # At the paper's defaults the host/NI software overheads dominate,
        # so the saturating resource under multicast load is not the links.
        net = default_net()
        mon = NetworkMonitor(net)
        import random

        rng = random.Random(0)
        scheme = make_scheme("binomial")
        for i in range(10):
            src = rng.randrange(32)
            dests = rng.sample([n for n in range(32) if n != src], 8)
            net.engine.at(i * 500, lambda s=src, d=dests: scheme.execute(net, s, d))
        net.run()
        rep = mon.report()
        assert rep.bottleneck() in ("host CPUs", "NI processors")
        assert rep.mean_cpu_utilization > rep.max_link_utilization


class TestCollectives:
    @pytest.mark.parametrize("scheme", ["binomial", "ni", "path", "tree"])
    def test_broadcast_reaches_everyone(self, scheme):
        net = default_net()
        res = broadcast(net, 0, scheme)
        net.run()
        assert res.complete
        assert set(res.node_times) == set(range(1, 32))
        net.assert_quiescent()

    def test_broadcast_tree_fastest(self):
        lat = {}
        for scheme in ("binomial", "ni", "path", "tree"):
            net = default_net()
            res = broadcast(net, 0, scheme)
            net.run()
            lat[scheme] = res.latency
        assert lat["tree"] == min(lat.values())
        assert lat["binomial"] == max(lat.values())

    @pytest.mark.parametrize("scheme", ["tree", "ni"])
    def test_barrier_completes_and_orders(self, scheme):
        net = default_net()
        res = barrier(net, 0, scheme)
        net.run()
        assert res.complete
        assert set(res.node_times) == set(range(32))
        # no node exits the barrier before it began
        assert all(t >= res.start_time for t in res.node_times.values())
        net.assert_quiescent()

    def test_barrier_root_exits_at_release_send(self):
        net = default_net()
        res = barrier(net, 0, "tree")
        net.run()
        # Root's exit is recorded when the release multicast completes.
        assert res.node_times[0] == res.complete_time

    def test_reduce_completes(self):
        net = default_net()
        res = reduce_to_root(net, 0)
        net.run()
        assert res.complete
        assert res.latency > 0
        net.assert_quiescent()

    def test_reduce_scales_with_log_nodes(self):
        lat = {}
        for nodes, switches in ((8, 2), (32, 8)):
            p = SimParams(num_nodes=nodes, num_switches=switches)
            net = SimNetwork(generate_irregular_topology(p, seed=3), p)
            res = reduce_to_root(net, 0)
            net.run()
            lat[nodes] = res.latency
        assert lat[32] > lat[8]
        assert lat[32] < lat[8] * 3  # logarithmic, not linear

    @pytest.mark.parametrize("scheme", ["tree", "path", "ni"])
    def test_multicast_with_acks(self, scheme):
        net = default_net()
        res = multicast_with_acks(net, 0, [4, 9, 13, 21], scheme)
        net.run()
        assert res.complete
        assert set(res.node_times) == {4, 9, 13, 21}
        net.assert_quiescent()

    def test_acks_arrive_after_deliveries(self):
        net = default_net()
        scheme_res = {}
        res = multicast_with_acks(net, 0, [4, 9], "tree")
        net.run()
        # completion (last ack at source) is strictly after the multicast
        # itself would have completed
        net2 = default_net()
        plain = make_scheme("tree").execute(net2, 0, [4, 9])
        net2.run()
        assert res.latency > plain.latency


class TestLoadWithMonitor:
    def test_load_experiment_leaves_consistent_flit_counts(self):
        net_topo = generate_irregular_topology(SimParams(), seed=3)
        point = run_load_experiment(
            net_topo, SimParams(), "tree", degree=4, effective_load=0.02,
            duration=30_000, warmup=3_000,
        )
        assert point.completed > 0
