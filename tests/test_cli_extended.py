"""Tests for the analysis/validation CLI subcommands and new experiments."""

import pytest

from repro.experiments.cli import main as cli_main
from repro.experiments.registry import EXPERIMENTS
from tests.test_experiments import TINY


class TestValidateCommand:
    def test_validate_passes(self, capsys):
        assert cli_main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "ALL CHECKS PASSED" in out
        assert "FAIL" not in out.replace("PASS", "")


class TestRequirementsCommand:
    def test_table_printed(self, capsys):
        assert cli_main(["requirements"]) == 0
        out = capsys.readouterr().out
        assert "tree" in out and "header(bits)" in out

    def test_scaled_system(self, capsys):
        assert cli_main(["requirements", "--nodes", "64", "--switches", "16"]) == 0
        out = capsys.readouterr().out
        assert "64 nodes" in out
        # tree header = one bit per node
        assert " 64 " in out


class TestTornadoCommand:
    def test_tornado_runs(self, capsys):
        assert cli_main(["tornado", "--topologies", "1"]) == 0
        out = capsys.readouterr().out
        assert "o_host" in out and "#" in out


class TestReportCommand:
    def test_report_written(self, tmp_path, capsys):
        out_file = tmp_path / "rep.md"
        rc = cli_main(["report", "ablation-header", "--out", str(out_file)])
        assert rc == 0
        text = out_file.read_text()
        assert "# Reproduction report" in text
        assert "ablation-header" in text

    def test_report_unknown_experiment(self, tmp_path):
        rc = cli_main(
            ["report", "nope", "--out", str(tmp_path / "x.md")]
        )
        assert rc == 2


class TestNewExperiments:
    def test_patterns_experiment_registered_and_runs(self):
        res = EXPERIMENTS["extra-patterns"](TINY)
        assert res.exp_id == "extra-patterns"
        labels = {s.meta["pattern"] for s in res.series}
        assert {"uniform", "clustered", "hotspot", "single-switch"} <= labels

    def test_faults_experiment_runs(self):
        res = EXPERIMENTS["extra-faults"](TINY)
        # healthy point always measurable
        for s in res.series:
            assert s.y[0] is not None

    def test_background_experiment_runs(self):
        res = EXPERIMENTS["extra-background"](TINY)
        assert all(s.y[0] is not None for s in res.series)

    def test_orientation_ablation_runs(self):
        res = EXPERIMENTS["ablation-orientation"](TINY)
        assert res.curve("bfs/tree").y and res.curve("dfs/tree").y
