"""The zero-findings gate: the shipped tree must pass its own linter.

This is the acceptance criterion that moves the paper's invariants from
"hoped for" to "enforced on every PR": any regression that reintroduces a
wall-clock read, unseeded draw, silent except, import cycle, or a routing /
reachability / plan violation on the shipped topologies fails here.
"""

import pathlib

from repro.lint import run_lint

SRC = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"


def test_repo_tree_is_lint_clean():
    result = run_lint([SRC], run_model=True, model_seeds=(1, 2, 3))
    # Floor proves the fuzz package (8 files) is inside the scanned scope:
    # the tree held 86 files before repro.fuzz landed.
    assert result.files_scanned > 86
    assert result.contexts_checked == 3
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.findings == [], f"lint regressions:\n{rendered}"
    assert result.exit_code == 0


def test_code_only_run_is_also_clean():
    result = run_lint([SRC], run_model=False)
    assert result.findings == []
    assert result.contexts_checked == 0
