"""Virtual-channel fabric regression battery.

Four guarantees of the multi-lane wormhole fabric are pinned here:

* **vcs=1 byte-identity** -- with a single lane per physical channel, both
  backends must reproduce the golden delivery maps committed in PR 2
  bit-for-bit (the multi-lane resource degenerates to the FIFO channel's
  exact event sequence);
* **blocking relief** -- the known head-of-line stall from the
  cross-validation suite (a line where one worm occupies the shared link)
  must resolve strictly earlier with 2 virtual channels, without disturbing
  the unblocked worm;
* **backend identity at width** -- the worm-level event model and the
  flit-level reference simulator must agree on per-destination delivery
  times at 2 and 4 VCs, not just at 1;
* **revocation under chaos** -- a mid-flight link fault must abort worms
  holding *any* lane of the revoked physical channel, redeliver
  exactly-once, and replay to a pinned digest at 4 VCs.

Plus directed unit tests of the lane allocator itself (round-robin scan,
adaptive lane-0 exclusion, conservation counters) and of the escape-VC
routing mode end to end.
"""

import random

import pytest

from repro.chaos import FaultInjector, FaultSchedule, ReliableMulticast
from repro.multicast import make_scheme
from repro.params import SimParams
from repro.routing.deadlock import (
    build_escape_cdg,
    escape_subgraph,
    find_cycle,
    verify_escape_deadlock_free,
)
from repro.sim.crossval import run_event_scenario, run_flit_scenario
from repro.sim.engine import Engine
from repro.sim.network import SimNetwork
from repro.sim.resources import MultiLaneResource
from repro.sim.tracelog import TraceLog
from repro.topology.irregular import generate_irregular_topology
from tests.topo_fixtures import make_chorded_diamond, make_line, make_star


# ----------------------------------------------------------------------
# Lane allocator unit tests
# ----------------------------------------------------------------------
class TestMultiLaneResource:
    def test_round_robin_scan_starts_after_last_grant(self):
        eng = Engine()
        res = MultiLaneResource(eng, lanes=3, name="ch")
        got: list[int] = []
        for _ in range(3):
            res.request(got.append)
        assert got == [0, 1, 2]
        res.release(1)
        res.request(got.append)
        # the scan starts at the lane after the last grant (0), so the
        # freed lane 1 is found first
        assert got[-1] == 1

    def test_lane_seed_rotates_first_grant(self):
        eng = Engine()
        res = MultiLaneResource(eng, lanes=4, name="ch", lane_seed=2)
        got: list[int] = []
        res.request(got.append)
        assert got == [2]

    def test_adaptive_request_never_takes_lane_zero(self):
        eng = Engine()
        res = MultiLaneResource(eng, lanes=2, name="ch")
        got: list[int] = []
        res.request(got.append, adaptive_only=True)
        assert got == [1]
        assert res.has_free_lane and not res.has_free_adaptive_lane

    def test_queued_grant_is_deferred_and_fifo(self):
        eng = Engine()
        res = MultiLaneResource(eng, lanes=1, name="ch")
        order: list[str] = []
        res.request(lambda lane: order.append("a"))
        res.request(lambda lane: order.append("b"))
        res.request(lambda lane: order.append("c"))
        assert order == ["a"]  # only the free-lane grant is synchronous
        res.release(0)
        assert order == ["a"]  # queued grants fire via the engine, not inline
        eng.run()
        assert order == ["a", "b"]
        res.release(0)
        eng.run()
        assert order == ["a", "b", "c"]

    def test_release_of_free_lane_rejected(self):
        res = MultiLaneResource(Engine(), lanes=2, name="ch")
        with pytest.raises(RuntimeError, match="idle lane"):
            res.release(0)

    def test_conservation_counters(self):
        eng = Engine()
        res = MultiLaneResource(eng, lanes=2, name="ch")
        lanes: list[int] = []
        for _ in range(2):
            res.request(lanes.append)
        assert res.peak_owned == 2 and res.owned_lanes == 2
        for lane in lanes:
            res.release(lane)
        eng.run()
        assert res.grants == res.releases == 2
        assert res.owned_lanes == 0


# ----------------------------------------------------------------------
# vcs=1 byte-identity against the committed PR 2 golden delivery maps
# ----------------------------------------------------------------------
class TestSingleLaneByteIdentity:
    """The multi-lane fabric at vcs=1 IS the single-lane fabric.

    These golden maps were captured from the pre-VC backends (and are also
    pinned by ``test_flitsim_crossvalidation.py``); reproducing them here
    with an explicit ``vc_count=1`` proves the lane generalization changed
    no event ordering, no arbitration tie-break, and no timestamp.
    """

    def _assert_both_match(self, topo, params, jobs, golden):
        assert run_event_scenario(topo, params, jobs) == golden
        assert run_flit_scenario(topo, params, jobs) == golden

    def test_replicating_worms_small_buffers_identical(self):
        params = SimParams(adaptive_routing=False, input_buffer_flits=4,
                           vc_count=1)
        topo = make_star(3, hosts_per_switch=2)
        jobs = [(0, 0, (2, 4)), (0, 1, (4, 6)), (3, 3, (6,))]
        golden = {
            (0, 2): 134.0,
            (0, 4): 134.0,
            (1, 4): 263.0,
            (1, 6): 134.0,
            (2, 6): 263.0,
        }
        self._assert_both_match(topo, params, jobs, golden)

    def test_seeded_16_switch_identical(self):
        params = SimParams(adaptive_routing=False, num_switches=16,
                           packet_flits=512, vc_count=1)
        topo = generate_irregular_topology(params, seed=7)
        jobs = [
            (0, 7, (0, 8, 9, 24)),
            (25, 14, (3, 4, 22, 24)),
            (50, 5, (0, 1, 14, 19)),
            (75, 5, (7, 8, 17, 20)),
        ]
        golden = {
            (0, 0): 524.0,
            (0, 8): 521.0,
            (0, 9): 524.0,
            (0, 24): 524.0,
            (1, 3): 549.0,
            (1, 4): 546.0,
            (1, 22): 555.0,
            (1, 24): 1037.0,
            (2, 0): 1037.0,
            (2, 1): 568.0,
            (2, 14): 568.0,
            (2, 19): 571.0,
            (3, 7): 1087.0,
            (3, 8): 1081.0,
            (3, 17): 1081.0,
            (3, 20): 1084.0,
        }
        self._assert_both_match(topo, params, jobs, golden)


# ----------------------------------------------------------------------
# Blocking relief: the known head-of-line stall resolves earlier at 2 VCs
# ----------------------------------------------------------------------
class TestBlockingRelief:
    """The HOL scenario of ``test_blocked_worm_delivery_times_agree``:
    worm 0 (node1 -> node2) occupies sw1 -> sw2; worm 1 (node0 -> node2)
    arrives behind it.  A second lane must let worm 1 proceed in parallel.
    """

    JOBS = [(0, 1, (2,)), (0, 0, (2,))]

    def _tails(self, vc_count: int) -> dict[tuple[int, int], float]:
        params = SimParams(adaptive_routing=False, input_buffer_flits=4,
                           vc_count=vc_count)
        return run_event_scenario(make_line(3), params, self.JOBS)

    def test_stall_resolves_strictly_earlier_with_two_lanes(self):
        one = self._tails(1)
        two = self._tails(2)
        # the occupying worm is untouched ...
        assert two[(0, 2)] == one[(0, 2)]
        # ... the blocked worm was genuinely stalled at one lane ...
        assert one[(1, 2)] > one[(0, 2)]
        # ... and provably unblocks with a second lane
        assert two[(1, 2)] < one[(1, 2)]

    @pytest.mark.parametrize("vc_count", [2, 4])
    def test_relief_agrees_across_backends(self, vc_count):
        params = SimParams(adaptive_routing=False, input_buffer_flits=4,
                           vc_count=vc_count)
        topo = make_line(3)
        assert run_event_scenario(topo, params, self.JOBS) == \
            run_flit_scenario(topo, params, self.JOBS)


# ----------------------------------------------------------------------
# Event-vs-flit backend identity at 2 and 4 VCs
# ----------------------------------------------------------------------
class TestMultiLaneBackendAgreement:
    @pytest.mark.parametrize("vc_count", [2, 4])
    def test_star_contention_agrees(self, vc_count):
        params = SimParams(adaptive_routing=False, input_buffer_flits=4,
                           vc_count=vc_count)
        topo = make_star(3, hosts_per_switch=2)
        jobs = [(0, 0, (2, 4)), (0, 1, (4, 6)), (3, 3, (6,))]
        ev = run_event_scenario(topo, params, jobs)
        fl = run_flit_scenario(topo, params, jobs)
        assert ev == fl
        # sanity: the second lane actually changed the vcs=1 timing
        base = run_event_scenario(
            topo, params.replace(vc_count=1), jobs)
        assert ev != base

    @pytest.mark.parametrize("vc_count", [2, 4])
    def test_seeded_irregular_agrees(self, vc_count):
        params = SimParams(adaptive_routing=False, num_switches=8,
                           packet_flits=64, vc_count=vc_count)
        topo = generate_irregular_topology(params, seed=11)
        jobs = [
            (0, 3, (0, 9, 12)),
            (0, 8, (1, 9, 14)),
            (10, 0, (5, 12)),
        ]
        assert run_event_scenario(topo, params, jobs) == \
            run_flit_scenario(topo, params, jobs)


# ----------------------------------------------------------------------
# Escape-VC routing mode
# ----------------------------------------------------------------------
class TestEscapeRouting:
    def test_escape_mode_requires_two_lanes(self):
        with pytest.raises(ValueError, match="at least 2 VCs"):
            SimParams(vc_routing="escape", vc_count=1).validate()

    def test_escape_lane_cdg_is_acyclic_on_seeded_topology(self):
        params = SimParams(num_switches=16)
        topo = generate_irregular_topology(params, seed=7)
        net = SimNetwork(topo, params)
        verify_escape_deadlock_free(topo, net.routing, vc_count=2)

    def test_full_escape_cdg_is_cyclic_negative_control(self):
        # The acyclicity proof is about the *escape subgraph*; the full
        # lane-annotated CDG (adaptive claims included) is cyclic on any
        # topology with redundant links, which is what makes restricting
        # lane 0 a meaningful theorem rather than a vacuous one.
        params = SimParams(num_switches=16)
        topo = generate_irregular_topology(params, seed=7)
        net = SimNetwork(topo, params)
        deps = build_escape_cdg(topo, net.routing, vc_count=2)
        assert find_cycle(deps) is not None
        assert find_cycle(escape_subgraph(deps)) is None

    @pytest.mark.parametrize("vc_count", [2, 4])
    def test_escape_unicasts_deliver(self, vc_count):
        params = SimParams(num_switches=4, num_nodes=12,
                           vc_count=vc_count, vc_routing="escape")
        topo = generate_irregular_topology(params, seed=3)
        net = SimNetwork(topo, params)
        delivered: list[int] = []
        rng = random.Random(9)
        pairs = []
        for _ in range(16):
            src = rng.randrange(topo.num_nodes)
            dst = rng.choice([n for n in range(topo.num_nodes) if n != src])
            pairs.append((src, dst))
        from repro.sim.worm import Worm

        for i, (src, dst) in enumerate(pairs):
            w = Worm(net.engine, net.params, net.unicast_steer(dst),
                     on_delivered=lambda _n, _t, i=i: delivered.append(i),
                     rng=net.rng)
            w.start(net.fabric.inject[src], None)
        net.run()
        assert sorted(delivered) == list(range(len(pairs)))
        net.assert_quiescent()

    def test_escape_mode_is_deterministic(self):
        def run_once() -> dict:
            params = SimParams(num_switches=4, num_nodes=12, vc_count=2,
                               vc_routing="escape")
            topo = generate_irregular_topology(params, seed=3)
            net = SimNetwork(topo, params)
            out: dict[int, float] = {}
            from repro.sim.worm import Worm

            for i, (src, dst) in enumerate([(0, 7), (1, 7), (2, 7), (3, 7)]):
                w = Worm(net.engine, net.params, net.unicast_steer(dst),
                         on_delivered=lambda _n, t, i=i: out.__setitem__(i, t),
                         rng=net.rng)
                w.start(net.fabric.inject[src], None)
            net.run()
            return out

        assert run_once() == run_once()


# ----------------------------------------------------------------------
# Channel revocation under chaos with multiple lanes
# ----------------------------------------------------------------------
def four_vc_chaos_digest(seed: int) -> str:
    """Pinned 4-VC chaos run: a link dies while worms hold its lanes.

    Two reliable multicasts race six raw background unicasts that all
    converge on node 6 -- more worms than the 4 lanes of its delivery
    channel, so the run exercises lane sharing, round-robin arbitration
    AND queueing behind a fully-owned channel (asserted via ``peak_owned``).
    The background worms have no retry layer -- ones the fault aborts stay
    undelivered, which is fine: the digest pins whatever happened,
    including their delivery times (the chaos trace alone only records the
    reliable layer).  Module-level (not a closure) so it replays
    byte-identically through the same ``ProcessPoolExecutor`` path the
    experiment runner uses.
    """
    import hashlib

    from repro.sim.worm import Worm

    net = SimNetwork(make_chorded_diamond(), SimParams(vc_count=4))
    net.trace = TraceLog()
    net.worm_log = []
    sched = FaultSchedule.random(
        net.topo, 2, random.Random(seed), window=(2.0, 40.0))
    FaultInjector(net, sched, reconfig_latency=5.0).arm()
    bg: list[tuple[int, float]] = []
    for i, src in enumerate((1, 2, 3, 4, 5, 7)):
        w = Worm(net.engine, net.params, net.unicast_steer(6),
                 on_delivered=lambda _n, t, i=i: bg.append((i, t)),
                 rng=net.rng)
        w.start(net.fabric.inject[src], None)
    reliable = ReliableMulticast(net, make_scheme("tree"))
    rng = random.Random(seed + 1)
    ops = [reliable.send(0, rng.sample(range(1, 8), 3)) for _ in range(2)]
    net.run()
    assert all(op.complete for op in ops)
    assert max(c.peak_owned for c in net.fabric.all_channels()) == 4, (
        "scenario must fully own some physical channel's 4 lanes"
    )
    net.assert_quiescent()
    witness = net.trace.digest() + repr(sorted(bg))
    return hashlib.sha256(witness.encode("utf-8")).hexdigest()


FOUR_VC_GOLDEN_DIGEST = (
    "fa03c9891c1e81300fa6bcddf8788236bf7a9fc04cce2d50533da81076e2dad5"
)
"""sha256 witness of ``four_vc_chaos_digest(42)`` (trace + background tails).

If an intentional timing/trace change moves this, regenerate with
``PYTHONPATH=src:. python -c "from tests.test_vc_fabric import *; print(four_vc_chaos_digest(42))"``
and say why in the commit message.
"""


class TestRevocationUnderLanes:
    def test_fault_aborts_lane_holders_and_redelivers(self):
        # The revocation contract: a revoked physical channel takes down
        # the worms holding ANY of its lanes; the reliable layer then
        # redelivers exactly-once after reconfiguration.
        net = SimNetwork(make_chorded_diamond(), SimParams(vc_count=4))
        net.trace = TraceLog()
        net.worm_log = []
        injector = FaultInjector(
            net, FaultSchedule.from_pairs([(5.0, 0)]), reconfig_latency=5.0)
        injector.arm()
        reliable = ReliableMulticast(net, make_scheme("tree"))
        op = reliable.send(0, [2, 5, 7])
        net.run()
        assert op.complete
        assert net.chaos.reconfigurations == 1
        # the fault genuinely interleaved with the flight
        assert net.chaos.worms_aborted >= 1
        assert net.chaos.retries >= 1
        net.assert_quiescent()
        # no lane leaked: every channel's grants are matched by releases
        for ch in net.fabric.all_channels():
            assert ch.owned_lanes == 0, ch.name
            assert ch.grants == ch.releases, ch.name

    def test_four_vc_chaos_digest_is_pinned(self):
        assert four_vc_chaos_digest(42) == FOUR_VC_GOLDEN_DIGEST

    def test_four_vc_chaos_replays_identically(self):
        assert four_vc_chaos_digest(42) == four_vc_chaos_digest(42)
