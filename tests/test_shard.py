"""Shard determinism suite: sharded runs must witness the serial run.

The contract (docs/sharding.md):

* **one shard** -- the merged trace is *raw* byte-identical to the serial
  run (same records, same emission order, same digest), and the protocol
  degenerates to a message-free drain;
* **any shard count** -- the merged trace is *canonically* byte-identical
  (same records at the same simulated times; content-sorted digests equal)
  and the delivery map is exactly the serial one.  Raw emission order may
  legally permute *within* a timestamp across shards: multicast worms
  advance in lockstep depth-waves, so causally-independent same-time
  records from different partitions interleave in the serial trace by
  scheduling history no partitioned run can observe;
* faults replay as replicated transactions, reproducing the serial
  injector's record sequence and abort order.

Serial digests are pinned so the reference itself cannot drift silently.
"""

from dataclasses import replace

import pytest

from repro.params import SimParams
from repro.shard import (
    ShardReport,
    ShardScenario,
    ShardSimulation,
    canonical_digest,
    merge_traces,
    partition_switches,
    run_serial,
    seeded_scenario,
    smoke_scenario,
)

# ----------------------------------------------------------------------
# Pinned scenarios and their serial digests
# ----------------------------------------------------------------------
SMOKE_SERIAL = (
    "435a4d8e11044aea8c3be50e1ca8a9fb0c2fb643012eb75012ca7e483a6b54b0"
)
SEEDED_SERIAL = (
    "4e32dfdbc4a6cf3282a329b8e829bae7b569ed9bebd3712cba5d72288efbceb4"
)
CHAOS_SERIAL = (
    "33078665b2ff7a34f4fc157567fb19663e0b214ac9a16998a0fa25cfc2f44843"
)


def _seeded() -> ShardScenario:
    return seeded_scenario(16, 6, 2, fanout=3, packet_flits=96, spacing=40)


def _chaos() -> ShardScenario:
    # Both faulted links are already held by their victims at fault time
    # (the serial reference statically routes, so a fault on a link some
    # *future* worm needs is outside both runners' contract).
    return replace(
        _seeded(),
        fault_pairs=((43.0, 11), (129.0, 25)),
        reconfig_latency=5.0,
    )


def _chaos_with_skip() -> ShardScenario:
    return replace(
        _seeded(),
        fault_pairs=((43.0, 11), (90.0, 999)),
        reconfig_latency=5.0,
    )


SCENARIOS = {
    "smoke": (smoke_scenario, SMOKE_SERIAL),
    "seeded": (_seeded, SEEDED_SERIAL),
    "chaos": (_chaos, CHAOS_SERIAL),
}


@pytest.fixture(scope="module")
def serial():
    """Serial reference runs, computed once per scenario."""
    out = {}
    for name, (make, _digest) in SCENARIOS.items():
        deliveries, trace = run_serial(make())
        out[name] = (deliveries, trace)
    return out


# ----------------------------------------------------------------------
# Partitioner
# ----------------------------------------------------------------------
def test_partition_covers_every_switch_with_nonempty_shards():
    topo = smoke_scenario().topo
    for shards in (1, 2, 3, 4, 8):
        plan = partition_switches(topo, shards, seed=0)
        assert len(plan.shard_of_switch) == topo.num_switches
        assert all(0 <= s < shards for s in plan.shard_of_switch)
        for shard in range(shards):
            assert plan.switches_of(shard), f"shard {shard} is empty"


def test_partition_boundary_links_are_exactly_the_cut():
    topo = smoke_scenario().topo
    plan = partition_switches(topo, 4, seed=0)
    cut = {
        lk.link_id
        for lk in topo.links
        if plan.shard_of_switch[lk.a.switch] != plan.shard_of_switch[lk.b.switch]
    }
    assert set(plan.boundary_links) == cut


def test_partition_is_deterministic_per_seed():
    topo = _seeded().topo
    a = partition_switches(topo, 4, seed=3)
    b = partition_switches(topo, 4, seed=3)
    assert a.shard_of_switch == b.shard_of_switch
    assert a.boundary_links == b.boundary_links


def test_lookahead_is_min_boundary_padding():
    scen = _seeded()
    plan = partition_switches(scen.topo, 4, seed=0)
    assert plan.lookahead(scen.params) == (
        scen.params.switch_delay + scen.params.link_delay
    )
    solo = partition_switches(scen.topo, 1, seed=0)
    assert not solo.boundary_links
    assert solo.lookahead(scen.params) == float("inf")


# ----------------------------------------------------------------------
# Serial reference is pinned
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_serial_digest_pinned(serial, name):
    _deliveries, trace = serial[name]
    assert trace.digest() == SCENARIOS[name][1]


# ----------------------------------------------------------------------
# One shard: raw byte-identity, message-free drain
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_one_shard_is_raw_byte_identical(serial, name):
    make, pinned = SCENARIOS[name]
    result = ShardSimulation(make(), num_shards=1).run()
    deliveries, trace = serial[name]
    assert result.digest == trace.digest() == pinned
    assert result.deliveries == deliveries
    assert result.messages == 0


def test_zero_boundary_partition_degenerates_to_serial_drain(serial):
    """Infinite lookahead: one unbounded drain per fault interval."""
    result = ShardSimulation(_chaos(), num_shards=1).run()
    assert result.plan.lookahead(_chaos().params) == float("inf")
    # two faults => three drain intervals, zero boundary traffic
    assert result.rounds == 3
    assert result.messages == 0
    assert result.digest == CHAOS_SERIAL


# ----------------------------------------------------------------------
# Any shard count: canonical byte-identity, exact deliveries
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", [2, 4, 8])
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_sharded_run_witnesses_serial(serial, name, shards):
    make, _pinned = SCENARIOS[name]
    result = ShardSimulation(make(), num_shards=shards).run()
    deliveries, trace = serial[name]
    assert result.canonical == canonical_digest(trace.records())
    assert result.deliveries == deliveries
    assert len(result.trace) == len(trace)
    assert result.messages > 0  # the cut was actually exercised


@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_run_replays_byte_identically(shards):
    """Same scenario, same shard count: the merged raw digest is stable."""
    first = ShardSimulation(_chaos(), num_shards=shards).run()
    again = ShardSimulation(_chaos(), num_shards=shards).run()
    assert first.digest == again.digest
    assert first.deliveries == again.deliveries


# ----------------------------------------------------------------------
# Replicated fault transaction
# ----------------------------------------------------------------------
def test_fault_records_match_serial_sequence(serial):
    _deliveries, trace = serial["chaos"]
    want = [
        (r.time, r.event, r.worm, r.detail)
        for r in trace.records()
        if r.event in ("fault", "fault-skip", "abort", "reconfig")
    ]
    for shards in (2, 4):
        result = ShardSimulation(_chaos(), num_shards=shards).run()
        got = [
            (r.time, r.event, r.worm, r.detail)
            for r in result.trace.records()
            if r.event in ("fault", "fault-skip", "abort", "reconfig")
        ]
        assert got == want


def test_invalid_fault_skips_identically(serial):
    scen = _chaos_with_skip()
    deliveries, trace = run_serial(scen)
    for shards in (1, 2):
        result = ShardSimulation(scen, num_shards=shards).run()
        assert result.canonical == canonical_digest(trace.records())
        assert result.deliveries == deliveries
        skips = [
            r for r in result.trace.records() if r.event == "fault-skip"
        ]
        assert len(skips) == 1 and "link 999" in skips[0].detail


# ----------------------------------------------------------------------
# Guard rails
# ----------------------------------------------------------------------
def test_merge_refuses_evicted_traces():
    rep = ShardReport(
        shard_id=0,
        deliveries={},
        records=[],
        fault_indices=[],
        events_fired=0,
        messages_sent=0,
        dropped_records=5,
    )
    with pytest.raises(RuntimeError, match="evicted"):
        merge_traces([rep])


def test_scenario_rejects_unsorted_jobs():
    scen = smoke_scenario()
    with pytest.raises(ValueError, match="sorted by start time"):
        ShardScenario(
            scen.topo,
            scen.params,
            jobs=((25, 14, (3, 4)), (0, 7, (0, 8))),
        )


def test_scenario_generator_is_deterministic():
    a = _seeded()
    b = _seeded()
    assert a.jobs == b.jobs
    assert isinstance(a.params, SimParams)
