"""Unit tests for the static plans of the four multicast schemes."""

import math
import random

import pytest

from repro.multicast.binomial import build_binomial_tree, tree_depth_in_steps
from repro.multicast.kbinomial import (
    build_k_binomial_tree,
    choose_k,
    estimate_fpfs_completion,
)
from repro.multicast.ordering import contention_aware_order
from repro.multicast.pathworm import best_single_worm, plan_path_worms
from repro.multicast.treeworm import plan_tree_worm
from repro.params import SimParams
from repro.routing.paths import is_legal_path
from repro.sim.network import SimNetwork
from repro.topology.irregular import generate_irregular_topology


def default_net(seed=3, **kw) -> SimNetwork:
    p = SimParams(**kw)
    return SimNetwork(generate_irregular_topology(p, seed=seed), p)


def tree_members(tree: dict[int, list[int]], root: int) -> set[int]:
    seen = {root}
    stack = [root]
    while stack:
        n = stack.pop()
        for c in tree[n]:
            assert c not in seen, "node informed twice"
            seen.add(c)
            stack.append(c)
    return seen


class TestBinomialTree:
    def test_covers_all_members_once(self):
        members = list(range(10))
        tree = build_binomial_tree(members)
        assert tree_members(tree, 0) == set(members)

    @pytest.mark.parametrize("n", [2, 3, 4, 7, 8, 9, 16, 31])
    def test_step_count_is_ceil_log2(self, n):
        tree = build_binomial_tree(list(range(n)))
        assert tree_depth_in_steps(tree, 0) == math.ceil(math.log2(n))

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            build_binomial_tree([])
        with pytest.raises(ValueError):
            build_binomial_tree([1, 1])

    def test_single_member(self):
        assert build_binomial_tree([5]) == {5: []}


class TestKBinomialTree:
    def test_k1_is_a_chain(self):
        tree = build_k_binomial_tree(list(range(6)), 1)
        assert tree[0] == [1] and tree[1] == [2] and tree[4] == [5]

    def test_large_k_matches_binomial(self):
        members = list(range(17))
        assert build_k_binomial_tree(members, 20) == build_binomial_tree(members)

    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    @pytest.mark.parametrize("n", [2, 5, 9, 16, 30])
    def test_children_bounded_and_complete(self, k, n):
        members = list(range(n))
        tree = build_k_binomial_tree(members, k)
        assert tree_members(tree, 0) == set(members)
        assert all(len(ch) <= k for ch in tree.values())

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            build_k_binomial_tree([0, 1], 0)


class TestKSelection:
    def test_estimator_prefers_fanout_for_single_packet(self):
        # With one packet and o_ni far below o_host, pipelining depth is
        # cheap; the estimate for a chain (k=1) must be worse than for a
        # bushier tree at realistic sizes.
        net = default_net()
        members = list(range(16))
        lat = lambda a, b: 200.0
        est = {
            k: estimate_fpfs_completion(
                build_k_binomial_tree(members, k), 0, net.params, lat
            )
            for k in (1, 2, 4)
        }
        assert est[2] < est[1]

    def test_choose_k_returns_valid_tree(self):
        net = default_net()
        dests = [n for n in range(1, 16)]
        k, tree = choose_k(net, 0, dests)
        assert 1 <= k <= 8
        assert tree_members(tree, 0) == set([0] + dests)

    def test_multi_packet_prefers_smaller_k(self):
        # Long messages raise the per-child serialisation cost (m * o_ni per
        # child), so the chosen k should not grow with packet count.
        net1 = default_net(message_packets=1)
        net8 = default_net(message_packets=8)
        dests = list(range(1, 24))
        k1, _ = choose_k(net1, 0, dests)
        k8, _ = choose_k(net8, 0, dests)
        assert k8 <= k1


class TestOrdering:
    def test_far_clusters_first(self):
        net = default_net()
        dests = [n for n in range(1, 20)]
        ordered = contention_aware_order(net.topo, net.routing, 0, dests)
        assert sorted(ordered) == sorted(dests)
        src_sw = net.topo.switch_of_node(0)
        dists = [
            net.routing.distance(src_sw, net.topo.switch_of_node(d))
            for d in ordered
        ]
        assert dists[0] == max(dists)
        # Destinations on the same switch stay adjacent in the order.
        switches = [net.topo.switch_of_node(d) for d in ordered]
        seen = set()
        for i, s in enumerate(switches):
            if s in seen:
                assert switches[i - 1] == s, "cluster split"
            seen.add(s)


class TestTreeWormPlan:
    def test_turn_covers_all_destinations(self):
        for seed in range(5):
            net = default_net(seed=seed)
            dests = random.Random(seed).sample(range(1, 32), 12)
            plan = plan_tree_worm(net, net.topo.switch_of_node(0), dests)
            assert net.reach.covers(plan.turn_switch, set(dests))

    def test_up_path_is_minimal_up_only(self):
        for seed in range(5):
            net = default_net(seed=seed)
            dests = random.Random(seed + 50).sample(range(1, 32), 8)
            plan = plan_tree_worm(net, net.topo.switch_of_node(0), dests)
            path = plan.up_switch_path
            assert path[0] == net.topo.switch_of_node(0)
            assert path[-1] == plan.turn_switch
            # No shallower covering ancestor: every strictly shorter
            # up-distance switch on the path must fail coverage.
            for s in path[:-1]:
                assert not net.reach.covers(s, set(dests))

    def test_local_only_multicast_turns_at_source(self):
        net = default_net()
        src_sw = net.topo.switch_of_node(0)
        local = [n for n in net.topo.nodes_on_switch(src_sw) if n != 0]
        if not local:
            pytest.skip("seed put no other host on the source switch")
        plan = plan_tree_worm(net, src_sw, local)
        assert plan.turn_switch == src_sw
        assert plan.up_switch_path == (src_sw,)


class TestPathWormPlan:
    @pytest.mark.parametrize("strategy", ["lg", "greedy"])
    def test_plan_covers_everything_exactly_once(self, strategy):
        for seed in range(5):
            net = default_net(seed=seed)
            dests = random.Random(seed).sample(range(1, 32), 14)
            plan = plan_path_worms(net, 0, dests, strategy=strategy)
            covered = [n for w in plan.worms for n in w.covered]
            assert sorted(covered) == sorted(dests)

    def test_paths_are_legal(self):
        for seed in range(5):
            net = default_net(seed=seed)
            dests = random.Random(seed + 9).sample(range(1, 32), 14)
            plan = plan_path_worms(net, 0, dests)
            for w in plan.worms:
                assert is_legal_path(net.routing, w.switch_path[0], list(w.links))
                assert w.switch_path[0] == net.topo.switch_of_node(w.sender)

    def test_drops_lie_on_path(self):
        net = default_net()
        dests = random.Random(1).sample(range(1, 32), 14)
        plan = plan_path_worms(net, 0, dests)
        for w in plan.worms:
            assert len(w.drops) == len(w.switch_path)
            for sw, nodes in zip(w.switch_path, w.drops):
                for n in nodes:
                    assert net.topo.switch_of_node(n) == sw

    def test_phase_structure(self):
        # Phase 1 is the source's single worm; later phases are sent only by
        # destinations covered earlier, one worm per sender ever.
        net = default_net()
        dests = [n for n in range(1, 32)]
        plan = plan_path_worms(net, 0, dests)
        assert len(plan.phases[0]) == 1
        assert plan.phases[0][0].sender == 0
        senders = [w.sender for w in plan.worms]
        assert len(senders) == len(set(senders)), "a sender sent twice"
        covered: set[int] = set()
        for phase in plan.phases:
            for w in phase:
                assert w.sender == 0 or w.sender in covered
            for w in phase:
                covered |= w.covered
            # phase width bounded by the eligible sender pool
            assert len(phase) <= 1 + len(covered)

    def test_senders_have_message_when_sending(self):
        # Every worm's sender is the source or was covered in an earlier phase.
        net = default_net()
        dests = random.Random(2).sample(range(1, 32), 20)
        plan = plan_path_worms(net, 0, dests)
        have = {0}
        for phase in plan.phases:
            for w in phase:
                assert w.sender in have
            for w in phase:
                have |= w.covered

    def test_single_worm_when_one_path_suffices(self):
        # All destinations on the source's own switch: one worm, one phase.
        net = default_net()
        src_sw = net.topo.switch_of_node(0)
        local = [n for n in net.topo.nodes_on_switch(src_sw) if n != 0]
        if not local:
            pytest.skip("seed put no other host on the source switch")
        plan = plan_path_worms(net, 0, local)
        assert plan.num_phases == 1 and len(plan.worms) == 1

    def test_best_single_worm_rejects_empty(self):
        net = default_net()
        with pytest.raises(ValueError):
            best_single_worm(net, 0, frozenset())

    def test_lg_vs_greedy_both_valid(self):
        net = default_net()
        dests = random.Random(3).sample(range(1, 32), 16)
        for strat in ("lg", "greedy"):
            w = best_single_worm(net, 0, frozenset(dests), strategy=strat)
            assert w.covered
        with pytest.raises(ValueError):
            best_single_worm(net, 0, frozenset(dests), strategy="bogus")
