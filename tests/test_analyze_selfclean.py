"""The analyze gate: the shipped tree must pass its own whole-program pass.

Three acceptance criteria live here: ``repro-analyze`` exits 0 on the tree
with zero unsuppressed findings, the committed partition-safety manifest is
byte-identical to a fresh regeneration and classifies every SIM_SCOPES
module, and every committed corpus entry's fault schedule is statically
proven safe at every routing epoch.
"""

import pathlib

from repro.analyze import run_analysis
from repro.analyze.engine import render_manifest
from repro.lint.registry import SIM_SCOPES

REPO = pathlib.Path(__file__).resolve().parents[1]
SRC = REPO / "src" / "repro"
MANIFEST = REPO / "analyze-manifest.json"
CORPUS = REPO / "tests" / "fuzz_corpus"


def test_repo_tree_is_analyze_clean():
    result = run_analysis(
        [SRC], corpus_dirs=[CORPUS], manifest_path=MANIFEST
    )
    assert result.files_scanned > 100
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.findings == [], f"analyze regressions:\n{rendered}"
    assert result.exit_code == 0
    # The id() suppressions in sim/worm.py and shard/worm_part.py carry
    # justifications and are the only expected ones; a new suppression
    # needs a review here.
    assert result.suppressed == 6


def test_manifest_matches_fresh_regeneration():
    result = run_analysis([SRC])
    assert MANIFEST.exists(), "analyze-manifest.json must be committed"
    committed = MANIFEST.read_text(encoding="utf-8")
    assert committed == render_manifest(result.manifest), (
        "committed manifest is stale; regenerate with "
        "repro-analyze --write-manifest"
    )


def test_manifest_classifies_every_sim_scope_module():
    result = run_analysis([SRC])
    modules = result.manifest["modules"]
    scoped = {
        name for name in modules
        if name.split(".")[1] in SIM_SCOPES
    }
    assert set(modules) == scoped and modules, "non-sim modules leaked in"
    for scope in SIM_SCOPES:
        assert any(name.split(".")[1] == scope for name in modules), (
            f"scope {scope} has no classified module"
        )
    valid = {"shareable-immutable", "partition-local",
             "cross-partition-mutating"}
    for name, entry in modules.items():
        assert entry["classification"] in valid, name
    # Spot anchors: the engine is per-partition state, routing tables are
    # read-shared, and nothing in the shipped tree mutates cross-partition.
    assert modules["repro.sim.engine"]["classification"] == "partition-local"
    assert modules["repro.routing.updown"]["classification"] == \
        "shareable-immutable"
    assert not any(
        e["classification"] == "cross-partition-mutating"
        for e in modules.values()
    )


def test_every_corpus_epoch_is_verified():
    result = run_analysis([SRC], corpus_dirs=[CORPUS])
    assert not [f for f in result.findings if f.rule.startswith("epoch-")]
    # Every committed entry must be proven, and the chaos entries must
    # contribute more than the trivial epoch 0.
    entries = sorted(CORPUS.glob("*.json"))
    assert len(result.epochs_verified) == len(entries) > 0
    assert sum(result.epochs_verified.values()) > len(entries)
