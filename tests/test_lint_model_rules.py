"""Model-rule tests: the up*/down* invariants, verified and falsified."""

import pytest

from repro.lint.model_rules import (
    ModelContext,
    check_cdg_negative_control,
    check_header_capacity,
    check_multicast_cdg,
    check_path_plan_legality,
    check_reachability_superset,
    context_from_topology,
    default_contexts,
)
from repro.params import SimParams
from repro.routing.bfs_tree import build_bfs_tree
from repro.routing.deadlock import (
    build_multicast_cdg,
    build_unrestricted_cdg,
    find_cycle,
)
from repro.routing.updown import UpDownRouting
from repro.topology.irregular import generate_irregular_topology
from tests.topo_fixtures import make_diamond, make_line, make_star


def ctx_for(topo, label="t", **params) -> ModelContext:
    p = SimParams(
        num_nodes=topo.num_nodes,
        num_switches=topo.num_switches,
        ports_per_switch=topo.ports_per_switch,
        **params,
    )
    return context_from_topology(topo, p, label)


def tampered_diamond_routing() -> tuple:
    """Diamond with the link orientation corrupted into a down cycle
    0 -> 1 -> 3 -> 2 -> 0 (a broken Autonet election, not a legal one)."""
    topo = make_diamond()
    rt = UpDownRouting(topo=topo, tree=build_bfs_tree(topo))
    rt._up_end = {0: 0, 2: 1, 3: 3, 1: 2}
    rt._compute_tables()
    return topo, rt


class TestExtendedCdg:
    @pytest.mark.parametrize("make", [make_line, make_diamond, make_star])
    def test_fixture_topologies_pass(self, make):
        topo = make()
        rt = UpDownRouting.build(topo)
        assert find_cycle(build_multicast_cdg(topo, rt)) is None

    @pytest.mark.parametrize("seed", [1, 2, 3, 7])
    def test_shipped_irregular_topologies_pass(self, seed):
        topo = generate_irregular_topology(SimParams(), seed=seed)
        assert check_multicast_cdg(ctx_for(topo, f"seed{seed}")) == []

    def test_extended_cdg_is_superset_of_base(self):
        from repro.routing.deadlock import build_channel_dependency_graph

        topo = generate_irregular_topology(SimParams(), seed=1)
        rt = UpDownRouting.build(topo)
        base = build_channel_dependency_graph(topo, rt)
        ext = build_multicast_cdg(topo, rt)
        for chan, deps in base.items():
            assert deps <= ext[chan]

    def test_replication_branch_edges_present(self):
        topo = make_star()
        rt = UpDownRouting.build(topo)
        deps = build_multicast_cdg(topo, rt)
        hub = rt.tree.root
        down = sorted(rt.down_links_of(hub), key=lambda lk: lk.link_id)
        assert len(down) >= 2
        held = ("fwd", down[0].link_id, hub)
        requested = ("fwd", down[1].link_id, hub)
        assert requested in deps[held]
        # Ordered acquisition: the reverse edge must NOT exist, or every
        # replication would be a self-made 2-cycle.
        assert held not in deps[requested]

    def test_tampered_orientation_detected(self):
        topo, rt = tampered_diamond_routing()
        assert find_cycle(build_multicast_cdg(topo, rt)) is not None

    def test_negative_control_unrestricted_routing(self):
        # The checker must flag minimal routing without the up/down rule on
        # a cyclic topology -- the paper's motivating deadlock.
        assert find_cycle(build_unrestricted_cdg(make_diamond())) is not None

    def test_negative_control_rule_passes_when_detection_works(self):
        assert check_cdg_negative_control(ctx_for(make_diamond())) == []

    def test_negative_control_skips_tree_topologies(self):
        # A line has no cycle to seed; the self-test does not apply.
        assert check_cdg_negative_control(ctx_for(make_line())) == []


class TestReachabilitySuperset:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_shipped_topologies_pass(self, seed):
        topo = generate_irregular_topology(SimParams(), seed=seed)
        assert check_reachability_superset(ctx_for(topo, f"seed{seed}")) == []

    def test_corrupted_reachability_flagged(self):
        ctx = ctx_for(make_star())
        hub = ctx.routing.tree.root
        # Drop one node from the hub's reachability string.
        victim = next(iter(ctx.reach.down_reach(hub)))
        ctx.reach._switch_reach[hub] = ctx.reach.down_reach(hub) - {victim}
        findings = check_reachability_superset(ctx)
        assert findings
        assert any(str(victim) in f.message for f in findings)


class TestPathPlanLegality:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_shipped_topologies_pass(self, seed):
        topo = generate_irregular_topology(SimParams(), seed=seed)
        assert check_path_plan_legality(ctx_for(topo, f"seed{seed}")) == []

    def test_verify_plan_rejects_corrupted_plan(self):
        from repro.multicast.pathworm import (
            MulticastPathPlan,
            PathWormPlan,
            plan_path_worms,
            verify_plan,
        )

        topo = generate_irregular_topology(SimParams(), seed=1)
        ctx = ctx_for(topo)

        class View:
            pass

        view = View()
        view.topo, view.routing = ctx.topo, ctx.routing
        dests = [3, 9, 17, 25]
        plan = plan_path_worms(view, 0, dests)
        assert verify_plan(ctx.topo, ctx.routing, 0, dests, plan) == []

        # Corrupt: claim a drop for a node on the wrong switch.
        worm = plan.phases[0][0]
        wrong = next(
            n for n in range(topo.num_nodes)
            if topo.switch_of_node(n) != worm.switch_path[0]
        )
        bad_worm = PathWormPlan(
            sender=worm.sender,
            switch_path=worm.switch_path,
            links=worm.links,
            drops=((wrong,),) + worm.drops[1:],
        )
        bad = MulticastPathPlan(phases=((bad_worm,) + plan.phases[0][1:],)
                                + plan.phases[1:])
        problems = verify_plan(ctx.topo, ctx.routing, 0, dests, bad)
        assert any("attached to switch" in p for p in problems)

    def test_updown_decomposition(self):
        from repro.routing.paths import shortest_path_links, updown_decomposition

        topo = generate_irregular_topology(SimParams(), seed=1)
        rt = UpDownRouting.build(topo)
        links = shortest_path_links(rt, 3, 6)
        up, down = updown_decomposition(rt, 3, links)
        assert up + down == len(links)

    def test_updown_decomposition_rejects_up_after_down(self):
        from repro.routing.paths import updown_decomposition

        topo = make_diamond()
        rt = UpDownRouting.build(topo)
        # 0 is the root: link0 (0->1) is down, link2 (1->3) down, then
        # climbing back 3->2 via link3 is up -- illegal after down... except
        # 2 is *below* 3? Use explicit orientation queries to build the
        # illegal sequence: go down then take any up traversal.
        down_lk = rt.down_links_of(0)[0]
        mid = down_lk.other_end(0).switch
        up_lk = rt.up_links_of(mid)[0]
        with pytest.raises(ValueError):
            updown_decomposition(rt, 0, [down_lk, up_lk])


class TestHeaderCapacity:
    def test_default_params_fit(self):
        topo = generate_irregular_topology(SimParams(), seed=1)
        assert check_header_capacity(ctx_for(topo)) == []

    def test_tiny_packets_flagged(self):
        topo = generate_irregular_topology(SimParams(), seed=1)
        # 32 destination bits + 5 id bits = 5 header flits >= 4-flit packets.
        findings = check_header_capacity(ctx_for(topo, packet_flits=4))
        assert len(findings) == 1
        assert "header" in findings[0].message


def test_default_contexts_labelled():
    ctxs = default_contexts((1, 2))
    assert [c.label for c in ctxs] == ["seed1", "seed2"]
    assert all(c.path.startswith("<model:") for c in ctxs)
