"""The executable abstract: all four paper conclusions must hold."""

from repro.experiments.cli import main as cli_main
from repro.experiments.conclusions import check_conclusions, render_conclusions


class TestConclusions:
    def test_all_four_hold(self):
        checks = check_conclusions(n_topologies=2, trials=2)
        assert len(checks) == 4
        for c in checks:
            assert c.holds, f"{c.claim}: {c.evidence}"

    def test_render(self):
        checks = check_conclusions(n_topologies=1, trials=1)
        out = render_conclusions(checks)
        assert out.count("HOLDS") + out.count("FAILS") == 4

    def test_cli(self, capsys):
        assert cli_main(["conclusions"]) == 0
        out = capsys.readouterr().out
        assert "HOLDS" in out
