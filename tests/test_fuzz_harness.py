"""The fuzzing harness's own acceptance gates.

Three layers:

* the clean tree produces zero violations over a seeded scenario stream
  (and the CLI agrees, byte-for-byte across invocations);
* deliberately planted bugs -- a dropped delivery deep in the worm model, a
  flit-accounting leak -- are detected by the oracles and the minimizer
  shrinks the reproducer into the acceptance bounds (<= 8 switches,
  <= 4 destinations);
* the structural shrink moves are individually sound (renumbering,
  connectivity preservation, refusal to drop hosted switches).
"""

import pytest

from repro.fuzz import (
    generate_scenario,
    minimize,
    oracle_predicate,
    run_oracles,
    save_entry,
)
from repro.fuzz.cli import main as fuzz_main
from repro.fuzz.scenario import FuzzScenario, derive_seed, scheme_spec
from repro.fuzz.shrink import drop_nodes, drop_switch
from repro.params import SimParams
from repro.sim.worm import Worm
from repro.topology.irregular import generate_irregular_topology

CLEAN_ITERATIONS = 12
"""Scenario budget for in-process clean runs (CI smoke runs many more)."""


# ----------------------------------------------------------------------
# Clean-tree behaviour
# ----------------------------------------------------------------------
def test_clean_stream_has_zero_violations():
    for i in range(CLEAN_ITERATIONS):
        report = run_oracles(generate_scenario(0, i))
        assert report.ok, report.render()


def test_generator_is_deterministic():
    a = generate_scenario(5, 9)
    b = generate_scenario(5, 9)
    assert a.digest() == b.digest()
    assert a.to_dict() == b.to_dict()
    assert derive_seed(5, "fuzz-scenario", 9) == derive_seed(5, "fuzz-scenario", 9)
    assert derive_seed(5, "x") != derive_seed(6, "x")


def test_cli_run_clean_exits_zero(capsys):
    rc = fuzz_main(["run", "--seed", "0", "--iterations", "8"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "8 scenario(s), 0 failing" in out


def test_cli_replay_is_byte_deterministic(tmp_path, capsys):
    save_entry(generate_scenario(3, 1), tmp_path, slug="case-a")
    save_entry(generate_scenario(3, 2), tmp_path, slug="case-b")
    rc1 = fuzz_main(["replay", "--dir", str(tmp_path)])
    first = capsys.readouterr().out
    rc2 = fuzz_main(["replay", "--dir", str(tmp_path)])
    second = capsys.readouterr().out
    assert rc1 == rc2 == 0
    assert first == second
    assert "replayed 2 scenario(s), 0 failing" in first


# ----------------------------------------------------------------------
# Planted bugs (mutations applied in-test, never committed)
# ----------------------------------------------------------------------
def _plant_dropped_delivery(monkeypatch):
    """Worm model 'bug': deliveries to odd-numbered nodes vanish."""
    orig = Worm._delivered

    def broken(self, node):
        if node % 2 == 1:
            self._pending_deliveries -= 1
            self._check_done()
            return
        orig(self, node)

    monkeypatch.setattr(Worm, "_delivered", broken)


def _find_failing(limit=40):
    for i in range(limit):
        scenario = generate_scenario(0, i)
        report = run_oracles(scenario)
        if not report.ok:
            return scenario, report
    raise AssertionError("planted bug never detected")


def test_planted_delivery_bug_is_detected(monkeypatch):
    _plant_dropped_delivery(monkeypatch)
    _scenario, report = _find_failing()
    oracles = {v.oracle for v in report.violations}
    assert "delivery" in oracles


def test_planted_bug_minimizes_within_acceptance_bounds(monkeypatch):
    _plant_dropped_delivery(monkeypatch)
    # Start from a deliberately large instance so the shrink is non-trivial.
    scenario = None
    for i in range(200):
        candidate = generate_scenario(7, i)
        if candidate.topo.num_switches >= 9 and len(candidate.dests) >= 5:
            scenario = candidate
            break
    assert scenario is not None
    report = run_oracles(scenario)
    assert not report.ok
    small = minimize(
        scenario, oracle_predicate({v.oracle for v in report.violations})
    )
    assert small.topo.num_switches <= 8
    assert len(small.dests) <= 4
    assert not run_oracles(small).ok  # still reproduces


def test_planted_conservation_leak_is_detected(monkeypatch):
    orig = Worm._release

    def leaky(self, hop):
        # Miscount flits on forward channels: the conservation oracle must
        # notice the fabric's books no longer match the audited worms.
        orig(self, hop)
        if hop.channel.kind == "forward":
            hop.channel.flits_carried -= 1

    monkeypatch.setattr(Worm, "_release", leaky)
    _scenario, report = _find_failing()
    assert "conservation" in {v.oracle for v in report.violations}


def test_minimize_refuses_passing_scenario():
    scenario = generate_scenario(0, 0)
    with pytest.raises(ValueError):
        minimize(scenario, oracle_predicate({"delivery"}))


# ----------------------------------------------------------------------
# Shrink-move soundness
# ----------------------------------------------------------------------
def _topo(seed=11, switches=6, nodes=10):
    params = SimParams(num_switches=switches, num_nodes=nodes)
    return generate_irregular_topology(params, seed=seed)


def test_drop_nodes_renumbers_densely():
    topo = _topo()
    smaller, remap = drop_nodes(topo, {0, 3})
    assert smaller.num_nodes == topo.num_nodes - 2
    assert sorted(remap.values()) == list(range(smaller.num_nodes))
    for old, new in remap.items():
        assert smaller.node_attachment[new] == topo.node_attachment[old]


def test_drop_switch_refuses_hosted_switch():
    topo = _topo()
    hosted = topo.node_attachment[0].switch
    assert drop_switch(topo, hosted) is None


def test_drop_switch_keeps_connectivity():
    topo = _topo()
    hosted = {p.switch for p in topo.node_attachment}
    for s in range(topo.num_switches):
        if s in hosted:
            continue
        smaller = drop_switch(topo, s)
        if smaller is not None:
            assert smaller.is_connected()
            assert smaller.num_switches == topo.num_switches - 1


def test_scenario_json_roundtrip(tmp_path):
    scenario = generate_scenario(1, 4)
    path = save_entry(scenario, tmp_path, slug="roundtrip")
    from repro.fuzz import load_entry

    again = load_entry(path)
    assert again.digest() == scenario.digest()
    assert again.dests == scenario.dests
    assert again.schemes == scenario.schemes


def test_scenario_validation():
    topo = _topo()
    params = SimParams(num_switches=topo.num_switches,
                       num_nodes=topo.num_nodes)
    with pytest.raises(ValueError):
        FuzzScenario(topo=topo, params=params, source=1, dests=(1,),
                     schemes=(scheme_spec("tree"),))
    with pytest.raises(ValueError):
        FuzzScenario(topo=topo, params=params, source=0, dests=(),
                     schemes=(scheme_spec("tree"),))
    with pytest.raises(ValueError):
        scheme_spec("no-such-scheme")
