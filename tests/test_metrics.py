"""Unit tests for the statistics helpers."""

import pytest

from repro.metrics.stats import LatencySummary, mean, percentile, summarize


class TestMean:
    def test_basic(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_single(self):
        assert mean([7.0]) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        xs = [5, 1, 9, 3]
        assert percentile(xs, 0) == 1
        assert percentile(xs, 100) == 9

    def test_single_sample(self):
        assert percentile([4], 95) == 4

    def test_invalid(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 150)


class TestSummarize:
    def test_fields(self):
        s = summarize([2.0, 4.0, 6.0])
        assert isinstance(s, LatencySummary)
        assert s.count == 3
        assert s.mean == 4.0
        assert s.min == 2.0 and s.max == 6.0
        assert s.p50 == 4.0
        assert s.std == pytest.approx((8 / 3) ** 0.5)

    def test_str_is_compact(self):
        s = summarize([1.0, 2.0])
        assert "mean=" in str(s) and "p95=" in str(s)

    def test_sem_and_ci(self):
        s = summarize([10.0, 20.0, 30.0, 40.0])
        # sample std = sqrt(sum((x-25)^2)/3) = sqrt(500/3); sem = that/2
        expected_sem = (500.0 / 3.0) ** 0.5 / 2.0
        assert s.sem == pytest.approx(expected_sem)
        assert s.ci95_halfwidth == pytest.approx(1.96 * expected_sem)

    def test_singleton_has_zero_sem(self):
        s = summarize([5.0])
        assert s.sem == 0.0 and s.ci95_halfwidth == 0.0
