"""Tests for the header-capacity-limited tree-worm variant."""

import random

import pytest

from repro.multicast import make_scheme
from repro.multicast.treeworm import TreeWormScheme
from repro.params import SimParams
from repro.sim.network import SimNetwork
from repro.topology.irregular import generate_irregular_topology


def default_net(seed=3, **kw) -> SimNetwork:
    p = SimParams(**kw)
    return SimNetwork(generate_irregular_topology(p, seed=seed), p)


class TestChunking:
    def test_unlimited_is_single_chunk(self):
        net = default_net()
        scheme = TreeWormScheme()
        dests = list(range(1, 20))
        assert scheme.chunk_dests(net, 0, dests) == [dests]

    def test_chunks_partition_and_respect_cap(self):
        net = default_net()
        scheme = TreeWormScheme(max_header_dests=6)
        dests = random.Random(1).sample(range(1, 32), 17)
        chunks = scheme.chunk_dests(net, 0, dests)
        assert all(1 <= len(c) <= 6 for c in chunks)
        flat = [d for c in chunks for d in c]
        assert sorted(flat) == sorted(dests)

    def test_small_set_stays_whole(self):
        net = default_net()
        scheme = TreeWormScheme(max_header_dests=8)
        assert scheme.chunk_dests(net, 0, [1, 2, 3]) == [[1, 2, 3]]

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            TreeWormScheme(max_header_dests=0)


class TestExecution:
    @pytest.mark.parametrize("cap", [1, 4, 8])
    def test_capped_scheme_delivers_everything(self, cap):
        net = default_net()
        dests = random.Random(2).sample(range(1, 32), 13)
        res = make_scheme("tree", max_header_dests=cap).execute(net, 0, dests)
        net.run()
        assert res.complete
        assert set(res.delivery_times) == set(dests)
        net.assert_quiescent()

    def test_capped_multi_packet(self):
        net = default_net(message_packets=3)
        dests = random.Random(3).sample(range(1, 32), 10)
        res = make_scheme("tree", max_header_dests=4).execute(net, 0, dests)
        net.run()
        assert res.complete
        net.assert_quiescent()

    def test_capping_costs_latency(self):
        dests = random.Random(4).sample(range(1, 32), 20)
        lat = {}
        for cap in (None, 4):
            net = default_net()
            res = make_scheme("tree", max_header_dests=cap).execute(net, 0, dests)
            net.run()
            lat[cap] = res.latency
        # Chunked headers serialise extra worms at the source NI.
        assert lat[4] > lat[None]

    def test_capped_still_single_phase(self):
        # Even chunked, every destination receives directly from the source
        # (no secondary sources): the spread of delivery times is bounded by
        # the source-side serialisation, far below a full receive+resend.
        net = default_net()
        dests = random.Random(5).sample(range(1, 32), 16)
        res = make_scheme("tree", max_header_dests=4).execute(net, 0, dests)
        net.run()
        times = sorted(res.delivery_times.values())
        p = net.params
        assert times[-1] - times[0] < p.o_host + p.o_ni * 5
