"""Tests for the single-multicast and load traffic drivers."""

import pytest

from repro.params import SimParams
from repro.topology.irregular import generate_irregular_topology
from repro.traffic.load import (
    LoadPoint,
    run_load_experiment,
    saturated_by_shortfall,
    sweep_load,
)
from repro.traffic.single import (
    average_single_multicast_latency,
    draw_multicast,
    measure_single_multicast,
)


def topo_default(seed=3):
    return generate_irregular_topology(SimParams(), seed=seed)


class TestSingleDriver:
    def test_measure_returns_complete_result(self):
        res = measure_single_multicast(
            topo_default(), SimParams(), "tree", 0, [5, 9, 17]
        )
        assert res.complete and res.latency > 0

    def test_average_is_deterministic(self):
        a = average_single_multicast_latency(
            SimParams(), "tree", 8, n_topologies=2, trials_per_topology=2
        )
        b = average_single_multicast_latency(
            SimParams(), "tree", 8, n_topologies=2, trials_per_topology=2
        )
        assert a == b

    def test_sample_size(self):
        s = average_single_multicast_latency(
            SimParams(), "path", 4, n_topologies=2, trials_per_topology=3
        )
        assert s.count == 6

    def test_scheme_kwargs_forwarded(self):
        s_lg = average_single_multicast_latency(
            SimParams(), "path", 8, n_topologies=1, trials_per_topology=1,
            strategy="lg",
        )
        s_greedy = average_single_multicast_latency(
            SimParams(), "path", 8, n_topologies=1, trials_per_topology=1,
            strategy="greedy",
        )
        assert s_lg.count == s_greedy.count == 1

    def test_draw_multicast_valid(self):
        import random

        rng = random.Random(0)
        for _ in range(50):
            src, dests = draw_multicast(rng, 32, 7)
            assert src not in dests
            assert len(set(dests)) == 7
            assert all(0 <= d < 32 for d in dests)

    def test_draw_multicast_bad_size(self):
        import random

        with pytest.raises(ValueError):
            draw_multicast(random.Random(0), 8, 8)


class TestLoadDriver:
    def run_point(self, load, scheme="tree", degree=4, warmup=4_000, **kw):
        return run_load_experiment(
            topo_default(),
            SimParams(),
            scheme,
            degree=degree,
            effective_load=load,
            duration=40_000,
            warmup=warmup,
            **kw,
        )

    def test_light_load_completes_everything(self):
        p = self.run_point(0.01)
        assert p.issued > 0
        assert p.completed == p.issued
        assert not p.saturated
        assert p.mean_latency is not None and p.mean_latency > 0

    def test_latency_rises_with_load(self):
        light = self.run_point(0.01)
        heavy = self.run_point(0.10)
        assert heavy.mean_latency > light.mean_latency

    def test_extreme_load_saturates(self):
        p = self.run_point(2.0, scheme="binomial", degree=16)
        assert p.saturated or (p.mean_latency or 0) > 50_000

    def test_determinism(self):
        a = self.run_point(0.05)
        b = self.run_point(0.05)
        assert a == b

    def test_sweep_returns_point_per_load(self):
        pts = sweep_load(
            topo_default(), SimParams(), "tree", 4, [0.01, 0.05],
            duration=30_000, warmup=3_000,
        )
        assert len(pts) == 2
        assert all(isinstance(p, LoadPoint) for p in pts)
        assert pts[0].effective_load == 0.01

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            self.run_point(-1.0)
        with pytest.raises(ValueError):
            run_load_experiment(
                topo_default(), SimParams(), "tree", degree=0,
                effective_load=0.1,
            )

    def test_completion_ratio(self):
        p = self.run_point(0.01)
        assert p.completion_ratio == 1.0

    def test_warmup_ops_counted_separately(self):
        p = self.run_point(0.05)
        # Warmup-window ops load the network but are not in `issued` (the
        # measured-window population) or the saturation denominator.
        assert p.warmup_ops > 0
        assert p.completed <= p.issued
        assert p.completion_ratio <= 1.0

    def test_warmup_zero_means_no_warmup_ops(self):
        p = self.run_point(0.05, warmup=0)
        assert p.warmup_ops == 0
        assert p.issued > 0


class TestLoadEdgeCases:
    def test_zero_measured_ops(self):
        # A load so light that the expected first arrival is far past the
        # generation window: nothing is measured, nothing saturates.
        p = run_load_experiment(
            topo_default(),
            SimParams(),
            "tree",
            degree=4,
            effective_load=1e-7,
            duration=1_000,
            warmup=100,
            min_measured_ops=0,
        )
        assert p.issued == 0
        assert p.completed == 0
        assert p.mean_latency is None and p.p95_latency is None
        assert not p.saturated
        assert p.completion_ratio == 1.0

    def test_all_complete_not_saturated(self):
        assert not saturated_by_shortfall(100, 100, threshold=0.9)

    def test_threshold_boundary(self):
        # Exactly at threshold: not saturated (the rule is a strict <).
        assert not saturated_by_shortfall(100, 90, threshold=0.9)
        # One completion short of the threshold: saturated.
        assert saturated_by_shortfall(100, 89, threshold=0.9)

    def test_empty_sample_never_saturates(self):
        assert not saturated_by_shortfall(0, 0, threshold=0.9)


class TestLoadOrderings:
    """The paper's load findings, at a smoke-test scale."""

    def mean_at(self, scheme, load, degree=4):
        p = run_load_experiment(
            topo_default(), SimParams(), scheme,
            degree=degree, effective_load=load,
            duration=60_000, warmup=6_000,
        )
        return p.mean_latency if not p.saturated else float("inf")

    def test_tree_saturates_last(self):
        # At a load where software schemes struggle, tree stays healthy.
        assert self.mean_at("tree", 0.08) < self.mean_at("binomial", 0.08)
        assert self.mean_at("tree", 0.08) <= self.mean_at("ni", 0.08)
        assert self.mean_at("tree", 0.08) <= self.mean_at("path", 0.08)
