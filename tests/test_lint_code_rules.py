"""Planted-violation fixtures for every code rule of ``repro.lint``."""

import pathlib
import textwrap

import pytest

from repro.lint import Severity, run_lint


def lint_snippet(tmp_path: pathlib.Path, code: str, subdir: str = "sim"):
    """Write a snippet under a sim-scoped dir and lint it (code rules only)."""
    d = tmp_path / subdir
    d.mkdir(parents=True, exist_ok=True)
    f = d / "snippet.py"
    f.write_text(textwrap.dedent(code))
    return run_lint([d], run_model=False)


def rules_hit(result) -> set[str]:
    return {f.rule for f in result.findings}


class TestUnseededRandom:
    def test_module_level_random_call(self, tmp_path):
        res = lint_snippet(tmp_path, """
            import random

            def pick(n):
                return random.randrange(n)
        """)
        assert rules_hit(res) == {"unseeded-random"}
        assert res.findings[0].line == 5

    def test_unseeded_random_instance(self, tmp_path):
        res = lint_snippet(tmp_path, """
            import random

            rng = random.Random()
        """)
        assert rules_hit(res) == {"unseeded-random"}

    def test_from_import_alias(self, tmp_path):
        res = lint_snippet(tmp_path, """
            from random import choice as pick_one

            def pick(xs):
                return pick_one(xs)
        """)
        assert rules_hit(res) == {"unseeded-random"}

    def test_system_random_always_flagged(self, tmp_path):
        res = lint_snippet(tmp_path, """
            import random

            rng = random.SystemRandom()
        """)
        assert rules_hit(res) == {"unseeded-random"}

    def test_seeded_random_is_clean(self, tmp_path):
        res = lint_snippet(tmp_path, """
            import random

            def make_rng(seed):
                return random.Random(seed)
        """)
        assert res.findings == []

    def test_rule_scoped_to_sim_packages(self, tmp_path):
        # The same draw in a reporting-layer dir is allowed.
        res = lint_snippet(tmp_path, """
            import random

            def jitter():
                return random.random()
        """, subdir="src/repro/experiments")
        assert "unseeded-random" not in rules_hit(res)


class TestWallClock:
    def test_time_time(self, tmp_path):
        res = lint_snippet(tmp_path, """
            import time

            def stamp():
                return time.time()
        """)
        assert rules_hit(res) == {"wall-clock"}

    def test_datetime_now(self, tmp_path):
        res = lint_snippet(tmp_path, """
            import datetime

            def stamp():
                return datetime.datetime.now()
        """)
        assert rules_hit(res) == {"wall-clock"}

    def test_from_import_time(self, tmp_path):
        res = lint_snippet(tmp_path, """
            from time import time

            def stamp():
                return time()
        """)
        assert rules_hit(res) == {"wall-clock"}

    def test_flagged_outside_sim_packages_too(self, tmp_path):
        res = lint_snippet(tmp_path, """
            import time

            def stamp():
                return time.time()
        """, subdir="src/repro/experiments")
        assert rules_hit(res) == {"wall-clock"}

    def test_perf_counter_is_clean(self, tmp_path):
        res = lint_snippet(tmp_path, """
            import time

            def stamp():
                return time.perf_counter()
        """)
        assert res.findings == []


class TestBlanketExcept:
    def test_silent_except_exception(self, tmp_path):
        res = lint_snippet(tmp_path, """
            def run(job):
                try:
                    job()
                except Exception:
                    pass
        """)
        assert rules_hit(res) == {"blanket-except"}

    def test_bare_except(self, tmp_path):
        res = lint_snippet(tmp_path, """
            def run(job):
                try:
                    job()
                except:
                    return None
        """)
        assert rules_hit(res) == {"blanket-except"}

    def test_reraise_is_clean(self, tmp_path):
        res = lint_snippet(tmp_path, """
            def run(job):
                try:
                    job()
                except Exception:
                    raise
        """)
        assert res.findings == []

    def test_printing_handler_is_clean(self, tmp_path):
        res = lint_snippet(tmp_path, """
            import sys

            def run(job):
                try:
                    job()
                except Exception as exc:
                    print(exc, file=sys.stderr)
        """)
        assert res.findings == []

    def test_narrow_except_is_clean(self, tmp_path):
        res = lint_snippet(tmp_path, """
            def run(job):
                try:
                    job()
                except ValueError:
                    pass
        """)
        assert res.findings == []


class TestFloatTimeEq:
    def test_timestamp_equality(self, tmp_path):
        res = lint_snippet(tmp_path, """
            def same_arrival(arrival_time, deadline):
                return arrival_time == deadline
        """)
        assert rules_hit(res) == {"float-time-eq"}

    def test_inequality_also_flagged(self, tmp_path):
        res = lint_snippet(tmp_path, """
            def moved(latency, old_latency):
                return latency != old_latency
        """)
        assert rules_hit(res) == {"float-time-eq"}

    def test_tolerance_compare_is_clean(self, tmp_path):
        res = lint_snippet(tmp_path, """
            def close(t0, t1):
                return abs(t0 - t1) < 1e-9
        """)
        assert res.findings == []

    def test_non_time_names_clean(self, tmp_path):
        res = lint_snippet(tmp_path, """
            def same_switch(switch, dest_switch):
                return switch == dest_switch
        """)
        assert res.findings == []


class TestMutableDefault:
    def test_list_default(self, tmp_path):
        res = lint_snippet(tmp_path, """
            def collect(item, acc=[]):
                acc.append(item)
                return acc
        """)
        assert rules_hit(res) == {"mutable-default"}

    def test_dict_call_default(self, tmp_path):
        res = lint_snippet(tmp_path, """
            def tally(key, counts=dict()):
                counts[key] = counts.get(key, 0) + 1
                return counts
        """)
        assert rules_hit(res) == {"mutable-default"}

    def test_none_default_is_clean(self, tmp_path):
        res = lint_snippet(tmp_path, """
            def collect(item, acc=None):
                acc = [] if acc is None else acc
                acc.append(item)
                return acc
        """)
        assert res.findings == []


class TestImportCycle:
    def test_two_module_cycle(self, tmp_path):
        d = tmp_path / "pkg"
        d.mkdir()
        (d / "alpha.py").write_text("import beta\n")
        (d / "beta.py").write_text("import alpha\n")
        res = run_lint([d], run_model=False)
        assert rules_hit(res) == {"import-cycle"}
        [f] = res.findings
        assert "alpha" in f.message and "beta" in f.message

    def test_function_local_import_breaks_cycle(self, tmp_path):
        d = tmp_path / "pkg"
        d.mkdir()
        (d / "alpha.py").write_text(
            "def go():\n    import beta\n    return beta\n"
        )
        (d / "beta.py").write_text("import alpha\n")
        res = run_lint([d], run_model=False)
        assert res.findings == []

    def test_submodule_import_resolves_past_package_init(self, tmp_path):
        # `from pkg import leaf` inside pkg must depend on pkg.leaf, not on
        # the package __init__ that imported us (the registry idiom).
        d = tmp_path / "repro" / "pkg"
        d.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (d / "__init__.py").write_text("from repro.pkg.registry import R\n")
        (d / "leaf.py").write_text("X = 1\n")
        (d / "registry.py").write_text("from repro.pkg import leaf\nR = leaf.X\n")
        res = run_lint([tmp_path / "repro"], run_model=False)
        assert res.findings == []


class TestSuppressionsAndReporting:
    def test_inline_suppression(self, tmp_path):
        res = lint_snippet(tmp_path, """
            import random

            def pick(n):
                return random.randrange(n)  # lint: disable=unseeded-random
        """)
        assert res.findings == []
        assert res.suppressed == 1

    def test_suppression_is_rule_specific(self, tmp_path):
        res = lint_snippet(tmp_path, """
            import random

            def pick(n):
                return random.randrange(n)  # lint: disable=wall-clock
        """)
        assert rules_hit(res) == {"unseeded-random"}

    def test_disable_all(self, tmp_path):
        res = lint_snippet(tmp_path, """
            import time

            def stamp():
                return time.time()  # lint: disable=all
        """)
        assert res.findings == []

    def test_findings_carry_location_and_severity(self, tmp_path):
        res = lint_snippet(tmp_path, """
            import time

            def stamp():
                return time.time()
        """)
        [f] = res.findings
        assert f.severity is Severity.ERROR
        assert f.path.endswith("snippet.py")
        assert f.line == 5
        assert f.render().startswith(f.path)
        assert res.exit_code == 1

    def test_syntax_error_reported_not_crash(self, tmp_path):
        d = tmp_path / "sim"
        d.mkdir()
        (d / "broken.py").write_text("def oops(:\n")
        res = run_lint([d], run_model=False)
        assert rules_hit(res) == {"parse-error"}
        assert res.exit_code == 1


@pytest.mark.parametrize("rule_id", [
    "unseeded-random", "wall-clock", "blanket-except",
    "float-time-eq", "mutable-default", "import-cycle",
])
def test_every_code_rule_registered(rule_id):
    from repro.lint import all_rules

    assert rule_id in all_rules()
