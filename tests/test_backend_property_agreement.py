"""Property-based cross-validation of the two simulator backends.

Hypothesis draws random line/star scenarios -- packet sizes, buffer sizes,
start offsets, contention patterns -- and requires the worm-level event model
and the cycle-accurate flit-level simulator to produce identical delivery
times.  This is the strongest correctness net in the repository: any
divergence in the timing semantics of either backend fails here.
"""

from hypothesis import given, settings, strategies as st

from repro.params import SimParams
from repro.routing.updown import UpDownRouting
from repro.sim.flitsim import FlitLevelFabric, unicast_route
from repro.sim.network import SimNetwork
from repro.sim.worm import Worm
from tests.topo_fixtures import make_line, make_star

scenario = st.fixed_dictionaries(
    {
        "packet_flits": st.sampled_from([8, 32, 128]),
        "buffer_flits": st.sampled_from([2, 8, 64, 256]),
        "n_switches": st.integers(min_value=2, max_value=5),
        "starts": st.lists(
            st.integers(min_value=0, max_value=400), min_size=1, max_size=4
        ),
        "link_delay": st.integers(min_value=1, max_value=3),
        "switch_delay": st.integers(min_value=1, max_value=3),
        "routing_delay": st.integers(min_value=1, max_value=2),
    }
)


def run_event_backend(topo, params, jobs):
    net = SimNetwork(topo, params)
    res = []

    def launch(src, dst):
        w = Worm(net.engine, net.params, net.unicast_steer(dst),
                 on_delivered=lambda _n, t: res.append(t), rng=net.rng)
        w.start(net.fabric.inject[src], None)

    for t, src, dst in jobs:
        if t == 0:
            launch(src, dst)
        else:
            net.engine.at(t, lambda s=src, d=dst: launch(s, d))
    net.run()
    return sorted(res)


def run_flit_backend(topo, params, jobs):
    rt = UpDownRouting.build(topo)
    fab = FlitLevelFabric(topo, params)
    for t, src, dst in jobs:
        fab.inject(t, unicast_route(topo, rt, src, dst))
    fab.run()
    return sorted(float(v) for v in fab.deliveries.values())


@settings(max_examples=30, deadline=None)
@given(scenario)
def test_line_contention_backends_agree(sc):
    params = SimParams(
        adaptive_routing=False,
        packet_flits=sc["packet_flits"],
        input_buffer_flits=sc["buffer_flits"],
        link_delay=sc["link_delay"],
        switch_delay=sc["switch_delay"],
        routing_delay=sc["routing_delay"],
    )
    n = sc["n_switches"]
    topo = make_line(n, hosts_per_switch=2)
    # all worms converge on the last node: maximal contention on the line
    dst = topo.num_nodes - 1
    jobs = [
        (t, i % (topo.num_nodes - 1), dst)
        for i, t in enumerate(sorted(sc["starts"]))
    ]
    assert run_event_backend(topo, params, jobs) == run_flit_backend(
        topo, params, jobs
    )


@settings(max_examples=20, deadline=None)
@given(scenario)
def test_star_cross_traffic_backends_agree(sc):
    params = SimParams(
        adaptive_routing=False,
        packet_flits=sc["packet_flits"],
        input_buffer_flits=sc["buffer_flits"],
        link_delay=sc["link_delay"],
        switch_delay=sc["switch_delay"],
        routing_delay=sc["routing_delay"],
    )
    topo = make_star(3, hosts_per_switch=2)
    # hosts 0,1 hub; 2,3 sw1; 4,5 sw2; 6,7 sw3 -- cross traffic via the hub
    pairs = [(0, 4), (2, 6), (4, 3), (6, 1)]
    jobs = [
        (t, *pairs[i % len(pairs)])
        for i, t in enumerate(sorted(sc["starts"]))
    ]
    assert run_event_backend(topo, params, jobs) == run_flit_backend(
        topo, params, jobs
    )
