"""Smoke tests: every example application runs end to end.

Examples are user-facing deliverables; these tests keep them executable as
the library evolves.  Each runs as a subprocess exactly as a user would.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

CASES = [
    ("quickstart.py", ["3"], "winner: tree"),
    ("topology_explorer.py", ["3"], "multicast plans"),
    ("collective_ops.py", ["3"], "broadcast"),
    ("fault_tolerance.py", ["3"], "reconfiguration"),
    ("single_multicast_study.py", ["--quick"], "winner"),
    ("load_saturation_study.py", ["--quick", "--degree", "4"], "saturation"),
    ("design_space.py", ["--quick"], "verdict"),
]


@pytest.mark.parametrize("script,args,expect", CASES,
                         ids=[c[0] for c in CASES])
def test_example_runs(script, args, expect):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert expect in proc.stdout


def test_all_examples_are_covered():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == {c[0] for c in CASES}
