"""Model-vs-model: simulator output must match the closed-form predictions
on contention-free cases."""

import random

import pytest

from repro.analysis.closedform import (
    binomial_multicast_latency_bound,
    tree_worm_latency,
    unicast_message_latency,
    unicast_packet_network_latency,
)
from repro.multicast import make_scheme
from repro.params import SimParams
from repro.sim.network import SimNetwork
from repro.sim.worm import Worm
from repro.topology.irregular import generate_irregular_topology
from tests.topo_fixtures import make_line


class TestUnicastClosedForm:
    @pytest.mark.parametrize("n_switches", [1, 2, 3, 5, 8])
    def test_raw_packet_latency_matches_on_lines(self, n_switches):
        hosts = 2 if n_switches == 1 else 1
        net = SimNetwork(make_line(n_switches, hosts_per_switch=hosts), SimParams())
        src, dst = 0, net.topo.num_nodes - 1
        res = []
        worm = Worm(
            net.engine, net.params, net.unicast_steer(dst),
            on_delivered=lambda n, t: res.append(t), rng=net.rng,
        )
        worm.start(net.fabric.inject[src], None)
        net.run()
        hops = net.routing.distance(
            net.topo.switch_of_node(src), net.topo.switch_of_node(dst)
        )
        assert res[0] == pytest.approx(
            unicast_packet_network_latency(net.params, hops)
        )

    def test_message_latency_matches_on_random_topologies(self):
        for seed in range(5):
            params = SimParams()
            topo = generate_irregular_topology(params, seed=seed)
            net = SimNetwork(topo, params)
            rng = random.Random(seed)
            src = rng.randrange(32)
            dst = rng.choice([n for n in range(32) if n != src])
            res = make_scheme("binomial").execute(net, src, [dst])
            net.run()
            hops = net.routing.distance(
                topo.switch_of_node(src), topo.switch_of_node(dst)
            )
            assert res.latency == pytest.approx(
                unicast_message_latency(params, hops)
            )

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            unicast_packet_network_latency(SimParams(), -1)
        with pytest.raises(ValueError):
            unicast_message_latency(SimParams(message_packets=2), 1)


class TestTreeWormClosedForm:
    def test_matches_simulator_on_random_cases(self):
        for seed in range(6):
            params = SimParams()
            topo = generate_irregular_topology(params, seed=seed)
            net = SimNetwork(topo, params)
            rng = random.Random(seed * 13 + 1)
            src = rng.randrange(32)
            dests = rng.sample([n for n in range(32) if n != src], 10)
            predicted = tree_worm_latency(net, src, dests)
            sim_net = SimNetwork(topo, params)
            res = make_scheme("tree").execute(sim_net, src, dests)
            sim_net.run()
            # The worm replicates; branches never contend on distinct
            # channels, so the prediction is exact up to one grant event
            # ordering cycle.
            assert res.latency == pytest.approx(predicted, abs=2.0)

    def test_multi_packet_rejected(self):
        params = SimParams(message_packets=2)
        topo = generate_irregular_topology(params, seed=1)
        net = SimNetwork(topo, params)
        with pytest.raises(ValueError):
            tree_worm_latency(net, 0, [1])


class TestBinomialBound:
    def test_simulator_respects_lower_bound(self):
        for n_dests in (1, 3, 7, 15, 31):
            params = SimParams()
            topo = generate_irregular_topology(params, seed=2)
            net = SimNetwork(topo, params)
            dests = list(range(1, n_dests + 1))
            res = make_scheme("binomial").execute(net, 0, dests)
            net.run()
            assert res.latency >= binomial_multicast_latency_bound(
                params, n_dests
            )

    def test_invalid(self):
        with pytest.raises(ValueError):
            binomial_multicast_latency_bound(SimParams(), 0)
