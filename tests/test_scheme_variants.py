"""Tests for the software-tree scheme family and plan caching."""

import gc
import random

import pytest

from repro.multicast import make_scheme
from repro.multicast.binomial import UnicastBinomialScheme
from repro.params import SimParams
from repro.sim.network import SimNetwork
from repro.topology.irregular import generate_irregular_topology


def default_net(seed=3, **kw) -> SimNetwork:
    p = SimParams(**kw)
    return SimNetwork(generate_irregular_topology(p, seed=seed), p)


class TestSoftwareTreeFamily:
    def test_flat_separate_addressing_tree(self):
        net = default_net()
        scheme = UnicastBinomialScheme(flat=True)
        tree = scheme.plan(net, 0, [3, 7, 11])
        assert sorted(tree[0]) == [3, 7, 11]
        assert all(tree[d] == [] for d in (3, 7, 11))

    def test_fanout_one_is_a_chain(self):
        net = default_net()
        scheme = UnicastBinomialScheme(fanout=1)
        tree = scheme.plan(net, 0, [3, 7, 11])
        assert all(len(ch) <= 1 for ch in tree.values())

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            UnicastBinomialScheme(fanout=0)
        with pytest.raises(ValueError):
            UnicastBinomialScheme(fanout=2, flat=True)

    @pytest.mark.parametrize("kw", [{"flat": True}, {"fanout": 1}, {"fanout": 3}])
    def test_variants_deliver_everything(self, kw):
        net = default_net()
        dests = random.Random(0).sample(range(1, 32), 10)
        res = UnicastBinomialScheme(**kw).execute(net, 0, dests)
        net.run()
        assert res.complete
        net.assert_quiescent()

    def test_binomial_beats_flat_and_chain(self):
        dests = random.Random(1).sample(range(1, 32), 15)
        lat = {}
        for label, kw in (
            ("binomial", {}),
            ("flat", {"flat": True}),
            ("chain", {"fanout": 1}),
        ):
            net = default_net()
            res = UnicastBinomialScheme(**kw).execute(net, 0, dests)
            net.run()
            lat[label] = res.latency
        assert lat["binomial"] < lat["flat"]
        assert lat["binomial"] < lat["chain"]


class TestPlanCache:
    @pytest.mark.parametrize("scheme_name", ["binomial", "ni", "path", "tree"])
    def test_cached_and_uncached_results_identical(self, scheme_name):
        dests = random.Random(2).sample(range(1, 32), 9)
        lats = []
        for cache in (False, True):
            net = default_net()
            scheme = make_scheme(scheme_name)
            if cache:
                scheme.enable_plan_cache()
            # two consecutive ops through the same scheme instance
            res1 = scheme.execute(net, 0, dests)
            net.run()
            res2 = scheme.execute(net, 0, dests)
            net.run()
            lats.append((res1.latency, res2.latency))
        assert lats[0] == lats[1]

    def test_cache_hits_reuse_objects(self):
        net = default_net()
        scheme = make_scheme("path")
        scheme.enable_plan_cache()
        dests = [4, 9, 13]
        r1 = scheme.execute(net, 0, dests)
        net.run()
        key = (net.routing_epoch, ("mdp", 0, tuple(dests)))
        assert key in scheme._plan_cache[net]
        plan_obj = scheme._plan_cache[net][key]
        r2 = scheme.execute(net, 0, dests)
        net.run()
        assert scheme._plan_cache[net][key] is plan_obj
        assert r1.complete and r2.complete

    def test_cache_is_per_network(self):
        scheme = make_scheme("tree")
        scheme.enable_plan_cache()
        nets = [default_net(seed=s) for s in (3, 4)]
        for net in nets:
            res = scheme.execute(net, 0, [5, 9])
            net.run()
            assert res.complete
        assert set(scheme._plan_cache) == set(nets)

    def test_cache_drops_collected_networks(self):
        # The cache keys on the network object itself (weakly), not id(net):
        # a collected network's plans must vanish instead of lingering under
        # an id that a later allocation could reuse.
        scheme = make_scheme("tree")
        scheme.enable_plan_cache()
        nets = [default_net(seed=s) for s in (3, 4)]
        for net in nets:
            scheme.execute(net, 0, [5, 9])
            net.run()
        assert len(scheme._plan_cache) == 2
        del nets[0], net
        gc.collect()
        assert len(scheme._plan_cache) == 1
