"""Integration tests: executing the four schemes on simulated networks."""

import math
import random

import pytest

from repro.multicast import SCHEMES, make_scheme
from repro.params import SimParams
from repro.sim.network import SimNetwork
from repro.topology.irregular import generate_irregular_topology
from tests.topo_fixtures import make_line, make_star

ALL_SCHEMES = sorted(SCHEMES)


def run_multicast(net: SimNetwork, scheme_name: str, source: int, dests: list[int]):
    scheme = make_scheme(scheme_name)
    result = scheme.execute(net, source, dests)
    net.run()
    return result


def default_net(seed=3, **kw) -> SimNetwork:
    p = SimParams(**kw)
    return SimNetwork(generate_irregular_topology(p, seed=seed), p)


class TestDeliveryCorrectness:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_all_destinations_delivered_exactly_once(self, scheme):
        for seed in range(3):
            net = default_net(seed=seed)
            dests = random.Random(seed).sample(range(1, 32), 13)
            res = run_multicast(net, scheme, 0, dests)
            assert res.complete
            assert set(res.delivery_times) == set(dests)
            net.assert_quiescent()

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_single_destination(self, scheme):
        net = default_net()
        res = run_multicast(net, scheme, 0, [17])
        assert res.complete and res.latency > 0

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_full_broadcast(self, scheme):
        net = default_net()
        dests = [n for n in range(1, 32)]
        res = run_multicast(net, scheme, 0, dests)
        assert res.complete
        assert len(res.delivery_times) == 31

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_multi_packet_message(self, scheme):
        net = default_net(message_packets=4)
        dests = random.Random(7).sample(range(1, 32), 9)
        res = run_multicast(net, scheme, 0, dests)
        assert res.complete
        net.assert_quiescent()

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_input_validation(self, scheme):
        net = default_net()
        s = make_scheme(scheme)
        with pytest.raises(ValueError):
            s.execute(net, 0, [])
        with pytest.raises(ValueError):
            s.execute(net, 0, [0, 1])
        with pytest.raises(ValueError):
            s.execute(net, 0, [1, 1])
        with pytest.raises(ValueError):
            s.execute(net, 0, [99])


class TestSingleDestLatencyIsUnicast:
    """With one destination every scheme degenerates to (near-)unicast."""

    def expected_unicast(self, net: SimNetwork, src: int, dst: int) -> float:
        p = net.params
        hops = net.routing.distance(
            net.topo.switch_of_node(src), net.topo.switch_of_node(dst)
        )
        net_lat = (
            p.link_delay
            + p.routing_delay
            + hops * (p.switch_delay + p.link_delay + p.routing_delay)
            + (p.switch_delay + p.link_delay)
            + p.packet_flits
            - 1
        )
        dma = p.packet_flits / p.io_bus_flits_per_cycle
        return 2 * p.o_host + 2 * dma + 2 * p.o_ni + net_lat

    @pytest.mark.parametrize("scheme", ["binomial", "ni", "path"])
    def test_exact_unicast_latency(self, scheme):
        net = SimNetwork(make_line(3), SimParams())
        res = run_multicast(net, scheme, 0, [2])
        assert res.latency == pytest.approx(self.expected_unicast(net, 0, 2))

    def test_tree_single_dest_close_to_unicast(self):
        # The tree worm climbs to a covering ancestor, which can add hops
        # relative to the minimal route, but never removes overhead terms.
        net = SimNetwork(make_line(3), SimParams())
        res = run_multicast(net, "tree", 0, [2])
        assert res.latency >= self.expected_unicast(net, 0, 2) - 1e-9
        assert res.latency <= self.expected_unicast(net, 0, 2) + 200


class TestPaperOrderings:
    """Qualitative relationships the paper reports (Section 4.2)."""

    def latencies(self, *, seed=3, n_dests=15, **kw) -> dict[str, float]:
        out = {}
        for scheme in ALL_SCHEMES:
            net = default_net(seed=seed, **kw)
            dests = random.Random(seed).sample(range(1, 32), n_dests)
            out[scheme] = run_multicast(net, scheme, 0, dests).latency
        return out

    def test_tree_is_best_enhanced_scheme(self):
        lat = self.latencies()
        assert lat["tree"] < lat["ni"]
        assert lat["tree"] < lat["path"]

    def test_all_enhanced_schemes_beat_binomial(self):
        lat = self.latencies()
        assert max(lat["tree"], lat["ni"], lat["path"]) < lat["binomial"]

    def test_low_r_favours_path_over_ni(self):
        lat = self.latencies(ratio_r=0.5)
        assert lat["path"] < lat["ni"]

    def test_high_r_favours_ni_over_path(self):
        lat = self.latencies(ratio_r=4.0)
        assert lat["ni"] < lat["path"]

    def test_long_messages_favour_ni_over_path(self):
        # Fig. 8: FPFS pipelining makes the NI scheme gain on the path-based
        # scheme as messages span more packets, overtaking it by ~512 flits.
        short = self.latencies(message_packets=1)
        long = self.latencies(message_packets=4)
        ratio_short = short["ni"] / short["path"]
        ratio_long = long["ni"] / long["path"]
        assert ratio_long < ratio_short
        assert long["ni"] < long["path"]

    def test_binomial_latency_tracks_step_count(self):
        # Doubling the destination count adds about one software step.
        lat8 = self.latencies(n_dests=8)["binomial"]
        lat16 = self.latencies(n_dests=16)["binomial"]
        assert lat16 > lat8

    def test_more_switches_hurt_path_scheme(self):
        # Fig. 7: with the node count fixed, more switches = fewer
        # destinations per switch = more worms and phases for path-based.
        few = self.latencies(num_switches=8)
        many = self.latencies(num_switches=32)
        assert many["path"] > few["path"]
        # tree and NI schemes stay roughly flat (cut-through distance
        # independence); allow generous slack.
        assert many["tree"] < few["tree"] * 1.5
        assert many["ni"] < few["ni"] * 1.5


class TestStarTopology:
    def test_tree_worm_single_phase_on_star(self):
        # Star: hub + 4 leaves, 2 hosts each.  A multicast from a leaf host
        # to hosts on every other leaf needs exactly one worm via the hub.
        net = SimNetwork(make_star(4, hosts_per_switch=2), SimParams())
        # hosts 0,1 on hub sw0; 2,3 on sw1; ...; 8,9 on sw4
        res = run_multicast(net, "tree", 2, [4, 6, 8])
        assert res.complete
        times = sorted(res.delivery_times.values())
        # Single worm: deliveries cluster within a few cycles of each other
        # (replication at the hub is simultaneous).
        assert times[-1] - times[0] < 50

    def test_ni_scheme_on_star(self):
        net = SimNetwork(make_star(4, hosts_per_switch=2), SimParams())
        res = run_multicast(net, "ni", 2, [3, 4, 5, 6, 7, 8, 9])
        assert res.complete


class TestSchemeRegistry:
    def test_make_scheme_unknown(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            make_scheme("bogus")

    def test_registry_names_match_classes(self):
        for name in ALL_SCHEMES:
            assert make_scheme(name).name == name
