"""Cross-validation: the flit-level reference simulator must agree with the
worm-level event model on identical deterministic scenarios."""

import random

import pytest

from repro.params import SimParams
from repro.sim.flitsim import FlitLevelFabric, FlitRoute, unicast_route
from repro.sim.network import SimNetwork
from repro.sim.worm import Deliver, Forward, Worm
from repro.topology.irregular import generate_irregular_topology
from tests.topo_fixtures import make_line, make_star


def event_unicast_delivery(net: SimNetwork, src: int, dst: int,
                           starts: list[float] | None = None) -> list[float]:
    """Delivery tail times of raw unicast worms in the event model."""
    res: list[float] = []
    for t in starts or [0.0]:
        def launch(t=t):
            w = Worm(net.engine, net.params, net.unicast_steer(dst),
                     on_delivered=lambda _n, tt: res.append(tt), rng=net.rng)
            w.start(net.fabric.inject[src], None)

        if t == 0:
            launch()
        else:
            net.engine.at(t, launch)
    net.run()
    return sorted(res)


def flit_unicast_delivery(topo, params, src: int, dst: int,
                          starts: list[int] | None = None) -> list[float]:
    """Delivery tail times of the same worms in the flit-level simulator."""
    from repro.routing.updown import UpDownRouting

    rt = UpDownRouting.build(topo, orientation=params.routing_tree)
    fab = FlitLevelFabric(topo, params)
    for t in starts or [0]:
        fab.inject(int(t), unicast_route(topo, rt, src, dst))
    fab.run()
    return sorted(float(v) for v in fab.deliveries.values())


class TestUncontendedAgreement:
    @pytest.mark.parametrize("n_switches", [2, 3, 5])
    def test_line_unicast_exact(self, n_switches):
        params = SimParams(adaptive_routing=False)
        topo = make_line(n_switches)
        ev = event_unicast_delivery(SimNetwork(topo, params), 0, n_switches - 1)
        fl = flit_unicast_delivery(topo, params, 0, n_switches - 1)
        assert ev == fl

    def test_random_topology_pairs_exact(self):
        for seed in range(4):
            params = SimParams(adaptive_routing=False)
            topo = generate_irregular_topology(params, seed=seed)
            rng = random.Random(seed)
            src = rng.randrange(32)
            dst = rng.choice([n for n in range(32) if n != src])
            ev = event_unicast_delivery(SimNetwork(topo, params), src, dst)
            fl = flit_unicast_delivery(topo, params, src, dst)
            assert ev == fl, f"seed={seed} {src}->{dst}"

    @pytest.mark.parametrize("L", [16, 64, 128])
    def test_packet_length_scaling_exact(self, L):
        params = SimParams(adaptive_routing=False, packet_flits=L)
        topo = make_line(3)
        ev = event_unicast_delivery(SimNetwork(topo, params), 0, 2)
        fl = flit_unicast_delivery(topo, params, 0, 2)
        assert ev == fl


class TestContendedAgreement:
    def test_back_to_back_packets_exact(self):
        params = SimParams(adaptive_routing=False)
        topo = make_line(3)
        ev = event_unicast_delivery(
            SimNetwork(topo, params), 0, 2, starts=[0.0, 0.0]
        )
        fl = flit_unicast_delivery(topo, params, 0, 2, starts=[0, 0])
        assert ev == fl  # 137 and 266 (pipeline bubble included)

    @pytest.mark.parametrize("buffer_flits", [4, 64, 256])
    def test_blocked_worm_delivery_times_agree(self, buffer_flits):
        # Worm A (node1->node2) occupies sw1->sw2; worm B (node0->node2)
        # must wait.  Delivery times of both must match across backends
        # in every buffer regime (VCT and wormhole).
        params = SimParams(adaptive_routing=False,
                           input_buffer_flits=buffer_flits)
        topo = make_line(3)
        net = SimNetwork(topo, params)
        ev: list[float] = []
        for src in (1, 0):
            w = Worm(net.engine, net.params, net.unicast_steer(2),
                     on_delivered=lambda _n, t: ev.append(t), rng=net.rng)
            w.start(net.fabric.inject[src], None)
        net.run()

        from repro.routing.updown import UpDownRouting

        rt = UpDownRouting.build(topo)
        fab = FlitLevelFabric(topo, params)
        fab.inject(0, unicast_route(topo, rt, 1, 2))
        fab.inject(0, unicast_route(topo, rt, 0, 2))
        fab.run()
        fl = sorted(float(v) for v in fab.deliveries.values())
        assert sorted(ev) == fl


class TestReplicationAgreement:
    def _fork_route(self, topo, hub_links) -> FlitRoute:
        return FlitRoute(
            ("inj", 0),
            [
                FlitRoute(("fwd", hub_links[0].link_id, 0),
                          [FlitRoute(("del", 1))]),
                FlitRoute(("fwd", hub_links[1].link_id, 0),
                          [FlitRoute(("del", 2))]),
            ],
        )

    def test_fork_delivery_times_agree(self):
        params = SimParams(adaptive_routing=False)
        topo = make_star(2, hosts_per_switch=1)
        net = SimNetwork(topo, params)
        fabch = net.fabric
        ev: list[float] = []

        def steer(switch, state):
            if switch == 0:
                return [
                    Forward([(fabch.forward_channel(topo.links[0], 0), "a")]),
                    Forward([(fabch.forward_channel(topo.links[1], 0), "b")]),
                ]
            return [Deliver(fabch.deliver[1 if state == "a" else 2])]

        w = Worm(net.engine, net.params, steer,
                 on_delivered=lambda _n, t: ev.append(t), rng=net.rng)
        w.start(fabch.inject[0], None)
        net.run()

        fab = FlitLevelFabric(topo, params)
        fab.inject(0, self._fork_route(topo, topo.links))
        fab.run()
        fl = sorted(float(v) for v in fab.deliveries.values())
        assert sorted(ev) == fl

    def test_fork_with_blocked_branch_agrees(self):
        # A unicast blocker on one branch: the fork's two deliveries and the
        # blocker must agree across backends (small buffer: wormhole case).
        params = SimParams(adaptive_routing=False, input_buffer_flits=4)
        topo = make_star(2, hosts_per_switch=2)
        # hosts 0,1 on hub; 2,3 on sw1; 4,5 on sw2
        net = SimNetwork(topo, params)
        fabch = net.fabric
        ev: list[float] = []
        # blocker: node0 -> node2 (holds hub->sw1)
        wb = Worm(net.engine, net.params, net.unicast_steer(2),
                  on_delivered=lambda _n, t: ev.append(t), rng=net.rng)
        wb.start(fabch.inject[0], None)

        def steer(switch, state):
            if switch == 0:
                return [
                    Forward([(fabch.forward_channel(topo.links[0], 0), "a")]),
                    Forward([(fabch.forward_channel(topo.links[1], 0), "b")]),
                ]
            return [Deliver(fabch.deliver[3 if state == "a" else 4])]

        wf = Worm(net.engine, net.params, steer,
                  on_delivered=lambda _n, t: ev.append(t), rng=net.rng)
        wf.start(fabch.inject[1], None)
        net.run()

        from repro.routing.updown import UpDownRouting

        rt = UpDownRouting.build(topo)
        fab = FlitLevelFabric(topo, params)
        fab.inject(0, unicast_route(topo, rt, 0, 2))
        fork = FlitRoute(
            ("inj", 1),
            [
                FlitRoute(("fwd", topo.links[0].link_id, 0),
                          [FlitRoute(("del", 3))]),
                FlitRoute(("fwd", topo.links[1].link_id, 0),
                          [FlitRoute(("del", 4))]),
            ],
        )
        fab.inject(0, fork)
        fab.run()
        fl = sorted(float(v) for v in fab.deliveries.values())
        assert sorted(ev) == fl


class TestFlitSimGuards:
    def test_route_leaf_must_be_delivery(self):
        topo = make_line(2)
        fab = FlitLevelFabric(topo, SimParams())
        bad = FlitRoute(("inj", 0), [FlitRoute(("fwd", 0, 0))])
        with pytest.raises(ValueError, match="delivery"):
            fab.inject(0, bad)

    def test_runaway_guard(self):
        topo = make_line(2)
        fab = FlitLevelFabric(topo, SimParams())
        from repro.routing.updown import UpDownRouting

        rt = UpDownRouting.build(topo)
        fab.inject(0, unicast_route(topo, rt, 0, 1))
        with pytest.raises(RuntimeError, match="max_cycles"):
            fab.run(max_cycles=3)

    def test_inject_rejects_fractional_start(self):
        # Regression: the tick loop matches starts by exact integer cycle,
        # so a fractional start silently never fired and run() spun into
        # the max_cycles guard.  It must be rejected at injection instead.
        topo = make_line(2)
        from repro.routing.updown import UpDownRouting

        rt = UpDownRouting.build(topo)
        fab = FlitLevelFabric(topo, SimParams())
        with pytest.raises(TypeError, match="integer"):
            fab.inject(0.5, unicast_route(topo, rt, 0, 1))

    def test_inject_rejects_past_start(self):
        topo = make_line(2)
        from repro.routing.updown import UpDownRouting

        rt = UpDownRouting.build(topo)
        params = SimParams(adaptive_routing=False)
        fab = FlitLevelFabric(topo, params)
        fab.inject(0, unicast_route(topo, rt, 0, 1))
        fab.run()
        assert fab.now > 0
        with pytest.raises(ValueError, match="past"):
            fab.inject(0, unicast_route(topo, rt, 1, 0))


class TestSeededScenarioAgreement:
    """Larger seeded scenarios with concurrently replicating worms.

    The expected delivery maps were captured from the pre-optimization
    backends (which the agreement suite had pinned to each other), so these
    tests prove the de-quadratized hot paths are bit-exact, not merely
    self-consistent.
    """

    def _assert_both_match(self, topo, params, jobs, golden):
        from repro.sim.crossval import run_event_scenario, run_flit_scenario

        assert run_event_scenario(topo, params, jobs) == golden
        assert run_flit_scenario(topo, params, jobs) == golden

    def test_two_replicating_worms_small_buffers(self):
        # Two multidestination worms replicating at the hub concurrently
        # (contending for the hub->sw2 link) plus a staggered unicast,
        # with 4-flit buffers: deep wormhole chain-blocking.
        params = SimParams(adaptive_routing=False, input_buffer_flits=4)
        topo = make_star(3, hosts_per_switch=2)
        jobs = [(0, 0, (2, 4)), (0, 1, (4, 6)), (3, 3, (6,))]
        golden = {
            (0, 2): 134.0,
            (0, 4): 134.0,
            (1, 4): 263.0,
            (1, 6): 134.0,
            (2, 6): 263.0,
        }
        self._assert_both_match(topo, params, jobs, golden)

    def test_seeded_16_switch_multidestination(self):
        # The benchmark smoke scenario: 16 switches, four 4-destination
        # worms with 512-flit packets over 64-flit buffers.
        params = SimParams(
            adaptive_routing=False, num_switches=16, packet_flits=512
        )
        topo = generate_irregular_topology(params, seed=7)
        jobs = [
            (0, 7, (0, 8, 9, 24)),
            (25, 14, (3, 4, 22, 24)),
            (50, 5, (0, 1, 14, 19)),
            (75, 5, (7, 8, 17, 20)),
        ]
        golden = {
            (0, 0): 524.0,
            (0, 8): 521.0,
            (0, 9): 524.0,
            (0, 24): 524.0,
            (1, 3): 549.0,
            (1, 4): 546.0,
            (1, 22): 555.0,
            (1, 24): 1037.0,
            (2, 0): 1037.0,
            (2, 1): 568.0,
            (2, 14): 568.0,
            (2, 19): 571.0,
            (3, 7): 1087.0,
            (3, 8): 1081.0,
            (3, 17): 1081.0,
            (3, 20): 1084.0,
        }
        self._assert_both_match(topo, params, jobs, golden)
