"""Golden regression pins: exact headline numbers on the reference scenario.

The simulation is deterministic, so these values are stable across runs and
platforms; any change means the *model* changed and EXPERIMENTS.md /
README.md need re-verification.  Update deliberately, never casually.
"""

import random

import pytest

from repro.multicast import make_scheme
from repro.params import SimParams
from repro.sim.network import SimNetwork
from repro.topology.irregular import generate_irregular_topology

GOLDEN_SINGLE_15DEST = {
    "tree": 3239.0,
    "path": 6598.0,
    "ni": 6629.0,
    "binomial": 12918.0,
}


def reference_scenario():
    params = SimParams()
    topo = generate_irregular_topology(params, seed=3)
    dests = random.Random(3).sample(range(1, 32), 15)
    return topo, params, dests


class TestGoldenNumbers:
    @pytest.mark.parametrize("scheme,expected",
                             sorted(GOLDEN_SINGLE_15DEST.items()))
    def test_single_multicast_latency(self, scheme, expected):
        topo, params, dests = reference_scenario()
        net = SimNetwork(topo, params)
        res = make_scheme(scheme).execute(net, 0, dests)
        net.run()
        assert res.latency == pytest.approx(expected, abs=0.5), (
            f"{scheme} latency moved from its golden value; if the model "
            "change is intentional, update this pin and re-verify "
            "EXPERIMENTS.md"
        )

    def test_headline_ordering(self):
        g = GOLDEN_SINGLE_15DEST
        assert g["tree"] < g["path"] <= g["ni"] < g["binomial"]
        # the README's headline factors
        assert g["binomial"] / g["tree"] == pytest.approx(4.0, abs=0.2)
        assert g["ni"] / g["tree"] == pytest.approx(2.05, abs=0.15)
