"""Chaos suite: runtime link faults, reconfiguration, retriable delivery.

The paper's robustness claim -- irregular topologies are "resistant to
faults" and amenable to Autonet-style reconfiguration -- is exercised here
mid-flight: links die under worms of every multicast scheme, the network
reconfigures in place, and the reliable delivery layer must redeliver
exactly-once.  A no-fault wrapped run must stay byte-identical to a bare
run, and a fixed seed + schedule must replay to a pinned golden digest
(including through the ``ProcessPoolExecutor`` path the experiment runner
uses).
"""

import random
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.chaos import (
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    ReliableMulticast,
)
from repro.multicast import make_scheme
from repro.params import SimParams
from repro.routing.deadlock import verify_deadlock_free
from repro.routing.paths import all_minimal_paths, updown_decomposition
from repro.sim.monitor import NetworkMonitor
from repro.sim.network import SimNetwork
from repro.sim.tracelog import TraceLog
from repro.topology.faults import schedule_faults
from tests.topo_fixtures import make_chorded_diamond, make_diamond, make_line

SCHEMES = ["binomial", "ni", "tree", "path"]


def chaos_net(topo=None, **params) -> SimNetwork:
    net = SimNetwork(topo if topo is not None else make_chorded_diamond(),
                     SimParams(**params))
    net.trace = TraceLog()
    net.worm_log = []
    return net


def arm(net, pairs, **kw) -> FaultInjector:
    injector = FaultInjector(net, FaultSchedule.from_pairs(pairs), **kw)
    injector.arm()
    return injector


# ----------------------------------------------------------------------
# Schedule and injector primitives
# ----------------------------------------------------------------------
class TestSchedule:
    def test_event_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultEvent(-1.0, 0)
        with pytest.raises(ValueError, match="non-negative"):
            FaultEvent(5.0, -2)

    def test_out_of_order_events_rejected(self):
        with pytest.raises(ValueError, match="ordered"):
            FaultSchedule(events=(FaultEvent(9.0, 0), FaultEvent(2.0, 1)))

    def test_from_pairs_sorts(self):
        sched = FaultSchedule.from_pairs([(9.0, 0), (2.0, 1)])
        assert [ev.time for ev in sched] == [2.0, 9.0]
        assert len(sched) == 2
        assert sched.to_pairs() == [(2.0, 1), (9.0, 0)]

    def test_random_schedule_is_seeded_and_absorbable(self):
        topo = make_chorded_diamond()
        s1 = FaultSchedule.random(topo, 2, random.Random(3))
        s2 = FaultSchedule.random(topo, 2, random.Random(3))
        assert s1 == s2
        assert len(s1) == 2

    def test_schedule_faults_stuck_error(self):
        with pytest.raises(ValueError, match="stuck after 1"):
            schedule_faults(make_diamond(), 2, random.Random(0))

    def test_schedule_faults_validation(self):
        topo = make_chorded_diamond()
        with pytest.raises(ValueError, match="non-negative"):
            schedule_faults(topo, -1)
        with pytest.raises(ValueError, match="window"):
            schedule_faults(topo, 1, window=(10.0, 2.0))


class TestInjector:
    def test_double_arm_rejected(self):
        net = chaos_net()
        injector = arm(net, [(5.0, 0)])
        with pytest.raises(RuntimeError, match="already armed"):
            injector.arm()

    def test_negative_latency_rejected(self):
        net = chaos_net()
        with pytest.raises(ValueError, match="non-negative"):
            FaultInjector(net, FaultSchedule(), reconfig_latency=-1.0)

    def test_repeat_fault_is_skipped(self):
        net = chaos_net()
        arm(net, [(5.0, 4), (6.0, 4)])
        net.run()
        assert net.chaos.faults_fired == 1
        assert net.chaos.faults_skipped == 1
        assert net.trace.records(event="fault-skip")

    def test_disconnecting_fault_is_skipped(self):
        net = chaos_net(make_line(3))  # every link is a bridge
        arm(net, [(5.0, 0)])
        net.run()
        assert net.chaos.faults_fired == 0
        assert net.chaos.faults_skipped == 1
        assert net.routing_epoch == 0

    def test_fault_revokes_both_directions(self):
        net = chaos_net()
        arm(net, [(5.0, 4)])
        net.run()
        revoked = [ch for ch in net.fabric.forward.values() if ch.revoked]
        assert len(revoked) == 2
        assert all(ch.link.link_id == 4 for ch in revoked)

    def test_reconfig_latency_delays_notification(self):
        net = chaos_net()
        seen = []
        net.fault_listeners.append(
            lambda ev: seen.append((net.engine.now, ev.link_id)))
        arm(net, [(5.0, 4)], reconfig_latency=25.0)
        net.run()
        assert seen == [(30.0, 4)]
        assert net.chaos.reconfig_latency_total == 25.0


# ----------------------------------------------------------------------
# Reconfiguration semantics
# ----------------------------------------------------------------------
class TestReconfiguration:
    def test_epoch_and_history_advance(self):
        net = chaos_net()
        assert net.routing_epoch == 0
        old_routing = net.routing
        arm(net, [(5.0, 4), (20.0, 0)])
        net.run()
        assert net.routing_epoch == 2
        assert net.chaos.reconfigurations == 2
        assert net.routing_history[0] is old_routing
        assert net.routing_history[2] is net.routing
        assert len(net.topo.links) == 3

    def test_post_reconfiguration_routing_is_legal(self):
        net = chaos_net()
        arm(net, [(5.0, 4)])
        net.run()
        verify_deadlock_free(net.topo, net.routing)
        # every minimal route the new tables can produce decomposes into
        # up* then down*
        for src_sw in range(net.topo.num_switches):
            for dst_sw in range(net.topo.num_switches):
                if src_sw == dst_sw:
                    continue
                paths = all_minimal_paths(net.routing, src_sw, dst_sw)
                assert paths, f"no route {src_sw}->{dst_sw} after reconfig"
                for path in paths:
                    updown_decomposition(net.routing, src_sw, path)

    def test_plan_cache_invalidated_by_reconfiguration(self):
        net = chaos_net()
        scheme = make_scheme("tree")
        scheme.enable_plan_cache()
        scheme.execute(net, 0, [3, 5])
        net.run()
        keys_before = set(scheme._plan_cache[net])
        net.reconfigure(net.topo)  # manual epoch bump, same topology
        scheme.execute(net, 0, [3, 5])
        net.run()
        fresh = set(scheme._plan_cache[net]) - keys_before
        assert fresh, "reconfiguration must invalidate cached plans"
        assert all(k[0] == net.routing_epoch for k in fresh)


# ----------------------------------------------------------------------
# Mid-flight faults per scheme
# ----------------------------------------------------------------------
class TestMidFlightFault:
    @pytest.mark.parametrize("scheme_name", SCHEMES)
    def test_single_link_fault_redelivers_exactly_once(self, scheme_name):
        net = chaos_net()
        arm(net, [(5.0, 0)])
        reliable = ReliableMulticast(net, make_scheme(scheme_name))
        op = reliable.send(0, [2, 5, 7])
        net.run()

        assert net.chaos.faults_fired == 1
        assert op.complete, f"unacked: {op.unacked()}"
        assert sorted(op.acked) == [2, 5, 7]      # exactly-once: dict keys
        assert not op.gave_up
        assert op.latency >= 0
        net.assert_quiescent()                     # network quiesces

        # every aborted worm released all its channels without counting
        # traffic on the unfinished hops
        for worm in net.worm_log:
            if worm.aborted:
                assert worm.finish_time is None
                assert net.trace.records(event="abort", worm_contains=worm.label)

    @pytest.mark.parametrize("scheme_name", SCHEMES)
    def test_fault_and_retry_leave_trace_records(self, scheme_name):
        net = chaos_net()
        arm(net, [(5.0, 0)])
        reliable = ReliableMulticast(net, make_scheme(scheme_name))
        op = reliable.send(0, [2, 5, 7])
        net.run()
        assert op.complete
        assert net.trace.records(event="fault")
        assert net.trace.records(event="reconfig")
        assert net.trace.records(event="retry")
        assert net.trace.records(event="replan")

    def test_nack_propagates_to_source_host(self):
        # Raw launch (no retry layer): an aborted worm must nack back to
        # the source host -- trace record, counters, and the sender's
        # on_abort callback.
        net = chaos_net()
        nacks = []
        worm = net.hosts[0].launch_worm(
            net.unicast_steer(7), None, lambda node, t: None,
            on_abort=nacks.append, label="raw:0>7",
        )
        net.run(until=1.0)  # let the worm occupy some channels
        worm.abort("link 0 failed")
        assert nacks == ["link 0 failed"]
        assert net.chaos.worms_aborted == 1
        assert net.chaos.nacks == 1
        recs = net.trace.records(event="nack", worm_contains="raw:0>7")
        assert recs and "node 0: link 0 failed" in recs[0].detail
        net.run()
        net.assert_quiescent()

    def test_worm_requesting_revoked_channel_aborts(self):
        # A fault at t=0 revokes before any worm moves: the first worm to
        # route across the dead link aborts at request time.
        net = chaos_net()
        arm(net, [(0.0, 0)])
        reliable = ReliableMulticast(net, make_scheme("binomial"),
                                     backoff=10.0)
        op = reliable.send(0, [2])
        net.run()
        assert op.complete
        net.assert_quiescent()


# ----------------------------------------------------------------------
# Exactly-once bookkeeping
# ----------------------------------------------------------------------
class TestExactlyOnce:
    def test_duplicate_acks_are_deduplicated(self):
        # The conservative retry resends to destinations whose first copy
        # is still in its receive pipeline; the duplicate ack must not
        # overwrite the first delivery time.
        net = chaos_net(make_diamond(hosts_per_switch=2))
        arm(net, [(5.0, 0)])
        reliable = ReliableMulticast(net, make_scheme("binomial"))
        op = reliable.send(0, [2, 4, 6])
        net.run()
        assert op.complete
        assert net.chaos.duplicate_acks > 0
        assert net.trace.records(event="dup-ack")
        first_acks = dict(op.acked)
        assert all(t <= net.engine.now for t in first_acks.values())

    def test_giveup_after_max_attempts(self):
        net = chaos_net()
        arm(net, [(5.0, 0)])
        reliable = ReliableMulticast(net, make_scheme("binomial"),
                                     max_attempts=1)
        op = reliable.send(0, [2, 5, 7])
        net.run()
        # the single allowed attempt was interrupted; no retry is permitted
        assert op.gave_up
        assert not op.complete
        assert net.chaos.gave_up == 1
        assert net.trace.records(event="giveup")
        net.assert_quiescent()

    def test_delivery_layer_validation(self):
        net = chaos_net()
        scheme = make_scheme("binomial")
        with pytest.raises(ValueError, match="backoff"):
            ReliableMulticast(net, scheme, backoff=-1.0)
        with pytest.raises(ValueError, match="backoff_factor"):
            ReliableMulticast(net, scheme, backoff_factor=0.5)
        with pytest.raises(ValueError, match="max_attempts"):
            ReliableMulticast(net, scheme, max_attempts=0)

    def test_on_complete_fires_once(self):
        net = chaos_net()
        done = []
        arm(net, [(5.0, 0)])
        reliable = ReliableMulticast(net, make_scheme("tree"))
        reliable.send(0, [2, 5, 7], on_complete=done.append)
        net.run()
        assert len(done) == 1 and done[0].complete


# ----------------------------------------------------------------------
# Monitor integration
# ----------------------------------------------------------------------
class TestMonitor:
    def test_report_carries_chaos_counters(self):
        net = chaos_net()
        mon = NetworkMonitor(net)
        arm(net, [(5.0, 0)], reconfig_latency=7.0)
        reliable = ReliableMulticast(net, make_scheme("binomial"))
        op = reliable.send(0, [2, 5, 7])
        net.run()
        assert op.complete
        report = mon.report()
        assert report.reconfigurations == 1
        assert report.retries == net.chaos.retries >= 1
        assert report.worms_aborted == net.chaos.worms_aborted
        assert report.reconfig_latency_total == 7.0


# ----------------------------------------------------------------------
# Determinism: no-fault byte-identity and the golden digest
# ----------------------------------------------------------------------
def _bare_digest(scheme_name: str) -> str:
    net = chaos_net()
    scheme = make_scheme(scheme_name)
    scheme.execute(net, 0, [2, 5, 7])
    net.run()
    return net.trace.digest()


def _wrapped_digest(scheme_name: str) -> str:
    net = chaos_net()
    arm(net, [])  # empty schedule
    reliable = ReliableMulticast(net, make_scheme(scheme_name))
    reliable.send(0, [2, 5, 7])
    net.run()
    return net.trace.digest()


class TestNoFaultByteIdentity:
    @pytest.mark.parametrize("scheme_name", SCHEMES)
    def test_wrapped_no_fault_run_is_byte_identical(self, scheme_name):
        assert _bare_digest(scheme_name) == _wrapped_digest(scheme_name)


def golden_chaos_digest(seed: int) -> str:
    """The pinned chaos run: module-level so ProcessPoolExecutor picks it up.

    Everything is derived from ``seed``; the trace digest is the
    determinism contract's witness.
    """
    net = chaos_net()
    sched = FaultSchedule.random(
        net.topo, 2, random.Random(seed), window=(2.0, 40.0))
    FaultInjector(net, sched, reconfig_latency=5.0).arm()
    reliable = ReliableMulticast(net, make_scheme("tree"))
    rng = random.Random(seed + 1)
    ops = [reliable.send(0, rng.sample(range(1, 8), 3)) for _ in range(2)]
    net.run()
    assert all(op.complete for op in ops)
    net.assert_quiescent()
    return net.trace.digest()


GOLDEN_DIGEST = (
    "51b8fce79db0029e778e0582f126f0146ed18010c8c714eea1fcaba6ce3ac264"
)
"""sha256 of the rendered trace of ``golden_chaos_digest(42)``.

If an intentional timing/trace change moves this, regenerate with
``PYTHONPATH=src:. python -c "from tests.test_chaos import *; print(golden_chaos_digest(42))"``
and say why in the commit message.
"""


class TestGoldenDeterminism:
    def test_same_seed_and_schedule_replays_identically(self):
        assert golden_chaos_digest(42) == golden_chaos_digest(42)

    def test_golden_digest_is_pinned(self):
        assert golden_chaos_digest(42) == GOLDEN_DIGEST

    def test_replay_through_process_pool(self):
        # the experiment runner's parallel path: child processes must
        # reproduce the parent's digest bit-for-bit
        with ProcessPoolExecutor(max_workers=2) as pool:
            digests = list(pool.map(golden_chaos_digest, [42, 42]))
        assert digests == [GOLDEN_DIGEST, GOLDEN_DIGEST]
