"""Tests for the parallel, cached, resumable experiment runner.

The load-bearing contracts: per-cell seeds are deterministic and
platform-stable; parallel execution is byte-identical to serial; a warm
cache serves results without executing a single simulation cell; corrupt
cache entries are recomputed, not trusted.
"""

import json

import pytest

from repro.experiments.base import load_cells, load_sweep, single_multicast_cells
from repro.experiments.config import Profile
from repro.experiments.io import result_to_dict
from repro.experiments.registry import run_experiment_with_stats
from repro.experiments.runner import (
    Cell,
    CellCache,
    derive_seed,
    execute_cells,
    execution_context,
    parallel_map,
    run_cell,
)
from repro.params import SimParams

MICRO = Profile(
    name="micro",
    n_topologies=1,
    trials_per_topology=1,
    group_sizes=(4,),
    loads=(0.02,),
    load_duration=15_000,
    load_warmup=1_500,
    load_degrees=(4,),
)


def result_bytes(result) -> str:
    return json.dumps(result_to_dict(result), indent=2)


def square(x: int) -> int:
    return x * x


def fail(_x: int) -> int:
    raise ZeroDivisionError("worker failure must surface")


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed(2024, "fig06", "R=2", 16) == derive_seed(
            2024, "fig06", "R=2", 16
        )

    def test_distinct_across_coordinates(self):
        seeds = {
            derive_seed(2024, "fig06", "R=2", 16),
            derive_seed(2024, "fig06", "R=2", 8),
            derive_seed(2024, "fig06", "R=4", 16),
            derive_seed(2024, "fig07", "R=2", 16),
            derive_seed(7, "fig06", "R=2", 16),
        }
        assert len(seeds) == 5

    def test_seed_range(self):
        for i in range(100):
            assert 0 <= derive_seed(1, "e", i) < 2**31

    def test_schemes_share_a_cell_seed(self):
        # Paired comparison: every scheme of one grid point draws the same
        # topologies and destination sets.
        cells = single_multicast_cells(
            "e", {"base": SimParams()}, MICRO, schemes=("ni", "path", "tree")
        )
        assert len({c.seed for c in cells}) == 1
        assert len({c.scheme for c in cells}) == 3


class TestCellIdentity:
    def make(self, **over):
        base = dict(
            kind="single",
            exp_id="e",
            params=SimParams(),
            scheme="tree",
            coords=(("variant", "base"), ("size", 4)),
            knobs=(("n_topologies", 1), ("trials_per_topology", 1)),
            seed=11,
        )
        base.update(over)
        return Cell(**base)

    def test_digest_stable(self):
        assert self.make().digest() == self.make().digest()

    def test_digest_distinguishes_scheme_params_knobs_seed(self):
        base = self.make()
        assert base.digest() != self.make(scheme="path").digest()
        assert base.digest() != self.make(params=SimParams(ratio_r=4.0)).digest()
        assert (
            base.digest()
            != self.make(
                knobs=(("n_topologies", 2), ("trials_per_topology", 1))
            ).digest()
        )
        assert base.digest() != self.make(seed=12).digest()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown cell kind"):
            run_cell(self.make(kind="bogus"))


class TestParallelMap:
    def test_serial_and_parallel_agree(self):
        items = list(range(20))
        assert parallel_map(square, items, 1) == parallel_map(square, items, 3)

    def test_worker_exception_propagates(self):
        with pytest.raises(ZeroDivisionError):
            parallel_map(fail, [1, 2], 2)

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            with execution_context(jobs=0):
                pass


class TestParallelEqualsSerial:
    def test_single_experiment_byte_identical(self):
        serial, s1 = run_experiment_with_stats("fig06", MICRO, jobs=1)
        parallel, s2 = run_experiment_with_stats("fig06", MICRO, jobs=3)
        assert result_bytes(serial) == result_bytes(parallel)
        assert s1.cells_executed == s2.cells_executed > 0

    def test_load_sweep_byte_identical(self):
        variants = {"base": SimParams()}
        serial = load_sweep("t", "t", variants, MICRO, schemes=("tree", "path"))
        with execution_context(jobs=3):
            parallel = load_sweep(
                "t", "t", variants, MICRO, schemes=("tree", "path")
            )
        assert result_bytes(serial) == result_bytes(parallel)


class TestCellCache:
    def run_cells(self, tmp_path, jobs=1):
        cells = single_multicast_cells(
            "e", {"base": SimParams()}, MICRO, schemes=("tree",)
        )
        cache = CellCache(tmp_path / "cells")
        with execution_context(jobs=jobs, cache=cache) as ctx:
            values = execute_cells(cells)
        return cells, values, cache, ctx.stats

    def test_cold_then_warm(self, tmp_path):
        cells, values, _cache, stats = self.run_cells(tmp_path)
        assert stats.cells_executed == len(cells)
        assert stats.cells_cached == 0
        _cells, warm_values, cache, warm_stats = self.run_cells(tmp_path)
        assert warm_stats.cells_executed == 0
        assert warm_stats.cells_cached == len(cells)
        assert cache.hits == len(cells)
        assert warm_values == values

    def test_cache_round_trips_exactly(self, tmp_path):
        # Values pass through JSON on the cache path; floats must survive
        # bit-exactly for the byte-identity contract.
        _cells, cold, _c, _s = self.run_cells(tmp_path)
        _cells, warm, _c, _s = self.run_cells(tmp_path)
        assert json.dumps(cold) == json.dumps(warm)

    def test_corrupt_entry_recomputed(self, tmp_path, capsys):
        cells, values, cache, _stats = self.run_cells(tmp_path)
        victim = cache._path(cells[0].digest())
        victim.write_text("{ not json")
        _cells, again, cache2, stats = self.run_cells(tmp_path)
        assert again == values
        assert stats.cells_executed == 1  # only the corrupted cell reran
        assert "discarding unreadable" in capsys.readouterr().out

    def test_parameter_change_invalidates_only_its_cells(self, tmp_path):
        self.run_cells(tmp_path)
        cells = single_multicast_cells(
            "e", {"base": SimParams(ratio_r=4.0)}, MICRO, schemes=("tree",)
        )
        cache = CellCache(tmp_path / "cells")
        with execution_context(cache=cache) as ctx:
            execute_cells(cells)
        assert ctx.stats.cells_executed == len(cells)  # no false hits

    def test_load_cells_cache_none_and_saturation(self, tmp_path):
        # A saturating load point round-trips through the cache with its
        # None latency intact.
        heavy = Profile(
            name="heavy",
            n_topologies=1,
            trials_per_topology=1,
            group_sizes=(4,),
            loads=(2.0,),
            load_duration=8_000,
            load_warmup=800,
            load_degrees=(16,),
        )
        cells = load_cells("t", {"base": SimParams()}, heavy, schemes=("binomial",))
        cache = CellCache(tmp_path / "cells")
        with execution_context(cache=cache):
            cold = execute_cells(cells)
        with execution_context(cache=cache) as ctx:
            warm = execute_cells(cells)
        assert ctx.stats.cells_executed == 0
        assert warm == cold


class TestExperimentLevelCache:
    def test_warm_rerun_executes_zero_cells(self, tmp_path):
        result, cold = run_experiment_with_stats(
            "fig06", MICRO, jobs=2, cache_dir=tmp_path
        )
        assert cold.cells_executed > 0
        warm_result, warm = run_experiment_with_stats(
            "fig06", MICRO, jobs=2, cache_dir=tmp_path
        )
        assert warm.cells_executed == 0
        assert warm.cells_cached == 0
        assert warm.experiments_cached == 1
        assert result_bytes(warm_result) == result_bytes(result)

    def test_resume_from_cell_cache(self, tmp_path):
        result, _ = run_experiment_with_stats("fig06", MICRO, cache_dir=tmp_path)
        # Losing the experiment-level entry simulates a crash after the
        # cells completed but before the merge was persisted.
        for p in (tmp_path / "experiments").glob("*.json"):
            p.unlink()
        resumed, stats = run_experiment_with_stats(
            "fig06", MICRO, cache_dir=tmp_path
        )
        assert stats.cells_executed == 0
        assert stats.cells_cached > 0
        assert result_bytes(resumed) == result_bytes(result)

    def test_profile_change_misses(self, tmp_path):
        run_experiment_with_stats("fig06", MICRO, cache_dir=tmp_path)
        other = Profile(
            name="micro2",
            n_topologies=1,
            trials_per_topology=1,
            group_sizes=(4, 8),
            loads=(0.02,),
            load_duration=15_000,
            load_warmup=1_500,
            load_degrees=(4,),
        )
        _result, stats = run_experiment_with_stats(
            "fig06", other, cache_dir=tmp_path
        )
        assert stats.experiments_cached == 0
        assert stats.cells_executed > 0
