"""Tests for architectural requirements, traffic patterns, and the
saturation predictor."""

import random

import pytest

from repro.analysis.requirements import (
    ni_scheme_requirements,
    node_id_bits,
    path_scheme_requirements,
    render_requirements,
    requirements_table,
    tree_scheme_requirements,
)
from repro.analysis.saturation import predict_saturation
from repro.params import SimParams
from repro.sim.network import SimNetwork
from repro.topology.irregular import generate_irregular_topology
from repro.traffic.load import run_load_experiment
from repro.traffic.patterns import (
    PATTERNS,
    clustered_pattern,
    hotspot_pattern,
    resolve_pattern,
    single_switch_pattern,
    uniform_pattern,
)


def default_net(seed=3, **kw) -> SimNetwork:
    p = SimParams(**kw)
    return SimNetwork(generate_irregular_topology(p, seed=seed), p)


class TestRequirements:
    def test_node_id_bits(self):
        assert node_id_bits(SimParams(num_nodes=32)) == 5
        assert node_id_bits(SimParams(num_nodes=33, num_switches=16)) == 6

    def test_tree_scheme_scales_with_system_size(self):
        small = tree_scheme_requirements(default_net())
        big_params = SimParams(num_nodes=64, num_switches=16)
        big_net = SimNetwork(
            generate_irregular_topology(big_params, seed=3), big_params
        )
        big = tree_scheme_requirements(big_net)
        assert big.header_bits == 64 and small.header_bits == 32
        assert big.switch_storage_bits > small.switch_storage_bits
        assert big.switch_replication and not big.ni_firmware

    def test_ni_scheme_needs_no_switch_support(self):
        r = ni_scheme_requirements(default_net())
        assert r.switch_storage_bits == 0
        assert not r.switch_replication
        assert r.ni_firmware
        assert r.ni_buffer_flits > 0

    def test_path_scheme_header_grows_with_path(self):
        net = default_net()
        r = path_scheme_requirements(net)
        # (node id + port mask) per switch on the worst-case path
        assert r.header_bits == (5 + 8) * net.topo.num_switches
        assert r.switch_storage_bits == 0

    def test_table_and_render(self):
        rows = requirements_table(default_net())
        assert [r.scheme for r in rows] == ["tree", "path", "ni"]
        text = render_requirements(rows)
        assert "tree" in text and "NI firmware" in text


class TestPatterns:
    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_patterns_return_valid_sets(self, name):
        net = default_net()
        fn = PATTERNS[name]
        rng = random.Random(0)
        for _ in range(20):
            dests = fn(rng, net.topo, 0, 7)
            assert len(dests) == 7
            assert len(set(dests)) == 7
            assert 0 not in dests
            assert all(0 <= d < 32 for d in dests)

    def test_clustered_prefers_near_switches(self):
        from repro.topology.analysis import switch_distances

        net = default_net()
        topo = net.topo
        rng_u, rng_c = random.Random(1), random.Random(1)
        dist = switch_distances(topo, topo.switch_of_node(0))

        def mean_dist(fn, rng):
            total = 0.0
            for _ in range(60):
                for d in fn(rng, topo, 0, 6):
                    total += dist[topo.switch_of_node(d)]
            return total / (60 * 6)

        assert mean_dist(clustered_pattern, rng_c) < mean_dist(
            uniform_pattern, rng_u
        )

    def test_hotspot_prefers_low_ids(self):
        net = default_net()
        rng = random.Random(2)
        hits = [0] * 32
        for _ in range(100):
            for d in hotspot_pattern(rng, net.topo, 31, 5):
                hits[d] += 1
        hot = sum(hits[:8])
        cold = sum(hits[8:])
        assert hot > cold

    def test_single_switch_concentrates(self):
        net = default_net()
        rng = random.Random(3)
        dests = single_switch_pattern(rng, net.topo, 0, 3)
        switches = {net.topo.switch_of_node(d) for d in dests}
        assert len(switches) <= 3  # mostly one switch, spill allowed

    def test_resolve(self):
        assert resolve_pattern(None) is uniform_pattern
        assert resolve_pattern("uniform") is uniform_pattern
        assert resolve_pattern(uniform_pattern) is uniform_pattern
        with pytest.raises(ValueError):
            resolve_pattern("bogus")

    def test_load_driver_accepts_pattern(self):
        net = default_net()
        point = run_load_experiment(
            net.topo, net.params, "tree", degree=4, effective_load=0.02,
            duration=30_000, warmup=3_000, pattern="clustered",
        )
        assert point.completed > 0


class TestSaturationPredictor:
    def test_scheme_ordering(self):
        net = default_net()
        sat = {
            s: predict_saturation(net, s, 16).saturation_load
            for s in ("binomial", "ni", "path", "tree")
        }
        assert sat["binomial"] == min(sat.values())
        assert sat["tree"] == max(sat.values())

    def test_prediction_brackets_simulation(self):
        # Simulated mean latency at half the predicted saturation load must
        # still be sane; at twice it, the system must be badly congested.
        net = default_net()
        est = predict_saturation(net, "tree", 16)

        def sim_latency(load):
            p = run_load_experiment(
                net.topo, net.params, "tree", degree=16,
                effective_load=load, duration=60_000, warmup=6_000,
            )
            return float("inf") if p.saturated or p.mean_latency is None \
                else p.mean_latency

        below = sim_latency(est.saturation_load * 0.5)
        above = sim_latency(min(est.saturation_load * 2.0, 0.5))
        assert below < 20_000
        assert above > 2 * below

    def test_utilizations_positive(self):
        net = default_net()
        est = predict_saturation(net, "path", 4)
        assert est.bottleneck in est.utilization_per_unit_load
        assert all(v >= 0 for v in est.utilization_per_unit_load.values())
        assert est.saturation_load > 0
