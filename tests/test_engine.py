"""Unit tests for the event engine and contention resources."""

import pytest

from repro.sim.engine import Engine
from repro.sim.resources import FifoResource, ThroughputResource


class TestEngine:
    def test_events_fire_in_time_order(self):
        eng = Engine()
        log = []
        eng.at(5, lambda: log.append("b"))
        eng.at(2, lambda: log.append("a"))
        eng.at(9, lambda: log.append("c"))
        eng.run()
        assert log == ["a", "b", "c"]
        assert eng.now == 9

    def test_ties_fire_in_schedule_order(self):
        eng = Engine()
        log = []
        for tag in "xyz":
            eng.at(3, lambda t=tag: log.append(t))
        eng.run()
        assert log == ["x", "y", "z"]

    def test_after_is_relative(self):
        eng = Engine()
        times = []
        eng.at(10, lambda: eng.after(5, lambda: times.append(eng.now)))
        eng.run()
        assert times == [15]

    def test_past_scheduling_rejected(self):
        eng = Engine()
        eng.at(10, lambda: None)
        eng.run()
        with pytest.raises(ValueError):
            eng.at(5, lambda: None)
        with pytest.raises(ValueError):
            eng.after(-1, lambda: None)

    def test_run_until_stops_clock(self):
        eng = Engine()
        fired = []
        eng.at(100, lambda: fired.append(1))
        eng.run(until=50)
        assert not fired and eng.now == 50
        eng.run()
        assert fired and eng.now == 100

    def test_max_events_guard(self):
        eng = Engine()

        def loop():
            eng.after(0, loop)

        eng.after(0, loop)
        with pytest.raises(RuntimeError, match="max_events"):
            eng.run(max_events=100)

    def test_max_events_fires_exactly_the_limit(self):
        # The guard must stop after exactly max_events, not max_events + 1.
        eng = Engine()

        def loop():
            eng.after(1, loop)

        eng.after(1, loop)
        with pytest.raises(RuntimeError, match="max_events=5"):
            eng.run(max_events=5)
        assert eng.events_fired == 5

    def test_max_events_equal_to_queue_drains_cleanly(self):
        # A queue that drains at exactly the limit is not a runaway.
        eng = Engine()
        log = []
        for i in range(4):
            eng.at(i, lambda i=i: log.append(i))
        eng.run(max_events=4)
        assert log == [0, 1, 2, 3]

    def test_run_until_past_raises(self):
        # Rewinding the clock would corrupt causality, exactly like at().
        eng = Engine()
        eng.at(10, lambda: None)
        eng.run()
        assert eng.now == 10
        with pytest.raises(ValueError, match="cannot run"):
            eng.run(until=5)  # empty-heap branch
        eng.at(100, lambda: None)
        with pytest.raises(ValueError, match="cannot run"):
            eng.run(until=5)  # pending-event branch
        assert eng.now == 10  # clock untouched by the rejected calls
        eng.run(until=10)  # until == now is a legal no-op
        assert eng.now == 10

    def test_step_and_pending(self):
        eng = Engine()
        eng.at(1, lambda: None)
        eng.at(2, lambda: None)
        assert eng.pending == 2
        assert eng.step()
        assert eng.pending == 1
        assert eng.step()
        assert not eng.step()

    def test_step_honours_until(self):
        # step() shares run()'s contract: no rewinding, no overshooting.
        eng = Engine()
        eng.at(5, lambda: None)
        eng.at(20, lambda: None)
        assert eng.step(until=10)       # fires the t=5 event
        assert eng.now == 5
        assert not eng.step(until=10)   # t=20 lies beyond; clock -> until
        assert eng.now == 10
        assert eng.pending == 1
        with pytest.raises(ValueError, match="cannot step"):
            eng.step(until=3)           # pending-event branch
        assert eng.now == 10
        assert eng.step()               # unbounded step still fires t=20
        assert eng.now == 20
        with pytest.raises(ValueError, match="cannot step"):
            eng.step(until=3)           # empty-heap branch
        assert not eng.step(until=30)   # empty heap: clock -> until
        assert eng.now == 30

    def test_run_window_is_end_exclusive(self):
        eng = Engine()
        fired = []
        eng.at(1, lambda: fired.append(1))
        eng.at(5, lambda: fired.append(5))
        eng.at(9, lambda: fired.append(9))
        assert eng.run_window(5) == 1   # the t=5 event must NOT fire
        assert fired == [1]
        assert eng.now == 5
        eng.at(5, lambda: fired.append(55))  # scheduling at the barrier is legal
        assert eng.run_window(10) == 3  # t=5 events fire in schedule order
        assert fired == [1, 5, 55, 9]
        assert eng.now == 10
        with pytest.raises(ValueError, match="cannot run window"):
            eng.run_window(9)

    def test_next_event_time(self):
        eng = Engine()
        assert eng.next_event_time() is None
        eng.at(7, lambda: None)
        eng.at(3, lambda: None)
        assert eng.next_event_time() == 3
        eng.run()
        assert eng.next_event_time() is None


class TestFifoResource:
    def test_immediate_grant_then_queue(self):
        eng = Engine()
        res = FifoResource(eng, "r")
        order = []
        res.request(lambda: order.append(("a", eng.now)))
        res.request(lambda: order.append(("b", eng.now)))
        assert order == [("a", 0)]  # a granted synchronously, b queued
        eng.at(10, res.release)
        eng.run()
        assert order == [("a", 0), ("b", 10)]

    def test_fifo_order(self):
        eng = Engine()
        res = FifoResource(eng, "r")
        order = []
        for tag in "abcd":
            res.request(lambda t=tag: order.append(t))
        for _ in range(4):
            eng.after(1, res.release)
            eng.run()
        assert order == list("abcd")

    def test_release_idle_raises(self):
        eng = Engine()
        res = FifoResource(eng, "r")
        with pytest.raises(RuntimeError):
            res.release()

    def test_hold_for(self):
        eng = Engine()
        res = FifoResource(eng, "cpu")
        done = []
        res.hold_for(100, lambda: done.append(eng.now))
        res.hold_for(50, lambda: done.append(eng.now))
        eng.run()
        assert done == [100, 150]  # serialized

    def test_queue_length(self):
        eng = Engine()
        res = FifoResource(eng, "r")
        res.request(lambda: None)
        res.request(lambda: None)
        res.request(lambda: None)
        assert res.busy and res.queue_length == 2


class TestThroughputResource:
    def test_single_transfer_time(self):
        eng = Engine()
        bus = ThroughputResource(eng, rate=2.0)
        done = []
        bus.transfer(100, lambda: done.append(eng.now))
        eng.run()
        assert done == [50.0]

    def test_transfers_serialize(self):
        eng = Engine()
        bus = ThroughputResource(eng, rate=2.0)
        done = []
        bus.transfer(100, lambda: done.append(("a", eng.now)))
        bus.transfer(100, lambda: done.append(("b", eng.now)))
        eng.run()
        assert done == [("a", 50.0), ("b", 100.0)]

    def test_idle_gap_not_accumulated(self):
        eng = Engine()
        bus = ThroughputResource(eng, rate=1.0)
        done = []
        bus.transfer(10, lambda: done.append(eng.now))
        eng.at(100, lambda: bus.transfer(10, lambda: done.append(eng.now)))
        eng.run()
        assert done == [10.0, 110.0]

    def test_invalid_args(self):
        eng = Engine()
        with pytest.raises(ValueError):
            ThroughputResource(eng, rate=0)
        bus = ThroughputResource(eng, rate=1.0)
        with pytest.raises(ValueError):
            bus.transfer(-1, lambda: None)

    def test_counters(self):
        eng = Engine()
        bus = ThroughputResource(eng, rate=1.0)
        bus.transfer(5, lambda: None)
        bus.transfer(7, lambda: None)
        eng.run()
        assert bus.transfers == 2 and bus.flits_moved == 12
