"""Directed battery for the open-loop collective workload engine.

Covers the contracts :mod:`repro.workloads` exists to keep:

* the arrival stream is a pure function of its seed, and schedules at
  different rates share byte-identical op prefixes (the pairing rule's
  stronger cousin: raising the rate extends the stimulus, never reshuffles
  it);
* admissions are open-loop -- the offered schedule is identical for every
  scheme, however badly one of them copes, including deep saturation;
* the deadline boundary (completion exactly at the deadline is *met*) is
  regression-pinned;
* every completed collective notifies each participant exactly once, per
  scheme, under overlapping load;
* a seeded 16-switch broadcast+allreduce mix replays to a pinned golden
  digest, directly, twice, and through the process-pool cell runner;
* degenerate single-participant collectives complete at launch plus one
  host overhead block (and never hang);
* zero-length measurement windows report zero throughput instead of
  dividing by zero.
"""

import json

import pytest

from repro.collectives import ops as collectives
from repro.experiments.runner import Cell, derive_seed, execute_cells, \
    execution_context
from repro.params import SimParams
from repro.sim.network import SimNetwork
from repro.topology.irregular import generate_topology_family
from repro.traffic.load import LoadPoint
from repro.workloads import (
    COLLECTIVE_KINDS,
    OpRecord,
    WorkloadReport,
    arrival_schedule,
    run_workload,
    run_workload_cell,
    schedule_digest,
)

SMALL = SimParams(num_switches=4, num_nodes=8, packet_flits=16)
"""A fast fabric for workload runs that only check accounting invariants."""

GOLDEN_PARAMS = SimParams(num_switches=16, num_nodes=16, packet_flits=16)
"""The golden-digest system: 16 switches, one host each."""

GOLDEN_DIGEST = (
    "9761f020f337e53bdd2db282605eff24ac857285c175c156a9b1e3ca893a57a7"
)
"""Replay fingerprint of the seeded golden mix below.  A change here means
the workload engine's observable behaviour changed -- schedule, completion
times, deadline verdicts, or delivery counts -- and must be intentional."""


def _small_topo():
    return generate_topology_family(SMALL, 1)[0]


# ----------------------------------------------------------------------
# Arrival stream
# ----------------------------------------------------------------------
class TestArrivalStream:
    def test_same_seed_same_schedule(self):
        a = arrival_schedule(7, rate=0.001, duration=30_000, num_nodes=16)
        b = arrival_schedule(7, rate=0.001, duration=30_000, num_nodes=16)
        assert [op.key() for op in a] == [op.key() for op in b]
        assert schedule_digest(a) == schedule_digest(b)
        assert len(a) > 0

    def test_different_seeds_differ(self):
        a = arrival_schedule(7, rate=0.001, duration=30_000, num_nodes=16)
        b = arrival_schedule(8, rate=0.001, duration=30_000, num_nodes=16)
        assert schedule_digest(a) != schedule_digest(b)

    @pytest.mark.parametrize("process", ["poisson", "mlstep"])
    def test_higher_rate_extends_the_same_prefix(self, process):
        # The unit-rate clock makes the op sequence rate-independent: the
        # low-rate schedule is byte-for-byte a prefix of the high-rate one
        # (in (index, unit_time, kind, root); scaled times differ by 1/rate).
        low = arrival_schedule(
            11, rate=0.0005, duration=20_000, num_nodes=16, process=process
        )
        high = arrival_schedule(
            11, rate=0.002, duration=20_000, num_nodes=16, process=process
        )
        assert 0 < len(low) < len(high)
        assert [op.key() for op in low] == \
            [op.key() for op in high][:len(low)]

    def test_draws_stay_in_range(self):
        ops = arrival_schedule(3, rate=0.002, duration=30_000, num_nodes=5)
        assert ops, "expected a non-empty schedule"
        for op in ops:
            assert op.kind in COLLECTIVE_KINDS
            assert 0 <= op.root < 5
            assert 0.0 <= op.time < 30_000

    def test_processes_differ(self):
        poisson = arrival_schedule(
            5, rate=0.001, duration=30_000, num_nodes=8, process="poisson"
        )
        mlstep = arrival_schedule(
            5, rate=0.001, duration=30_000, num_nodes=8, process="mlstep"
        )
        assert schedule_digest(poisson) != schedule_digest(mlstep)

    @pytest.mark.parametrize(
        "kw",
        [
            {"rate": 0.0},
            {"rate": -1.0},
            {"duration": 0.0},
            {"num_nodes": 0},
            {"kinds": ()},
            {"kinds": ("broadcast", "nonsense")},
            {"process": "lognormal"},
        ],
    )
    def test_invalid_inputs_rejected(self, kw):
        args = dict(rate=0.001, duration=10_000, num_nodes=8)
        args.update(kw)
        with pytest.raises((ValueError, KeyError)):
            arrival_schedule(1, **args)


# ----------------------------------------------------------------------
# Open-loop admission invariant
# ----------------------------------------------------------------------
class TestOpenLoop:
    def test_admissions_are_scheme_independent(self):
        topo = _small_topo()
        reports = [
            run_workload(
                topo, SMALL, scheme, seed=21, rate=0.001, duration=8_000,
                warmup=800,
            )
            for scheme in ("ni", "path", "tree")
        ]
        assert len({r.admitted for r in reports}) == 1
        assert len({r.schedule_sha for r in reports}) == 1
        assert reports[0].admitted > 0

    def test_saturation_does_not_throttle_admissions(self):
        # Open-loop means open-loop: a rate brutal enough to saturate the
        # fabric admits exactly as many ops as the schedule says, however
        # few of them ever complete.
        topo = _small_topo()
        schedule = arrival_schedule(
            33, rate=0.005, duration=4_000, num_nodes=SMALL.num_nodes,
            kinds=("broadcast",),
        )
        report = run_workload(
            topo, SMALL, "tree", seed=33, rate=0.005, duration=4_000,
            kinds=("broadcast",),
        )
        assert report.admitted == len(schedule)
        assert report.schedule_sha == schedule_digest(schedule)


# ----------------------------------------------------------------------
# Deadline boundary (regression-pinned contract)
# ----------------------------------------------------------------------
class TestDeadlineBoundary:
    def _rec(self, complete_time, deadline=1000.0):
        return OpRecord(
            index=0, kind="broadcast", root=0, admit_time=0.0,
            deadline=deadline, complete_time=complete_time,
        )

    def test_completion_exactly_at_deadline_is_met(self):
        assert self._rec(1000.0).met_deadline is True

    def test_completion_after_deadline_is_missed(self):
        assert self._rec(1000.0000001).met_deadline is False

    def test_completion_before_deadline_is_met(self):
        assert self._rec(999.9).met_deadline is True

    def test_incomplete_op_is_missed(self):
        assert self._rec(None).met_deadline is False

    def test_no_deadline_means_met_iff_complete(self):
        assert self._rec(123.0, deadline=None).met_deadline is True
        assert self._rec(None, deadline=None).met_deadline is False


# ----------------------------------------------------------------------
# Exactly-once delivery under load
# ----------------------------------------------------------------------
class TestExactlyOnce:
    @pytest.mark.parametrize("scheme", ["ni", "path", "tree", "binomial"])
    def test_delivered_counts_per_scheme(self, scheme):
        topo = _small_topo()
        report = run_workload(
            topo, SMALL, scheme, seed=17, rate=0.0008, duration=10_000,
        )
        n = SMALL.num_nodes
        # The participant-notification count is the exactly-once audit
        # surface: node_times is keyed by node, so a duplicate delivery
        # could only ever *lose* a count, never gain one -- and a lost one
        # fails here.
        want = {"broadcast": n - 1, "allreduce": n - 1, "barrier": n}
        completed = [r for r in report.records if r.complete]
        assert completed, "expected completions at this light load"
        if scheme != "binomial":
            # Binomial's serial unicasts are slow enough that an op can
            # outlive the drain window here; the fast schemes must not.
            assert {r.kind for r in completed} == set(COLLECTIVE_KINDS)
        for rec in completed:
            assert rec.delivered == want[rec.kind], (scheme, rec)


# ----------------------------------------------------------------------
# Golden digest: direct, replayed, and through the process pool
# ----------------------------------------------------------------------
GOLDEN_KW = dict(
    seed=2024, rate=0.0006, duration=12_000, warmup=1_200,
    kinds=("broadcast", "allreduce"),
)


def _golden_run():
    topo = generate_topology_family(GOLDEN_PARAMS, 1)[0]
    return run_workload(topo, GOLDEN_PARAMS, "tree", **GOLDEN_KW)


class TestGoldenDigest:
    def test_matches_pinned_digest(self):
        report = _golden_run()
        assert report.completed > 0
        assert report.digest() == GOLDEN_DIGEST

    def test_replays_identically(self):
        assert _golden_run().digest() == _golden_run().digest()

    def test_cell_runner_agrees(self):
        value = run_workload_cell(
            GOLDEN_PARAMS, "tree", seed=GOLDEN_KW["seed"],
            collective="broadcast+allreduce", rate=GOLDEN_KW["rate"],
            duration=GOLDEN_KW["duration"], warmup=GOLDEN_KW["warmup"],
            process="poisson", deadline_factor=4.0,
        )
        # run_workload_cell applies a deadline budget, which changes only
        # the per-op verdicts -- with no misses at this light load the
        # lifecycle digest must equal the budget-free golden run's.
        assert value["miss_fraction"] == 0.0
        assert value["digest"] == GOLDEN_DIGEST

    def test_process_pool_is_byte_identical(self):
        knobs = (
            ("duration", float(GOLDEN_KW["duration"])),
            ("warmup", float(GOLDEN_KW["warmup"])),
            ("process", "poisson"),
            ("deadline_factor", 4.0),
            ("faults", 0),
        )
        cells = [
            Cell(
                kind="workload",
                exp_id="wl-test",
                params=GOLDEN_PARAMS,
                scheme=scheme,
                coords=(
                    ("collective", "broadcast+allreduce"),
                    ("rate", GOLDEN_KW["rate"]),
                ),
                knobs=knobs,
                seed=GOLDEN_KW["seed"],
            )
            for scheme in ("tree", "ni")
        ]
        with execution_context(jobs=1):
            serial = execute_cells(cells)
        with execution_context(jobs=3):
            parallel = execute_cells(cells)
        assert json.dumps(serial) == json.dumps(parallel)
        assert serial[0]["digest"] == GOLDEN_DIGEST


# ----------------------------------------------------------------------
# Degenerate single-participant collectives
# ----------------------------------------------------------------------
class TestDegenerateCollectives:
    @pytest.mark.parametrize(
        "launch",
        [
            lambda net, done: collectives.broadcast(
                net, 2, "tree", done, participants=[2]
            ),
            lambda net, done: collectives.barrier(
                net, 1, "tree", done, participants=[1]
            ),
            lambda net, done: collectives.allreduce(
                net, 3, "tree", done, participants=[3]
            ),
            lambda net, done: collectives.reduce_to_root(
                net, 0, done, participants=[0]
            ),
        ],
        ids=["broadcast", "barrier", "allreduce", "reduce"],
    )
    def test_completes_at_launch_plus_one_host_block(self, launch):
        net = SimNetwork(_small_topo(), SMALL)
        seen = []
        result = launch(net, seen.append)
        net.run()
        net.assert_quiescent()
        assert result.complete, "degenerate collective must never hang"
        assert result.latency == SMALL.o_host
        assert result.node_times == {result.root: float(SMALL.o_host)}
        assert seen == [result]


# ----------------------------------------------------------------------
# Zero-length measurement windows
# ----------------------------------------------------------------------
class TestZeroWindow:
    def test_load_point_zero_window_reports_zero_throughput(self):
        point = LoadPoint(
            effective_load=0.1, degree=4, mean_latency=None,
            p95_latency=None, issued=0, completed=0, saturated=False,
            warmup_ops=9, measured_window=0.0,
        )
        assert point.throughput == 0.0

    def test_workload_report_zero_window(self):
        report = WorkloadReport(
            scheme="tree", kinds=("broadcast",), process="poisson",
            rate=0.001, duration=100.0, warmup=100.0, deadline_factor=4.0,
            baselines={"broadcast": 1.0}, schedule_sha="0" * 64,
        )
        assert report.measured_window == 0.0
        assert report.throughput == 0.0
        assert report.miss_fraction == 0.0
        assert report.saturated is False

    def test_run_workload_rejects_warmup_eating_the_window(self):
        with pytest.raises(ValueError):
            run_workload(
                _small_topo(), SMALL, "tree", seed=1, rate=0.001,
                duration=1_000, warmup=1_000,
            )


# ----------------------------------------------------------------------
# Committed quick-profile result: shape and the paper's ordering
# ----------------------------------------------------------------------
class TestCommittedResult:
    @pytest.fixture(scope="class")
    def result(self):
        import pathlib

        path = pathlib.Path(__file__).parent.parent / \
            "results" / "collective-load.json"
        return json.loads(path.read_text())

    def test_every_cell_reports_p999_and_saturation_point(self, result):
        assert len(result["series"]) == 18
        for series in result["series"]:
            meta = series["meta"]
            assert "saturation_point" in meta
            for point in meta["points"]:
                assert "p999" in point["latency"]
                assert point["saturated"] in (True, False)
                if not point["saturated"]:
                    assert point["latency"]["p999"] is not None

    def test_tree_strictly_best_at_low_load(self, result):
        # The paper's switch-support headline, carried to collectives
        # under load: at the lowest offered rate the tree scheme's p99 is
        # strictly below ni's and path's on every axis.  (The full
        # tree < ni < path ordering belongs to the paper's degree-4/16
        # multicast grids; whole-machine collectives swap ni and path.)
        by_label = {s["label"]: s for s in result["series"]}
        suffixes = sorted(
            {s["label"].split(" ", 1)[1] for s in result["series"]}
        )
        assert len(suffixes) == 6
        for suffix in suffixes:
            p99 = {
                scheme: by_label[f"{scheme} {suffix}"]["meta"]["points"][0]
                ["latency"]["p99"]
                for scheme in ("ni", "path", "tree")
            }
            assert p99["tree"] < p99["ni"], (suffix, p99)
            assert p99["tree"] < p99["path"], (suffix, p99)

    def test_admissions_paired_across_schemes(self, result):
        # Scheme-independent seeds: every scheme of a grid point was
        # offered the identical schedule.
        by_label = {s["label"]: s for s in result["series"]}
        for suffix in {s["label"].split(" ", 1)[1]
                       for s in result["series"]}:
            counts = {
                tuple(p["admitted"] for p in
                      by_label[f"{scheme} {suffix}"]["meta"]["points"])
                for scheme in ("ni", "path", "tree")
            }
            assert len(counts) == 1, suffix
