"""Tests for topology/result serialization and the extended CLI."""

import json

import pytest

from repro.experiments.base import ExperimentResult, Series
from repro.experiments.cli import main as cli_main
from repro.experiments.io import (
    load_result_json,
    result_from_dict,
    result_to_csv,
    result_to_dict,
    save_result_csv,
    save_result_json,
)
from repro.params import SimParams
from repro.topology.irregular import generate_irregular_topology
from repro.topology.serialization import (
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)


class TestTopologySerialization:
    def test_roundtrip_preserves_structure(self, tmp_path):
        topo = generate_irregular_topology(SimParams(), seed=5)
        path = tmp_path / "topo.json"
        save_topology(topo, path)
        loaded = load_topology(path)
        assert loaded.num_switches == topo.num_switches
        assert loaded.node_attachment == topo.node_attachment
        assert [(l.link_id, l.a, l.b) for l in loaded.links] == [
            (l.link_id, l.a, l.b) for l in topo.links
        ]
        assert loaded.is_connected()

    def test_dict_roundtrip(self):
        topo = generate_irregular_topology(SimParams(), seed=6)
        again = topology_from_dict(topology_to_dict(topo))
        assert again.num_nodes == topo.num_nodes

    def test_bad_format_version(self):
        with pytest.raises(ValueError, match="format"):
            topology_from_dict({"format": 99})

    def test_non_dense_nodes_rejected(self):
        topo = generate_irregular_topology(SimParams(), seed=6)
        data = topology_to_dict(topo)
        data["nodes"][0]["node"] = 999
        with pytest.raises(ValueError, match="dense"):
            topology_from_dict(data)

    def test_loaded_topology_simulates_identically(self, tmp_path):
        import random

        from repro.multicast import make_scheme
        from repro.sim.network import SimNetwork

        topo = generate_irregular_topology(SimParams(), seed=7)
        path = tmp_path / "t.json"
        save_topology(topo, path)
        loaded = load_topology(path)
        dests = random.Random(0).sample(range(1, 32), 9)
        lats = []
        for t in (topo, loaded):
            net = SimNetwork(t, SimParams())
            res = make_scheme("tree").execute(net, 0, dests)
            net.run()
            lats.append(res.latency)
        assert lats[0] == lats[1]


def sample_result() -> ExperimentResult:
    return ExperimentResult(
        exp_id="sample",
        title="sample",
        x_label="x",
        y_label="y",
        series=[
            Series("a", [1.0, 2.0], [10.0, None], meta={"scheme": "tree"}),
            Series("b", [1.0, 2.0], [20.0, 30.0]),
        ],
    )


class TestResultSerialization:
    def test_json_roundtrip(self, tmp_path):
        res = sample_result()
        path = tmp_path / "res.json"
        save_result_json(res, path)
        loaded = load_result_json(path)
        assert loaded.exp_id == "sample"
        assert loaded.curve("a").y == [10.0, None]
        assert loaded.curve("a").meta == {"scheme": "tree"}

    def test_dict_roundtrip(self):
        res = sample_result()
        again = result_from_dict(result_to_dict(res))
        assert [s.label for s in again.series] == ["a", "b"]

    def test_csv_layout(self, tmp_path):
        res = sample_result()
        csv_text = result_to_csv(res)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "exp_id,series,x,y"
        assert len(lines) == 5
        assert "sample,a,2.0," in lines[2]  # saturated = empty cell
        path = tmp_path / "res.csv"
        save_result_csv(res, path)
        assert path.read_text() == csv_text

    def test_saturated_cells_roundtrip(self, tmp_path):
        """None (saturated) y-cells survive JSON byte-exactly and export
        as empty CSV cells -- including an all-saturated curve."""
        res = ExperimentResult(
            exp_id="sat",
            title="sat",
            x_label="load",
            y_label="latency",
            series=[
                Series("dead", [0.1, 0.2], [None, None], meta={"deg": 16}),
                Series("alive", [0.1, 0.2], [12.5, None]),
            ],
        )
        path = tmp_path / "sat.json"
        save_result_json(res, path)
        loaded = load_result_json(path)
        assert loaded.curve("dead").y == [None, None]
        assert loaded.curve("alive").y == [12.5, None]
        # byte-identity through a save/load/save cycle
        save_result_json(loaded, tmp_path / "sat2.json")
        assert (tmp_path / "sat2.json").read_bytes() == path.read_bytes()
        csv_lines = result_to_csv(loaded).strip().splitlines()
        assert csv_lines[1] == "sat,dead,0.1,"
        assert csv_lines[4] == "sat,alive,0.2,"
        # the table renders saturated cells, not crashes
        assert "sat" in loaded.to_table()


class TestCliExtensions:
    def test_run_with_exports(self, tmp_path, capsys):
        rc = cli_main([
            "run", "ablation-fpfs",
            "--json", str(tmp_path / "j"),
            "--csv", str(tmp_path / "c"),
        ])
        assert rc == 0
        data = json.loads((tmp_path / "j" / "ablation-fpfs.json").read_text())
        assert data["exp_id"] == "ablation-fpfs"
        csv_text = (tmp_path / "c" / "ablation-fpfs.csv").read_text()
        assert csv_text.startswith("exp_id,series,x,y")

    def test_topology_subcommand(self, tmp_path, capsys):
        out = tmp_path / "topo.json"
        rc = cli_main(["topology", "--seed", "9", "--save", str(out)])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "diameter" in printed
        loaded = load_topology(out)
        assert loaded.num_nodes == 32
