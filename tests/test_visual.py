"""Tests for the ASCII chart and topology renderers."""

import pytest

from repro.experiments.base import ExperimentResult, Series
from repro.params import SimParams
from repro.topology.irregular import generate_irregular_topology
from repro.visual.ascii import ascii_xy_chart, render_experiment
from repro.visual.topology_art import render_topology
from tests.topo_fixtures import make_line


def result_with(series):
    return ExperimentResult("e", "title", "load", "latency", series)


class TestAsciiChart:
    def test_basic_render_contains_glyphs_and_axis(self):
        chart = ascii_xy_chart(
            [
                Series("tree", [0.1, 0.2], [100.0, 200.0]),
                Series("path", [0.1, 0.2], [150.0, 400.0]),
            ]
        )
        assert "a=tree" in chart and "b=path" in chart
        assert "400" in chart and "100" in chart

    def test_min_on_bottom_max_on_top(self):
        chart = ascii_xy_chart([Series("s", [1.0, 2.0], [5.0, 50.0])])
        lines = chart.splitlines()
        top_rows = [ln for ln in lines if "a" in ln and "|" in ln]
        assert top_rows  # both points plotted
        # point with max y appears above point with min y
        first_a = next(i for i, ln in enumerate(lines) if "a" in ln and "|" in ln)
        last_a = max(i for i, ln in enumerate(lines) if "a" in ln and "|" in ln)
        assert first_a < last_a

    def test_saturated_marker(self):
        chart = ascii_xy_chart([Series("s", [1.0, 2.0], [5.0, None])])
        assert "^" in chart
        assert "saturated" in chart

    def test_flat_series_does_not_divide_by_zero(self):
        chart = ascii_xy_chart([Series("s", [1.0, 2.0], [7.0, 7.0])])
        assert chart.count("a") >= 2

    def test_errors(self):
        with pytest.raises(ValueError, match="no series"):
            ascii_xy_chart([])
        with pytest.raises(ValueError, match="same x"):
            ascii_xy_chart(
                [Series("a", [1.0], [1.0]), Series("b", [2.0], [1.0])]
            )
        with pytest.raises(ValueError, match="measurable"):
            ascii_xy_chart([Series("a", [1.0], [None])])


class TestRenderExperiment:
    def test_filter_by_substring(self):
        res = result_with(
            [
                Series("R=2/4-way/tree", [0.1], [10.0]),
                Series("R=2/16-way/tree", [0.1], [20.0]),
            ]
        )
        out = render_experiment(res, select="16-way")
        assert "16-way" in out
        assert "4-way/tree\n" not in out

    def test_no_match_raises(self):
        res = result_with([Series("a", [1.0], [1.0])])
        with pytest.raises(ValueError, match="no series match"):
            render_experiment(res, select="zzz")

    def test_mismatched_x_skipped_with_note(self):
        res = result_with(
            [
                Series("a", [1.0, 2.0], [1.0, 2.0]),
                Series("b", [1.0], [1.0]),
            ]
        )
        out = render_experiment(res)
        assert "skipped mismatched-x series: b" in out


class TestTopologyArt:
    def test_line_renders_levels(self):
        out = render_topology(make_line(3))
        assert "level 0:" in out and "level 2:" in out
        assert "sw0" in out and "hosts 0" in out

    def test_random_topology_mentions_all_switches(self):
        topo = generate_irregular_topology(SimParams(), seed=3)
        out = render_topology(topo)
        for s in range(topo.num_switches):
            assert f"sw{s} " in out or f"sw{s}\n" in out or f"sw{s}" in out

    def test_up_down_annotations_present(self):
        out = render_topology(make_line(3))
        assert "up->" in out and "down->" in out
