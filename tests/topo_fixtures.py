"""Hand-built topologies shared across the test-suite."""

from repro.topology.graph import NetworkTopology, PortRef, SwitchLink


def make_line(n_switches: int = 3, hosts_per_switch: int = 1,
              ports: int = 8) -> NetworkTopology:
    """sw0 - sw1 - ... with ``hosts_per_switch`` hosts on each switch.

    Node numbering: node (s * hosts_per_switch + i) is host i of switch s.
    """
    links = []
    port_cursor = [hosts_per_switch] * n_switches
    for i in range(n_switches - 1):
        a = PortRef(i, port_cursor[i])
        port_cursor[i] += 1
        b = PortRef(i + 1, port_cursor[i + 1])
        port_cursor[i + 1] += 1
        links.append(SwitchLink(i, a, b))
    attach = [
        PortRef(s, i)
        for s in range(n_switches)
        for i in range(hosts_per_switch)
    ]
    return NetworkTopology(n_switches, ports, attach, links)


def make_diamond(hosts_per_switch: int = 1) -> NetworkTopology:
    """sw0 / (sw1, sw2) / sw3 diamond with hosts on every switch."""
    h = hosts_per_switch
    links = [
        SwitchLink(0, PortRef(0, h), PortRef(1, h)),
        SwitchLink(1, PortRef(0, h + 1), PortRef(2, h)),
        SwitchLink(2, PortRef(1, h + 1), PortRef(3, h)),
        SwitchLink(3, PortRef(2, h + 1), PortRef(3, h + 1)),
    ]
    attach = [PortRef(s, i) for s in range(4) for i in range(h)]
    return NetworkTopology(4, 8, attach, links)


def make_chorded_diamond(hosts_per_switch: int = 2) -> NetworkTopology:
    """The diamond plus a sw0-sw3 chord: two independent cycles.

    Any single link is removable, and after losing the chord (link 4) the
    remaining 4-cycle still tolerates one more failure -- the smallest
    fixture on which *two* runtime faults can fire in sequence.
    """
    h = hosts_per_switch
    links = [
        SwitchLink(0, PortRef(0, h), PortRef(1, h)),
        SwitchLink(1, PortRef(0, h + 1), PortRef(2, h)),
        SwitchLink(2, PortRef(1, h + 1), PortRef(3, h)),
        SwitchLink(3, PortRef(2, h + 1), PortRef(3, h + 1)),
        SwitchLink(4, PortRef(0, h + 2), PortRef(3, h + 2)),
    ]
    attach = [PortRef(s, i) for s in range(4) for i in range(h)]
    return NetworkTopology(4, 8, attach, links)


def make_star(n_leaf_switches: int = 4, hosts_per_switch: int = 2,
              ports: int = 8) -> NetworkTopology:
    """Hub switch 0 with leaf switches 1..k, hosts on every switch."""
    h = hosts_per_switch
    links = [
        SwitchLink(i - 1, PortRef(0, h + i - 1), PortRef(i, h))
        for i in range(1, n_leaf_switches + 1)
    ]
    attach = [
        PortRef(s, i)
        for s in range(n_leaf_switches + 1)
        for i in range(h)
    ]
    return NetworkTopology(n_leaf_switches + 1, ports, attach, links)

