"""Unit tests for SimParams validation, the fabric wiring, and host
primitives."""

import pytest

from repro.params import DEFAULT_PARAMS, SimParams
from repro.sim.fabric import UNBOUNDED_BUFFER, Fabric
from repro.sim.engine import Engine
from repro.sim.network import SimNetwork
from repro.topology.irregular import generate_irregular_topology
from tests.topo_fixtures import make_line


class TestSimParams:
    def test_defaults_valid(self):
        DEFAULT_PARAMS.validate()

    def test_o_ni_derivation(self):
        assert SimParams(o_host=1000, ratio_r=2.0).o_ni == 500
        assert SimParams(o_host=1000, ratio_r=0.5).o_ni == 2000
        assert SimParams(o_host=1, ratio_r=1000).o_ni == 1  # floor at 1

    def test_message_flits(self):
        assert SimParams(packet_flits=128, message_packets=4).message_flits == 512

    def test_replace_returns_new_frozen_instance(self):
        p = SimParams()
        q = p.replace(ratio_r=4.0)
        assert q.ratio_r == 4.0 and p.ratio_r == 2.0
        with pytest.raises(Exception):
            p.ratio_r = 9.0  # frozen

    @pytest.mark.parametrize(
        "kw",
        [
            {"num_nodes": 1},
            {"num_switches": 0},
            {"ports_per_switch": 1},
            {"num_nodes": 64, "num_switches": 2, "ports_per_switch": 8},
            {"packet_flits": 1},
            {"message_packets": 0},
            {"o_host": -1},
            {"o_ni_per_packet": -1},
            {"ratio_r": 0},
            {"io_bus_flits_per_cycle": 0},
            {"link_delay": -1},
            {"input_buffer_flits": 0},
            {"routing_tree": "xyz"},
        ],
    )
    def test_validate_rejects(self, kw):
        with pytest.raises(ValueError):
            SimParams(**kw).validate()

    def test_params_hashable(self):
        assert len({SimParams(), SimParams(), SimParams(ratio_r=4.0)}) == 2


class TestFabric:
    def test_channel_counts(self):
        topo = generate_irregular_topology(SimParams(), seed=3)
        fab = Fabric(Engine(), topo, SimParams())
        assert len(fab.inject) == 32
        assert len(fab.deliver) == 32
        assert len(fab.forward) == 2 * len(topo.links)
        assert len(fab.all_channels()) == 64 + 2 * len(topo.links)

    def test_channel_delays_and_buffers(self):
        p = SimParams(link_delay=2, switch_delay=3, input_buffer_flits=40)
        topo = make_line(3)
        fab = Fabric(Engine(), topo, p)
        assert fab.inject[0].delay == 2
        assert fab.inject[0].downstream_buffer == 40
        fwd = fab.forward_channel(topo.links[0], 0)
        assert fwd.delay == 5  # crossbar + link
        assert fab.deliver[2].downstream_buffer == UNBOUNDED_BUFFER

    def test_forward_channel_directionality(self):
        topo = make_line(2)
        fab = Fabric(Engine(), topo, SimParams())
        lk = topo.links[0]
        a_to_b = fab.forward_channel(lk, 0)
        b_to_a = fab.forward_channel(lk, 1)
        assert a_to_b is not b_to_a
        assert a_to_b.to_switch == 1 and b_to_a.to_switch == 0

    def test_flit_accounting_starts_zero(self):
        topo = make_line(2)
        fab = Fabric(Engine(), topo, SimParams())
        assert fab.total_flits_carried() == 0


class TestHostPrimitives:
    def test_cpu_and_ni_serialize_independently(self):
        net = SimNetwork(make_line(2), SimParams())
        h = net.hosts[0]
        order = []
        h.cpu_task(lambda: order.append(("cpu", net.engine.now)))
        h.ni_task(lambda: order.append(("ni", net.engine.now)))
        net.run()
        times = dict(order)
        assert times["cpu"] == net.params.o_host
        assert times["ni"] == net.params.o_ni  # parallel with the CPU block

    def test_dma_uses_bus_rate(self):
        net = SimNetwork(make_line(2), SimParams())
        done = []
        net.hosts[0].dma(266, lambda: done.append(net.engine.now))
        net.run()
        assert done == [pytest.approx(100.0)]

    def test_network_quiescence_check_detects_busy(self):
        net = SimNetwork(make_line(2), SimParams())
        net.hosts[0].cpu.request(lambda: None)  # acquire, never release
        with pytest.raises(AssertionError, match="not quiescent"):
            net.assert_quiescent()

    def test_each_host_has_own_resources(self):
        net = SimNetwork(make_line(3), SimParams())
        assert net.hosts[0].cpu is not net.hosts[1].cpu
        assert net.hosts[0].bus is not net.hosts[1].bus
