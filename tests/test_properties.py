"""Property-based tests (hypothesis) on core data structures and invariants."""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.metrics.stats import percentile, summarize
from repro.multicast import make_scheme
from repro.multicast.binomial import build_binomial_tree, tree_depth_in_steps
from repro.multicast.kbinomial import build_k_binomial_tree
from repro.multicast.pathworm import plan_path_worms
from repro.multicast.treeworm import plan_tree_worm
from repro.params import SimParams
from repro.routing.deadlock import verify_escape_deadlock_free
from repro.routing.paths import is_legal_path, shortest_path_links
from repro.routing.reachability import decode_mask, header_mask
from repro.routing.updown import Phase, UpDownRouting
from repro.sim.engine import Engine
from repro.sim.network import SimNetwork
from repro.topology import faults
from repro.topology.irregular import generate_irregular_topology

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
dims = st.tuples(
    st.integers(min_value=2, max_value=12),   # switches
    st.integers(min_value=4, max_value=24),   # nodes
    st.integers(min_value=0, max_value=10_000),  # seed
).filter(lambda t: t[1] <= t[0] * 7 - 2 * (t[0] - 1))

# (dims, link failures to attempt) -- the degraded-system strategy: every
# invariant that holds on freshly generated topologies must survive
# reconfiguration around failed links (the paper's fault-resilience claim).
degraded_dims = st.tuples(dims, st.integers(min_value=0, max_value=3))


def build_topo(switches, nodes, seed):
    params = SimParams(num_switches=switches, num_nodes=nodes)
    return generate_irregular_topology(params, seed=seed), params


def build_degraded_topo(d, n_failures):
    """Topology with up to ``n_failures`` random links failed.

    Falls back to fewer failures when the draw cannot absorb them while
    staying connected (pure-tree topologies have no removable link at all).
    """
    topo, params = build_topo(*d)
    rng = random.Random(d[2])
    for attempt_failures in range(n_failures, 0, -1):
        try:
            degraded, failed = faults.degrade(topo, attempt_failures, rng=rng)
        except ValueError:
            continue
        return degraded, params, failed
    return topo, params, []


# ----------------------------------------------------------------------
# Topology and routing invariants
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(dims)
def test_generated_topologies_are_connected_and_within_budget(d):
    topo, _ = build_topo(*d)
    assert topo.is_connected()
    for s in range(topo.num_switches):
        assert topo.free_ports(s) >= 0


@settings(max_examples=20, deadline=None)
@given(dims)
def test_updown_up_links_form_dag_and_all_pairs_route(d):
    topo, _ = build_topo(*d)
    rt = UpDownRouting.build(topo)
    # topological order exists over up edges
    indeg = {s: 0 for s in range(topo.num_switches)}
    for lk in topo.links:
        indeg[rt.up_end_switch(lk)] += 1
    order = [s for s, deg in indeg.items() if deg == 0]
    seen = 0
    work = list(order)
    while work:
        s = work.pop()
        seen += 1
        for lk in topo.links_of(s):
            up = rt.up_end_switch(lk)
            if up != s:
                indeg[up] -= 1
                if indeg[up] == 0:
                    work.append(up)
    assert seen == topo.num_switches
    for a in range(topo.num_switches):
        for b in range(topo.num_switches):
            assert rt.reachable(a, Phase.UP, b)
            p = shortest_path_links(rt, a, b)
            assert is_legal_path(rt, a, p)
            assert len(p) == rt.distance(a, b)


@settings(max_examples=20, deadline=None)
@given(dims)
def test_reachability_subset_and_root_totality(d):
    topo, _ = build_topo(*d)
    rt = UpDownRouting.build(topo)
    from repro.routing.reachability import ReachabilityTable

    reach = ReachabilityTable.build(rt)
    assert reach.down_reach(rt.tree.root) == frozenset(range(topo.num_nodes))
    for s in range(topo.num_switches):
        local = set(topo.nodes_on_switch(s))
        assert local <= reach.down_reach(s)
        for lk in rt.down_links_of(s):
            assert reach.port_reach(s, lk) <= reach.down_reach(s)


@settings(max_examples=50, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=63)))
def test_header_mask_roundtrip(dests):
    assert decode_mask(header_mask(dests)) == frozenset(dests)


# ----------------------------------------------------------------------
# Multicast plan invariants
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=40))
def test_binomial_depth_bound(n):
    members = list(range(n))
    tree = build_binomial_tree(members)
    expected = math.ceil(math.log2(n)) if n > 1 else 0
    assert tree_depth_in_steps(tree, 0) == expected


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=1, max_value=10),
)
def test_k_binomial_covers_once_with_bounded_fanout(n, k):
    members = list(range(n))
    tree = build_k_binomial_tree(members, k)
    seen = set()
    stack = [0]
    while stack:
        node = stack.pop()
        assert node not in seen
        seen.add(node)
        assert len(tree[node]) <= k
        stack.extend(tree[node])
    assert seen == set(members)


@settings(max_examples=15, deadline=None)
@given(dims, st.data())
def test_tree_worm_turn_always_covers(d, data):
    topo, params = build_topo(*d)
    net = SimNetwork(topo, params)
    n = topo.num_nodes
    size = data.draw(st.integers(min_value=1, max_value=n - 1))
    dests = data.draw(
        st.lists(
            st.integers(min_value=1, max_value=n - 1),
            min_size=size,
            max_size=size,
            unique=True,
        )
    )
    plan = plan_tree_worm(net, topo.switch_of_node(0), dests)
    assert net.reach.covers(plan.turn_switch, set(dests))


@settings(max_examples=15, deadline=None)
@given(dims, st.data())
def test_path_worm_plan_partitions_destinations(d, data):
    topo, params = build_topo(*d)
    net = SimNetwork(topo, params)
    n = topo.num_nodes
    size = data.draw(st.integers(min_value=1, max_value=n - 1))
    dests = data.draw(
        st.lists(
            st.integers(min_value=1, max_value=n - 1),
            min_size=size,
            max_size=size,
            unique=True,
        )
    )
    plan = plan_path_worms(net, 0, dests)
    covered = [x for w in plan.worms for x in w.covered]
    assert sorted(covered) == sorted(dests)  # partition: no dup, no miss
    for w in plan.worms:
        assert is_legal_path(net.routing, w.switch_path[0], list(w.links))


# ----------------------------------------------------------------------
# Fault-model invariants
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(dims)
def test_removable_link_removal_never_disconnects(d):
    topo, _ = build_topo(*d)
    # Chain removals to exhaustion: at every step, removing any link that
    # removable_links() nominated must leave the fabric connected.
    current = topo
    removed = 0
    while True:
        candidates = faults.removable_links(current)
        if not candidates:
            break
        current = faults.remove_link(current, min(candidates))
        removed += 1
        assert current.is_connected()
        assert len(current.links) == len(topo.links) - removed
    # Fixpoint reached: the survivor is a spanning tree over the switches.
    assert len(current.links) == current.num_switches - 1


# ----------------------------------------------------------------------
# End-to-end: every scheme delivers exactly once, regardless of topology
# -- including topologies reconfigured around failed links
# ----------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(degraded_dims, st.sampled_from(["binomial", "ni", "tree", "path"]),
       st.data())
def test_schemes_deliver_exactly_once_on_random_systems(dd, scheme_name, data):
    d, n_failures = dd
    topo, params, _failed = build_degraded_topo(d, n_failures)
    net = SimNetwork(topo, params)
    n = topo.num_nodes
    source = data.draw(st.integers(min_value=0, max_value=n - 1))
    pool = [x for x in range(n) if x != source]
    size = data.draw(st.integers(min_value=1, max_value=len(pool)))
    rng = random.Random(data.draw(st.integers(0, 10_000)))
    dests = rng.sample(pool, size)
    res = make_scheme(scheme_name).execute(net, source, dests)
    net.run()
    assert res.complete
    assert set(res.delivery_times) == set(dests)
    net.assert_quiescent()


# ----------------------------------------------------------------------
# Virtual-channel invariants: the escape lane's CDG is acyclic on every
# topology we can generate (degraded or not), and adaptive-lane routing
# never breaks exactly-once delivery
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(degraded_dims)
def test_escape_lane_cdg_acyclic_on_random_degraded_topologies(dd):
    d, n_failures = dd
    topo, _params, _failed = build_degraded_topo(d, n_failures)
    verify_escape_deadlock_free(topo, UpDownRouting.build(topo), vc_count=2)


@settings(max_examples=10, deadline=None)
@given(degraded_dims, st.sampled_from(["binomial", "ni", "tree", "path"]),
       st.data())
def test_schemes_deliver_exactly_once_under_adaptive_lanes(dd, scheme_name,
                                                           data):
    # The adaptive-lane twin of the exactly-once property above: escape
    # routing may shortcut off the deterministic up*/down* path whenever a
    # non-escape lane is free, and must still cover every destination
    # exactly once and release every lane it touched.
    d, n_failures = dd
    topo, params, _failed = build_degraded_topo(d, n_failures)
    params = params.replace(vc_count=2, vc_routing="escape")
    net = SimNetwork(topo, params)
    n = topo.num_nodes
    source = data.draw(st.integers(min_value=0, max_value=n - 1))
    pool = [x for x in range(n) if x != source]
    size = data.draw(st.integers(min_value=1, max_value=len(pool)))
    rng = random.Random(data.draw(st.integers(0, 10_000)))
    dests = rng.sample(pool, size)
    res = make_scheme(scheme_name).execute(net, source, dests)
    net.run()
    assert res.complete
    assert set(res.delivery_times) == set(dests)
    net.assert_quiescent()
    for ch in net.fabric.all_channels():
        assert ch.owned_lanes == 0, ch.name
        assert ch.grants == ch.releases, ch.name


# ----------------------------------------------------------------------
# Engine and stats invariants
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
def test_engine_fires_in_nondecreasing_time_order(times):
    eng = Engine()
    fired = []
    for t in times:
        eng.at(t, lambda t=t: fired.append(eng.now))
    eng.run()
    assert fired == sorted(fired)
    assert len(fired) == len(times)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(min_value=-1e9, max_value=1e9,
                       allow_nan=False), min_size=1, max_size=100),
    st.floats(min_value=0, max_value=100),
)
def test_percentile_bounded_by_extremes(xs, q):
    p = percentile(xs, q)
    assert min(xs) <= p <= max(xs)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=60))
def test_summary_internally_consistent(xs):
    s = summarize(xs)
    eps = 1e-9 * max(1.0, abs(s.min), abs(s.max))  # float summation slack
    assert s.min - eps <= s.p50 <= s.max + eps
    assert s.min - eps <= s.mean <= s.max + eps
    assert s.std >= 0
    assert s.count == len(xs)


# ----------------------------------------------------------------------
# Workload-layer invariants: the quantile digest agrees with the stdlib,
# allreduce can never beat its own legs, and a barrier completes exactly
# when its last participant has launched
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        # Small integer-valued pools force heavy ties, the interpolation
        # hazard case; mixing in raw floats covers the generic one.
        st.one_of(
            st.integers(min_value=0, max_value=8).map(float),
            st.floats(min_value=-1e6, max_value=1e6),
        ),
        min_size=1, max_size=80,
    ),
)
def test_quantile_digest_matches_stdlib_inclusive(xs):
    import statistics

    from repro.metrics.quantiles import QuantileDigest

    digest = QuantileDigest()
    for x in xs:
        digest.add(x)
    assert digest.count == len(xs)
    if len(xs) == 1:
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert digest.quantile(q) == xs[0]
        return
    cuts = statistics.quantiles(xs, n=20, method="inclusive")
    for k, want in enumerate(cuts, start=1):
        got = digest.quantile(k / 20)
        assert math.isclose(got, want, rel_tol=1e-12, abs_tol=1e-9), (
            k, got, want
        )
    assert digest.quantile(0.0) == min(xs)
    assert digest.quantile(1.0) == max(xs)


@settings(max_examples=8, deadline=None)
@given(dims, st.sampled_from(["ni", "tree", "path"]), st.data())
def test_allreduce_at_least_as_slow_as_each_leg(d, scheme_name, data):
    from repro.collectives import ops as collectives

    topo, params = build_topo(*d)
    root = data.draw(st.integers(min_value=0, max_value=topo.num_nodes - 1))

    def run_isolated(launch):
        net = SimNetwork(topo, params)
        res = launch(net)
        net.run()
        assert res.complete
        return res.latency

    reduce_leg = run_isolated(
        lambda net: collectives.reduce_to_root(net, root)
    )
    bcast_leg = run_isolated(
        lambda net: collectives.broadcast(net, root, scheme_name)
    )
    allreduce = run_isolated(
        lambda net: collectives.allreduce(net, root, scheme_name)
    )
    # The reduce and the broadcast sit on allreduce's critical path back to
    # back; whatever contention does, it cannot make the composition beat
    # either leg run alone on an idle network.
    assert allreduce >= max(reduce_leg, bcast_leg), (
        allreduce, reduce_leg, bcast_leg
    )


@settings(max_examples=10, deadline=None)
@given(dims, st.data())
def test_barrier_completes_iff_all_participants_launched(d, data):
    from repro.collectives import ops as collectives

    topo, params = build_topo(*d)
    n = topo.num_nodes
    root = data.draw(st.integers(min_value=0, max_value=n - 1))
    others = [x for x in range(n) if x != root]
    straggler = data.draw(st.sampled_from(others))
    horizon = 200_000.0
    arrivals = {straggler: horizon * 2}

    # One participant arrives beyond the horizon: the barrier must still be
    # open when the engine has drained everything up to the horizon.
    net = SimNetwork(topo, params)
    res = collectives.barrier(net, root, "tree", arrivals=arrivals)
    net.engine.run(until=horizon)
    assert not res.complete, "barrier released before every arrival"

    # ... and once the straggler's token is in, it must release for all.
    net.engine.run()
    assert res.complete
    assert set(res.node_times) == set(range(n))
    assert res.complete_time >= horizon * 2
    net.assert_quiescent()
