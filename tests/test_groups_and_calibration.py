"""Tests for multicast group management and the tornado analysis."""

import pytest

from repro.collectives.groups import GroupManager, MulticastGroup
from repro.experiments.calibration import (
    TornadoBar,
    render_tornado,
    tornado_analysis,
)
from repro.params import SimParams
from repro.sim.network import SimNetwork
from repro.topology.irregular import generate_irregular_topology


def default_net(seed=3, **kw) -> SimNetwork:
    p = SimParams(**kw)
    return SimNetwork(generate_irregular_topology(p, seed=seed), p)


class TestGroupLifecycle:
    def test_create_send_complete(self):
        net = default_net()
        mgr = GroupManager(net)
        g = mgr.create(0, [3, 9, 17])
        res = g.send()
        net.run()
        assert res.complete
        assert set(res.delivery_times) == {3, 9, 17}
        assert g.sends == 1

    def test_repeated_sends_reuse_plan_cache(self):
        net = default_net()
        g = GroupManager(net).create(0, [3, 9, 17], scheme_name="path")
        r1 = g.send()
        net.run()
        cache_size = len(g.scheme._plan_cache)
        r2 = g.send()
        net.run()
        assert len(g.scheme._plan_cache) == cache_size  # no re-planning
        assert r1.latency == r2.latency

    def test_join_changes_membership_and_invalidates(self):
        net = default_net()
        mgr = GroupManager(net)
        g = mgr.create(0, [3, 9])
        other = mgr.create(0, [4, 8])
        g.send()
        other.send()
        net.run()
        per_net = g.scheme._plan_cache[net]
        entries_before = len(per_net)
        assert entries_before > 0
        g.join(21)
        # Keyed invalidation: only this group's entries are discarded; the
        # other group's cached plans (and any shared entries) survive.
        assert not any(
            len(sk) >= 2 and sk[1] == 0 and
            all(set(part) <= {3, 9}
                for part in sk[2:] if isinstance(part, tuple))
            for _epoch, sk in per_net
        )
        assert len(per_net) > 0
        assert len(per_net) < entries_before
        assert g.members == frozenset({3, 9, 21})
        res = g.send()
        net.run()
        assert set(res.delivery_times) == {3, 9, 21}
        res_other = other.send()
        net.run()
        assert set(res_other.delivery_times) == {4, 8}

    def test_leave(self):
        net = default_net()
        g = GroupManager(net).create(0, [3, 9])
        g.leave(3)
        assert g.members == frozenset({9})
        with pytest.raises(ValueError, match="last member"):
            g.leave(9)

    def test_membership_validation(self):
        net = default_net()
        mgr = GroupManager(net)
        with pytest.raises(ValueError):
            mgr.create(0, [])
        with pytest.raises(ValueError):
            mgr.create(0, [0, 1])
        with pytest.raises(ValueError):
            mgr.create(0, [99])
        g = mgr.create(0, [5])
        with pytest.raises(ValueError):
            g.join(5)
        with pytest.raises(ValueError):
            g.join(0)
        with pytest.raises(ValueError):
            g.leave(7)

    def test_manager_registry(self):
        net = default_net()
        mgr = GroupManager(net)
        g1 = mgr.create(0, [1])
        g2 = mgr.create(5, [6, 7], scheme_name="ni")
        assert len(mgr) == 2
        assert mgr.get(g1.group_id) is g1
        mgr.destroy(g1.group_id)
        assert len(mgr) == 1
        with pytest.raises(ValueError):
            mgr.get(g1.group_id)
        with pytest.raises(ValueError):
            mgr.destroy(g1.group_id)
        assert mgr.get(g2.group_id).scheme.name == "ni"

    def test_per_group_scheme_choice(self):
        net = default_net()
        mgr = GroupManager(net, default_scheme="binomial")
        g = mgr.create(0, [4, 8])
        assert g.scheme.name == "binomial"


class TestTornado:
    def test_bars_sorted_and_positive(self):
        bars = tornado_analysis(
            n_topologies=1, trials=1, group_size=8,
            schemes=("tree",),
        )
        swings = [b.swing for b in bars]
        assert swings == sorted(swings, reverse=True)
        assert all(b.base_latency > 0 for b in bars)

    def test_o_host_dominates(self):
        bars = tornado_analysis(
            n_topologies=1, trials=1, group_size=8, schemes=("tree",)
        )
        assert bars[0].parameter in ("o_host", "ratio_r")

    def test_r_matters_most_to_ni(self):
        bars = tornado_analysis(
            n_topologies=1, trials=1, group_size=16,
            schemes=("ni", "tree"),
        )
        r_bars = {b.scheme: b.swing for b in bars if b.parameter == "ratio_r"}
        assert r_bars["ni"] > r_bars["tree"]

    def test_render(self):
        bars = [
            TornadoBar("o_host", "tree", 100.0, 60.0, 190.0),
            TornadoBar("link_delay", "tree", 100.0, 99.0, 103.0),
        ]
        out = render_tornado(bars)
        assert "o_host" in out and "#" in out
        assert render_tornado([]) == "(no sensitivity bars)"
