"""Tests for topology analysis and the CDG deadlock-freedom verifier."""

import pytest

from repro.params import SimParams
from repro.routing.deadlock import (
    DeadlockCycleError,
    build_channel_dependency_graph,
    build_unrestricted_cdg,
    find_cycle,
    verify_deadlock_free,
)
from repro.routing.updown import UpDownRouting
from repro.topology.analysis import analyze, switch_distances
from repro.topology.graph import NetworkTopology, PortRef, SwitchLink
from repro.topology.irregular import generate_irregular_topology
from tests.topo_fixtures import make_diamond, make_line


class TestAnalysis:
    def test_line_stats(self):
        stats = analyze(make_line(4))
        assert stats.diameter == 3
        assert stats.num_links == 3
        assert stats.min_degree == 1 and stats.max_degree == 2
        assert stats.nodes_per_switch_min == stats.nodes_per_switch_max == 1
        assert stats.multi_link_pairs == 0

    def test_switch_distances(self):
        topo = make_diamond()
        d = switch_distances(topo, 0)
        assert d == [0, 1, 1, 2]

    def test_multi_link_detection(self):
        topo = NetworkTopology(
            2,
            4,
            [],
            [
                SwitchLink(0, PortRef(0, 0), PortRef(1, 0)),
                SwitchLink(1, PortRef(0, 1), PortRef(1, 1)),
            ],
        )
        assert analyze(topo).multi_link_pairs == 1

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            analyze(NetworkTopology(2, 4, [], []))

    def test_generated_topology_stats_sane(self):
        p = SimParams()
        topo = generate_irregular_topology(p, seed=3)
        stats = analyze(topo)
        assert stats.num_switches == 8 and stats.num_nodes == 32
        assert 1 <= stats.diameter <= 7
        assert 0 < stats.mean_switch_distance <= stats.diameter


class TestDeadlockVerifier:
    def test_updown_is_deadlock_free_on_random_topologies(self):
        for seed in range(6):
            topo = generate_irregular_topology(SimParams(), seed=seed)
            rt = UpDownRouting.build(topo)
            verify_deadlock_free(topo, rt)  # must not raise

    def test_updown_cdg_is_acyclic_on_cyclic_topology(self):
        topo = make_diamond()  # contains the cycle 0-1-3-2-0
        rt = UpDownRouting.build(topo)
        deps = build_channel_dependency_graph(topo, rt)
        assert find_cycle(deps) is None

    def test_unrestricted_routing_deadlocks_on_cycles(self):
        # Negative control: shortest-path routing without the up/down rule
        # has a cyclic CDG on a ring.
        links = [
            SwitchLink(0, PortRef(0, 1), PortRef(1, 1)),
            SwitchLink(1, PortRef(1, 2), PortRef(2, 1)),
            SwitchLink(2, PortRef(2, 2), PortRef(3, 1)),
            SwitchLink(3, PortRef(3, 2), PortRef(0, 2)),
        ]
        ring = NetworkTopology(
            4, 4, [PortRef(s, 0) for s in range(4)], links
        )
        deps = build_unrestricted_cdg(ring)
        assert find_cycle(deps) is not None
        # ...while up*/down* on the same ring stays acyclic.
        verify_deadlock_free(ring, UpDownRouting.build(ring))

    def test_cycle_error_carries_cycle(self):
        deps = {("a",): {("b",)}, ("b",): {("a",)}}
        cycle = find_cycle(deps)
        assert cycle is not None and cycle[0] == cycle[-1]
        err = DeadlockCycleError(cycle)
        assert "cyclic channel dependency" in str(err)

    def test_cdg_contains_delivery_sinks(self):
        topo = make_line(2)
        rt = UpDownRouting.build(topo)
        deps = build_channel_dependency_graph(topo, rt)
        for n in range(topo.num_nodes):
            assert deps[("del", n)] == set()
        # injection of node 0 can request its switch's outgoing link or the
        # local delivery of node 0's switch-mates.
        assert deps[("inj", 0)]
