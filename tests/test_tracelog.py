"""Tests for the structured event trace."""

import pytest

from repro.multicast import make_scheme
from repro.params import SimParams
from repro.sim.network import SimNetwork
from repro.sim.tracelog import TraceLog, TraceRecord
from repro.topology.irregular import generate_irregular_topology
from tests.topo_fixtures import make_line


class TestTraceLog:
    def test_emit_and_filter(self):
        log = TraceLog()
        log.emit(1.0, "grant", "w1", "ch-a")
        log.emit(2.0, "deliver", "w1", "node 3")
        log.emit(3.0, "grant", "w2", "ch-b")
        assert len(log) == 3
        assert [r.detail for r in log.records(event="grant")] == ["ch-a", "ch-b"]
        assert [r.time for r in log.records(worm_contains="w1")] == [1.0, 2.0]

    def test_ring_buffer_drops_oldest(self):
        log = TraceLog(capacity=2)
        for i in range(5):
            log.emit(float(i), "e", "w", str(i))
        assert len(log) == 2
        assert log.dropped == 3
        assert [r.detail for r in log.records()] == ["3", "4"]

    def test_format_contains_header_and_rows(self):
        log = TraceLog()
        log.emit(10.0, "grant", "worm", "chan")
        text = log.format()
        assert "trace: 1 records" in text
        assert "grant" in text and "chan" in text

    def test_clear(self):
        log = TraceLog()
        log.emit(1.0, "e", "w", "d")
        log.clear()
        assert len(log) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TraceLog(capacity=0)

    def test_digest_is_capacity_independent(self):
        # The witness must cover the full run, not the retained ring tail:
        # a tiny ring that evicted almost everything still digests
        # identically to an unbounded log of the same emissions.
        big, tiny = TraceLog(), TraceLog(capacity=3)
        for i in range(50):
            for log in (big, tiny):
                log.emit(float(i), "e", f"w{i % 4}", f"detail {i}")
        assert tiny.dropped == 47
        assert big.dropped == 0
        assert tiny.digest() == big.digest()

    def test_digest_streams_across_clear(self):
        # clear() resets what records() can show, never the witness.
        log, ref = TraceLog(), TraceLog()
        log.emit(1.0, "e", "w", "a")
        ref.emit(1.0, "e", "w", "a")
        log.clear()
        log.emit(2.0, "e", "w", "b")
        ref.emit(2.0, "e", "w", "b")
        assert len(log) == 1
        assert log.digest() == ref.digest()

    def test_record_str(self):
        r = TraceRecord(5.0, "grant", "w", "ch")
        assert "grant" in str(r) and "5.0" in str(r)


class TestTracedSimulation:
    def test_unicast_trace_sequence(self):
        net = SimNetwork(make_line(3), SimParams())
        net.trace = TraceLog()
        from repro.sim.messaging import HostReceiver, host_send

        recv = HostReceiver(net.hosts[2], 1, lambda t: None)
        steer = net.unicast_steer(2)
        host_send(
            net.hosts[0],
            [
                lambda: net.hosts[0].launch_worm(
                    steer, None,
                    on_delivered=lambda _n, _t: recv.packet_arrived(),
                    label="uni:0->2",
                )
            ],
        )
        net.run()
        events = [r.event for r in net.trace.records(worm_contains="uni")]
        # 4 channels granted+released, one delivery.
        assert events.count("grant") == 4
        assert events.count("release") == 4
        assert events.count("deliver") == 1
        # grants happen in path order: inject first
        grants = net.trace.records(event="grant")
        assert grants[0].detail.startswith("inj:")

    def test_multicast_trace_has_all_deliveries(self):
        params = SimParams()
        topo = generate_irregular_topology(params, seed=3)
        net = SimNetwork(topo, params)
        net.trace = TraceLog()
        res = make_scheme("tree").execute(net, 0, [5, 9, 17])
        net.run()
        delivers = net.trace.records(event="deliver")
        assert {r.detail for r in delivers} == {"node 5", "node 9", "node 17"}
        assert res.complete

    def test_untraced_network_unaffected(self):
        net = SimNetwork(make_line(3), SimParams())
        assert net.trace is None
        res = make_scheme("tree").execute(net, 0, [2])
        net.run()
        assert res.complete
