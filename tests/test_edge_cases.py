"""Edge-case coverage across the stack: odd parameters, tiny systems,
control-packet worms, and mid-run engine interaction."""

import random

import pytest

from repro.multicast import make_scheme
from repro.params import SimParams
from repro.sim.network import SimNetwork
from repro.sim.worm import Worm
from repro.topology.irregular import generate_irregular_topology
from tests.topo_fixtures import make_line


class TestTinySystems:
    def test_two_node_single_switch(self):
        p = SimParams(num_nodes=2, num_switches=1, ports_per_switch=4)
        topo = generate_irregular_topology(p)
        for scheme in ("binomial", "ni", "path", "tree"):
            net = SimNetwork(topo, p)
            res = make_scheme(scheme).execute(net, 0, [1])
            net.run()
            assert res.complete

    def test_two_switches_two_nodes(self):
        p = SimParams(num_nodes=2, num_switches=2, ports_per_switch=4)
        topo = generate_irregular_topology(p, seed=1)
        net = SimNetwork(topo, p)
        res = make_scheme("tree").execute(net, 0, [1])
        net.run()
        assert res.complete


class TestOddParameters:
    def test_minimum_packet_size(self):
        p = SimParams(packet_flits=2)
        topo = generate_irregular_topology(p, seed=3)
        net = SimNetwork(topo, p)
        res = make_scheme("tree").execute(net, 0, [5, 9])
        net.run()
        assert res.complete

    def test_zero_host_overhead(self):
        p = SimParams(o_host=0)
        topo = generate_irregular_topology(p, seed=3)
        net = SimNetwork(topo, p)
        res = make_scheme("path").execute(net, 0, [5, 9, 17])
        net.run()
        assert res.complete

    def test_large_delays(self):
        p = SimParams(link_delay=5, switch_delay=7, routing_delay=3)
        topo = generate_irregular_topology(p, seed=3)
        net = SimNetwork(topo, p)
        res = make_scheme("ni").execute(net, 0, [5, 9])
        net.run()
        assert res.complete

    def test_tiny_buffer_heavy_multicast(self):
        p = SimParams(input_buffer_flits=1)
        topo = generate_irregular_topology(p, seed=3)
        net = SimNetwork(topo, p)
        dests = random.Random(0).sample(range(1, 32), 20)
        res = make_scheme("tree").execute(net, 0, dests)
        net.run()
        assert res.complete
        net.assert_quiescent()

    def test_slow_io_bus(self):
        p = SimParams(io_bus_flits_per_cycle=0.25)  # bus slower than link
        topo = generate_irregular_topology(p, seed=3)
        net = SimNetwork(topo, p)
        res = make_scheme("ni").execute(net, 0, [5, 9, 13])
        net.run()
        assert res.complete


class TestControlWorms:
    def test_length_override(self):
        # Collectives send short control packets; the worm length override
        # must shorten delivery by exactly the flit difference.
        net = SimNetwork(make_line(3), SimParams())
        lat = []
        for length in (128, 8):
            start = net.engine.now
            w = Worm(net.engine, net.params, net.unicast_steer(2),
                     on_delivered=lambda _n, t: lat.append(t - start), rng=net.rng,
                     length=length)
            w.start(net.fabric.inject[0], None)
            net.run()
            net.assert_quiescent()
        assert lat[0] - lat[1] == 120.0


class TestEngineInteraction:
    def test_run_until_mid_multicast_then_resume(self):
        p = SimParams()
        topo = generate_irregular_topology(p, seed=3)
        net = SimNetwork(topo, p)
        res = make_scheme("tree").execute(net, 0, [5, 9, 17])
        net.run(until=100)  # long before anything completes
        assert not res.complete
        net.run()
        assert res.complete

    def test_interleaved_ops_same_network(self):
        p = SimParams()
        topo = generate_irregular_topology(p, seed=3)
        net = SimNetwork(topo, p)
        scheme = make_scheme("tree")
        r1 = scheme.execute(net, 0, [5, 9])
        net.engine.at(500, lambda: results.append(scheme.execute(net, 3, [11, 20])))
        results: list = []
        net.run()
        assert r1.complete
        assert results and results[0].complete


class TestConcurrentDistinctSchemes:
    def test_mixed_scheme_traffic_coexists(self):
        p = SimParams()
        topo = generate_irregular_topology(p, seed=3)
        net = SimNetwork(topo, p)
        rng = random.Random(0)
        results = []
        for i, name in enumerate(("tree", "path", "ni", "binomial")):
            src = rng.randrange(32)
            dests = rng.sample([n for n in range(32) if n != src], 6)
            results.append(make_scheme(name).execute(net, src, dests))
        net.run()
        assert all(r.complete for r in results)
        net.assert_quiescent()
