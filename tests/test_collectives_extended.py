"""Tests for the extended collectives: gather, scatter, allreduce."""

import pytest

from repro.collectives import (
    allreduce,
    broadcast,
    gather_to_root,
    reduce_to_root,
    scatter_from_root,
)
from repro.params import SimParams
from repro.sim.network import SimNetwork
from repro.topology.irregular import generate_irregular_topology


def default_net(seed=3, **kw) -> SimNetwork:
    p = SimParams(**kw)
    return SimNetwork(generate_irregular_topology(p, seed=seed), p)


class TestGather:
    def test_all_senders_recorded(self):
        net = default_net()
        res = gather_to_root(net, 0)
        net.run()
        assert res.complete
        assert set(res.node_times) == set(range(1, 32))
        net.assert_quiescent()

    def test_gather_slower_than_reduce(self):
        # Direct gather funnels 31 messages into one NI; the combining tree
        # parallelises, so reduce completes earlier.
        g_net = default_net()
        g = gather_to_root(g_net, 0)
        g_net.run()
        r_net = default_net()
        r = reduce_to_root(r_net, 0)
        r_net.run()
        assert r.latency < g.latency

    def test_nonzero_root(self):
        net = default_net()
        res = gather_to_root(net, 5)
        net.run()
        assert res.complete
        assert 5 not in res.node_times


class TestScatter:
    def test_everyone_receives(self):
        net = default_net()
        res = scatter_from_root(net, 0)
        net.run()
        assert res.complete
        assert set(res.node_times) == set(range(1, 32))
        net.assert_quiescent()

    def test_scatter_slower_than_broadcast(self):
        # Personalised sends serialise on the root; a broadcast multicast
        # of the same message size is strictly cheaper.
        s_net = default_net()
        s = scatter_from_root(s_net, 0)
        s_net.run()
        b_net = default_net()
        b = broadcast(b_net, 0, "tree")
        b_net.run()
        assert b.latency < s.latency

    def test_deliveries_spread_over_time(self):
        net = default_net()
        res = scatter_from_root(net, 0)
        net.run()
        times = sorted(res.node_times.values())
        # Root serialisation: the last delivery is far behind the first.
        assert times[-1] - times[0] > net.params.o_host * 5


class TestAllreduce:
    @pytest.mark.parametrize("scheme", ["tree", "ni"])
    def test_completes_and_covers_all(self, scheme):
        net = default_net()
        res = allreduce(net, 0, scheme)
        net.run()
        assert res.complete
        assert set(res.node_times) == set(range(1, 32))
        net.assert_quiescent()

    def test_allreduce_exceeds_both_legs(self):
        net = default_net()
        ar = allreduce(net, 0, "tree")
        net.run()
        r_net = default_net()
        r = reduce_to_root(r_net, 0)
        r_net.run()
        b_net = default_net()
        b = broadcast(b_net, 0, "tree")
        b_net.run()
        assert ar.latency >= r.latency
        assert ar.latency >= b.latency
        assert ar.latency <= r.latency + b.latency + 1e-6

    def test_tree_allreduce_beats_binomial_allreduce(self):
        lat = {}
        for scheme in ("tree", "binomial"):
            net = default_net()
            res = allreduce(net, 0, scheme)
            net.run()
            lat[scheme] = res.latency
        assert lat["tree"] < lat["binomial"]
