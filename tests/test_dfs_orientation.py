"""Tests for the DFS-preorder up*/down* orientation variant."""

import random

import pytest

from repro.multicast import make_scheme
from repro.params import SimParams
from repro.routing.deadlock import verify_deadlock_free
from repro.routing.dfs_tree import dfs_preorder_labels
from repro.routing.paths import is_legal_path, shortest_path_links
from repro.routing.updown import Phase, UpDownRouting
from repro.sim.network import SimNetwork
from repro.topology.graph import NetworkTopology
from repro.topology.irregular import generate_irregular_topology
from tests.topo_fixtures import make_diamond, make_line


class TestDfsLabels:
    def test_root_is_zero_and_labels_unique(self):
        topo = make_diamond()
        labels = dfs_preorder_labels(topo)
        assert labels[0] == 0
        assert sorted(labels) == list(range(4))

    def test_line_is_sequential(self):
        labels = dfs_preorder_labels(make_line(5))
        assert labels == (0, 1, 2, 3, 4)

    def test_deterministic(self):
        topo = generate_irregular_topology(SimParams(), seed=4)
        assert dfs_preorder_labels(topo) == dfs_preorder_labels(topo)

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            dfs_preorder_labels(NetworkTopology(2, 4, [], []))

    def test_bad_root_rejected(self):
        with pytest.raises(ValueError):
            dfs_preorder_labels(make_line(3), root=10)


class TestDfsOrientation:
    def test_tree_edges_point_to_root(self):
        topo = make_line(4)
        rt = UpDownRouting.build(topo, orientation="dfs")
        for lk in topo.links:
            assert rt.up_end_switch(lk) == min(lk.a.switch, lk.b.switch)

    def test_all_pairs_reachable(self):
        for seed in range(4):
            topo = generate_irregular_topology(SimParams(), seed=seed)
            rt = UpDownRouting.build(topo, orientation="dfs")
            for a in range(topo.num_switches):
                for b in range(topo.num_switches):
                    assert rt.reachable(a, Phase.UP, b)
                    p = shortest_path_links(rt, a, b)
                    assert is_legal_path(rt, a, p)

    def test_deadlock_free(self):
        for seed in range(4):
            topo = generate_irregular_topology(SimParams(), seed=seed)
            rt = UpDownRouting.build(topo, orientation="dfs")
            verify_deadlock_free(topo, rt)

    def test_root_down_reaches_everything(self):
        from repro.routing.reachability import ReachabilityTable

        for seed in range(4):
            topo = generate_irregular_topology(SimParams(), seed=seed)
            rt = UpDownRouting.build(topo, orientation="dfs")
            reach = ReachabilityTable.build(rt)
            assert reach.down_reach(0) == frozenset(range(topo.num_nodes))

    def test_unknown_orientation_rejected(self):
        with pytest.raises(ValueError, match="orientation"):
            UpDownRouting.build(make_line(3), orientation="mst")

    def test_orientation_differs_from_bfs_somewhere(self):
        # On a diamond, BFS orients the 1-2 tie by id; DFS preorder walks
        # down one side first, producing a different orientation for at
        # least one non-tree link on typical irregular graphs.
        found_difference = False
        for seed in range(8):
            topo = generate_irregular_topology(SimParams(), seed=seed)
            bfs = UpDownRouting.build(topo, orientation="bfs")
            dfs = UpDownRouting.build(topo, orientation="dfs")
            for lk in topo.links:
                if bfs.up_end_switch(lk) != dfs.up_end_switch(lk):
                    found_difference = True
        assert found_difference


class TestDfsEndToEnd:
    @pytest.mark.parametrize("scheme", ["binomial", "ni", "path", "tree"])
    def test_schemes_work_under_dfs_orientation(self, scheme):
        params = SimParams(routing_tree="dfs")
        topo = generate_irregular_topology(params, seed=3)
        net = SimNetwork(topo, params)
        dests = random.Random(0).sample(range(1, 32), 12)
        res = make_scheme(scheme).execute(net, 0, dests)
        net.run()
        assert res.complete
        net.assert_quiescent()

    def test_params_validation(self):
        with pytest.raises(ValueError):
            SimParams(routing_tree="mst").validate()
