"""Flit-exact timing tests for the worm-level cut-through model.

Every expected number here is derived by hand from the model's definition:
header crossing = grant + channel delay; per-switch routing decode =
``routing_delay``; payload streams at 1 flit/cycle; channel release follows
the buffer-capacity recurrence in :mod:`repro.sim.worm`.
"""

import pytest

from tests.topo_fixtures import make_diamond, make_line, make_star
from repro.params import SimParams
from repro.sim.engine import Engine
from repro.sim.network import SimNetwork
from repro.sim.worm import Deliver, Forward, Worm


def launch_unicast(net: SimNetwork, src: int, dst: int, results: list) -> Worm:
    worm = Worm(
        net.engine,
        net.params,
        net.unicast_steer(dst),
        on_delivered=lambda node, t: results.append((node, t)),
        rng=net.rng,
    )
    worm.start(net.fabric.inject[src], None)
    return worm


class TestUnicastTiming:
    def test_line_latency_exact(self):
        # 3 switches in a line, 1 host each; node0 -> node2.
        # inject h=1; decode@2; fwd h=4; decode@5; fwd h=7; decode@8;
        # deliver h=10; tail = 10 + 127 = 137.
        net = SimNetwork(make_line(3), SimParams())
        res = []
        launch_unicast(net, 0, 2, res)
        net.run()
        assert res == [(2, 137.0)]

    def test_same_switch_latency(self):
        # node0 -> node1 on one switch: inject h=1, decode@2, deliver h=4,
        # tail = 4 + 127 = 131.
        net = SimNetwork(make_line(1, hosts_per_switch=2), SimParams())
        res = []
        launch_unicast(net, 0, 1, res)
        net.run()
        assert res == [(1, 131.0)]

    def test_latency_scales_with_hops(self):
        lat = {}
        for n_sw in (2, 4, 6):
            net = SimNetwork(make_line(n_sw), SimParams())
            res = []
            launch_unicast(net, 0, n_sw - 1, res)
            net.run()
            lat[n_sw] = res[0][1]
        # each extra switch-switch hop costs switch+link+routing = 3 cycles
        assert lat[4] - lat[2] == 6.0
        assert lat[6] - lat[4] == 6.0

    def test_packet_length_sets_tail_time(self):
        net = SimNetwork(make_line(3), SimParams(packet_flits=64))
        res = []
        launch_unicast(net, 0, 2, res)
        net.run()
        assert res == [(2, 10.0 + 63)]

    def test_diamond_adaptive_still_delivers(self):
        net = SimNetwork(make_diamond(), SimParams())
        res = []
        launch_unicast(net, 0, 3, res)
        net.run()
        # 0 -> (1 or 2) -> 3: inject h=1, decode@2, fwd h=4, decode@5,
        # fwd h=7, decode@8, deliver h=10, tail 137.
        assert res == [(3, 137.0)]

    def test_deterministic_routing_single_option(self):
        net = SimNetwork(make_diamond(), SimParams(adaptive_routing=False))
        res = []
        launch_unicast(net, 0, 3, res)
        net.run()
        assert res == [(3, 137.0)]


class TestContention:
    def test_two_packets_same_injection_serialize(self):
        # Two back-to-back packets from node0: the second's injection starts
        # when the first releases the injection channel (tail clears it at
        # h0 + L - 1 = 128).  Its header then chases the first worm's tail
        # down the line, picking up a 1-cycle pipeline bubble at sw0's
        # output, so it is delivered 129 cycles after the first.
        net = SimNetwork(make_line(3), SimParams())
        res = []
        launch_unicast(net, 0, 2, res)
        launch_unicast(net, 0, 2, res)
        net.run()
        assert res == [(2, 137.0), (2, 137.0 + 129)]

    def test_two_sources_share_delivery_channel(self):
        # node0 and node1 on distinct switches both send to node2 (sw2).
        # The second worm queues on the delivery channel.
        net = SimNetwork(make_line(3, hosts_per_switch=1), SimParams())
        res = []
        launch_unicast(net, 0, 2, res)
        launch_unicast(net, 1, 2, res)
        net.run()
        assert len(res) == 2
        t1, t2 = sorted(t for _n, t in res)
        # Winner is node1's worm (fewer hops: tail 134); loser gets the
        # delivery channel only when the winner's tail clears it.
        assert t2 > t1
        assert t2 - t1 >= net.params.packet_flits - 10

    def test_quiescence_rejects_pending_events(self):
        # A scheduled-but-unfired event is not quiescent even though every
        # channel and CPU is idle; the diagnostic names the next fire time.
        net = SimNetwork(make_line(3), SimParams())
        net.engine.at(500, lambda: None)
        with pytest.raises(AssertionError, match="pending.*t=500"):
            net.assert_quiescent()
        net.run()
        net.assert_quiescent()

    def test_network_run_plumbs_max_events(self):
        # The network API exposes the engine's runaway safety valve.
        net = SimNetwork(make_line(3), SimParams())

        def respawn() -> None:
            net.engine.after(0, respawn)

        net.engine.after(0, respawn)
        with pytest.raises(RuntimeError, match="max_events=50"):
            net.run(max_events=50)

    def test_release_allows_reuse(self):
        # After a worm completes, the same path is immediately reusable.
        net = SimNetwork(make_line(3), SimParams())
        res = []
        launch_unicast(net, 0, 2, res)
        net.run()
        net.assert_quiescent()
        launch_unicast(net, 0, 2, res)
        net.run()
        net.assert_quiescent()
        assert len(res) == 2


class TestBufferRegimes:
    def _blocked_upstream_release(self, buffer_flits: int) -> tuple[float, float]:
        """Returns (time s0->s1 released by worm B, time blocker finished).

        Worm A: node1 (sw1) -> node2 (sw2) -- holds sw1->sw2 then the
        delivery channel.  Worm B: node0 -> node2, blocked at sw1 behind A.
        """
        params = SimParams(input_buffer_flits=buffer_flits)
        net = SimNetwork(make_line(3), params)
        res = []
        launch_unicast(net, 1, 2, res)  # worm A (wins sw1->sw2)
        launch_unicast(net, 0, 2, res)  # worm B
        link01 = net.topo.links[0]
        ch = net.fabric.forward_channel(link01, 0)
        release_times = []
        ch.release_hook = release_times.append
        net.run()
        a_done = min(t for _n, t in res)
        return release_times[0], a_done

    def test_virtual_cut_through_frees_upstream_early(self):
        # Buffer >= packet: B absorbs into sw1's buffer and frees sw0->sw1
        # after exactly L cycles even though it is still blocked at sw1.
        rel, a_done = self._blocked_upstream_release(buffer_flits=256)
        assert rel < a_done

    def test_wormhole_holds_upstream_when_blocked(self):
        # Tiny buffer: B spans both channels while blocked, so sw0->sw1 is
        # held until after A drains and B advances.
        rel, a_done = self._blocked_upstream_release(buffer_flits=4)
        assert rel > a_done

    def test_unblocked_release_is_rate_limited(self):
        # Without contention, release = header-cross + L - 1 regardless of
        # the buffer size.
        for buf in (4, 64, 256):
            net = SimNetwork(make_line(3), SimParams(input_buffer_flits=buf))
            ch = net.fabric.forward_channel(net.topo.links[0], 0)
            releases = []
            ch.release_hook = releases.append
            res = []
            launch_unicast(net, 0, 2, res)
            net.run()
            assert releases == [4.0 + 127]


class TestReplication:
    def test_fork_delivers_both_copies(self):
        # Custom steer: at the hub of a star, fork to two leaf switches.
        net = SimNetwork(make_star(2, hosts_per_switch=1), SimParams())
        # hosts: node0 on hub sw0, node1 on sw1, node2 on sw2
        fab = net.fabric

        def steer(switch, state):
            if switch == 0:
                return [
                    Forward([(fab.forward_channel(net.topo.links[0], 0), "d1")]),
                    Forward([(fab.forward_channel(net.topo.links[1], 0), "d2")]),
                ]
            node = 1 if state == "d1" else 2
            return [Deliver(fab.deliver[node])]

        res = []
        worm = Worm(net.engine, net.params, steer,
                    on_delivered=lambda n, t: res.append((n, t)), rng=net.rng)
        worm.start(fab.inject[0], None)
        net.run()
        # Both branches advance in parallel: inject h=1, decode@2, fwd h=4,
        # decode@5, deliver h=7, tail 134 -- identical for both.
        assert sorted(res) == [(1, 134.0), (2, 134.0)]

    def test_fork_decouples_branches_via_replication_buffers(self):
        # Block one branch with a competing worm.  Replicating switch ports
        # have full-packet replication buffers (deadlock-free replication,
        # paper section 3.3), so the blocked branch absorbs into its buffer:
        # the shared injection channel releases at its rate limit and the
        # unblocked branch delivers on time.
        params = SimParams(input_buffer_flits=4)
        net = SimNetwork(make_star(2, hosts_per_switch=2), params)
        # hosts: 0,1 on hub; 2,3 on sw1; 4,5 on sw2
        fab = net.fabric
        res = []
        # Blocker: node2 -> node3 (same switch sw1) occupies deliver[3]?
        # Use node2 -> node3 delivery via sw1 only; instead block the
        # hub->sw1 link with a unicast from node0 to node2.
        launch_unicast(net, 0, 2, res)

        def steer(switch, state):
            if switch == 0:
                return [
                    Forward([(fab.forward_channel(net.topo.links[0], 0), "a")]),
                    Forward([(fab.forward_channel(net.topo.links[1], 0), "b")]),
                ]
            node = 3 if state == "a" else 4
            return [Deliver(fab.deliver[node])]

        worm = Worm(net.engine, net.params, steer,
                    on_delivered=lambda n, t: res.append((n, t)), rng=net.rng,
                    label="fork")
        inj = fab.inject[1]
        releases = []
        inj.release_hook = releases.append
        worm.start(inj, None)
        net.run()
        assert len(res) == 3
        times = dict((n, t) for n, t in res)
        blocked_branch_delivery = times[3]
        unblocked = times[4]
        # Unblocked branch delivers at its uncontended tail time...
        assert unblocked == 134.0
        # ...the injection channel drains at its rate limit...
        assert releases[0] == 128.0
        # ...and only the blocked branch waits for the competing worm.
        assert blocked_branch_delivery > unblocked + 100

    def test_worm_completion_callback(self):
        net = SimNetwork(make_line(3), SimParams())
        done = []
        worm = Worm(net.engine, net.params, net.unicast_steer(2),
                    on_delivered=lambda n, t: None,
                    on_done=lambda: done.append(net.engine.now), rng=net.rng)
        worm.start(net.fabric.inject[0], None)
        net.run()
        assert len(done) == 1
        assert worm.finish_time == done[0]
        net.assert_quiescent()


class TestWormGuards:
    def test_channel_reuse_rejected(self):
        net = SimNetwork(make_line(2, hosts_per_switch=1), SimParams())
        ch = net.fabric.deliver[1]

        def steer(switch, state):
            return [Deliver(ch), Deliver(ch)]

        worm = Worm(net.engine, net.params, steer,
                    on_delivered=lambda n, t: None, rng=net.rng)
        worm.start(net.fabric.inject[0], None)
        with pytest.raises(RuntimeError, match="twice"):
            net.run()

    def test_empty_steer_rejected(self):
        net = SimNetwork(make_line(2), SimParams())
        worm = Worm(net.engine, net.params, lambda s, st: [],
                    on_delivered=lambda n, t: None, rng=net.rng)
        worm.start(net.fabric.inject[0], None)
        with pytest.raises(RuntimeError, match="stranded"):
            net.run()

    def test_double_start_rejected(self):
        net = SimNetwork(make_line(2), SimParams())
        worm = Worm(net.engine, net.params, net.unicast_steer(1),
                    on_delivered=lambda n, t: None, rng=net.rng)
        worm.start(net.fabric.inject[0], None)
        with pytest.raises(RuntimeError, match="already started"):
            worm.start(net.fabric.inject[0], None)

    def test_zero_link_delay_rejected(self):
        net_params = SimParams(link_delay=0)
        with pytest.raises(ValueError, match="link_delay"):
            Worm(Engine(), net_params, lambda s, st: [],
                 on_delivered=lambda n, t: None)
