"""Shared pytest fixtures."""

import pytest

from repro.params import SimParams


@pytest.fixture
def default_params() -> SimParams:
    return SimParams()
