"""Tests for the regular-topology builders and their behaviour under the
full simulation stack."""

import random

import pytest

from repro.multicast import make_scheme
from repro.params import SimParams
from repro.routing.deadlock import verify_deadlock_free
from repro.routing.updown import UpDownRouting
from repro.sim.network import SimNetwork
from repro.topology.analysis import analyze
from repro.topology.regular import (
    REGULAR_BUILDERS,
    fully_connected,
    hypercube,
    mesh_2d,
    ring,
    torus_2d,
)


class TestBuilders:
    def test_mesh_shape(self):
        topo = mesh_2d(3, 4)
        assert topo.num_switches == 12
        assert len(topo.links) == 3 * 3 + 2 * 4  # rows*(cols-1) + (rows-1)*cols
        stats = analyze(topo)
        assert stats.diameter == (3 - 1) + (4 - 1)

    def test_torus_shape(self):
        topo = torus_2d(3, 3)
        assert topo.num_switches == 9
        assert len(topo.links) == 2 * 9
        assert analyze(topo).diameter == 2  # floor(3/2)*2

    def test_hypercube_shape(self):
        topo = hypercube(3)
        assert topo.num_switches == 8
        assert len(topo.links) == 3 * 8 // 2
        assert analyze(topo).diameter == 3

    def test_ring_shape(self):
        topo = ring(6)
        assert len(topo.links) == 6
        assert analyze(topo).diameter == 3

    def test_clique_shape(self):
        topo = fully_connected(5)
        assert len(topo.links) == 10
        assert analyze(topo).diameter == 1

    def test_hosts_per_switch(self):
        topo = mesh_2d(2, 2, hosts_per_switch=3)
        assert topo.num_nodes == 12
        assert topo.nodes_on_switch(1) == [3, 4, 5]

    def test_port_budget_enforced(self):
        with pytest.raises(ValueError, match="too small"):
            fully_connected(10, hosts_per_switch=1, ports_per_switch=4)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            mesh_2d(1, 1)
        with pytest.raises(ValueError):
            torus_2d(2, 3)
        with pytest.raises(ValueError):
            hypercube(0)
        with pytest.raises(ValueError):
            ring(2)
        with pytest.raises(ValueError):
            fully_connected(1)


class TestRoutingOnRegular:
    @pytest.mark.parametrize("name", sorted(REGULAR_BUILDERS))
    def test_updown_deadlock_free(self, name):
        builder = REGULAR_BUILDERS[name]
        topo = builder(3, 3) if name in ("mesh", "torus") else builder(4)
        rt = UpDownRouting.build(topo)
        verify_deadlock_free(topo, rt)

    def test_updown_distance_can_exceed_graph_distance_on_ring(self):
        # up*/down* forbids down-then-up routes: on a 6-ring rooted at 0,
        # going 2 -> 4 "the short way" needs down(2->3) then up(3->4),
        # which is illegal, so the legal route detours through the root.
        topo = ring(6)
        rt = UpDownRouting.build(topo)
        from repro.topology.analysis import switch_distances

        graph_d = switch_distances(topo, 2)[4]
        assert graph_d == 2
        assert rt.distance(2, 4) == 4  # 2-1-0-5-4


class TestSchemesOnRegular:
    @pytest.mark.parametrize("scheme", ["binomial", "ni", "path", "tree"])
    @pytest.mark.parametrize("name", sorted(REGULAR_BUILDERS))
    def test_multicast_completes(self, scheme, name):
        builder = REGULAR_BUILDERS[name]
        topo = (
            builder(3, 3, hosts_per_switch=2)
            if name in ("mesh", "torus")
            else builder(4, hosts_per_switch=2)
        )
        params = SimParams(
            num_nodes=topo.num_nodes,
            num_switches=topo.num_switches,
            ports_per_switch=topo.ports_per_switch,
        )
        net = SimNetwork(topo, params)
        dests = random.Random(0).sample(range(1, topo.num_nodes), 7)
        res = make_scheme(scheme).execute(net, 0, dests)
        net.run()
        assert res.complete
        net.assert_quiescent()

    def test_tree_beats_path_on_mesh(self):
        topo = mesh_2d(4, 4, hosts_per_switch=2)
        params = SimParams(
            num_nodes=topo.num_nodes, num_switches=topo.num_switches
        )
        dests = random.Random(1).sample(range(1, topo.num_nodes), 12)
        lat = {}
        for scheme in ("tree", "path"):
            net = SimNetwork(topo, params)
            res = make_scheme(scheme).execute(net, 0, dests)
            net.run()
            lat[scheme] = res.latency
        assert lat["tree"] < lat["path"]
