"""Tests for link-fault injection and post-reconfiguration behaviour."""

import random

import pytest

from repro.multicast import make_scheme
from repro.params import SimParams
from repro.routing.deadlock import verify_deadlock_free
from repro.routing.updown import UpDownRouting
from repro.sim.network import SimNetwork
from repro.topology.faults import degrade, removable_links, remove_link
from repro.topology.graph import NetworkTopology, PortRef, SwitchLink
from repro.topology.irregular import generate_irregular_topology
from tests.topo_fixtures import make_diamond, make_line


class TestRemoveLink:
    def test_removes_exactly_one(self):
        topo = make_diamond()
        degraded = remove_link(topo, 3)
        assert len(degraded.links) == 3
        assert all(lk.link_id != 3 for lk in degraded.links)
        assert degraded.is_connected()

    def test_ports_freed(self):
        topo = make_diamond()
        before = topo.free_ports(2)
        degraded = remove_link(topo, 3)
        assert degraded.free_ports(2) == before + 1

    def test_unknown_link_rejected(self):
        with pytest.raises(ValueError, match="no link"):
            remove_link(make_diamond(), 99)

    def test_disconnecting_removal_rejected(self):
        topo = make_line(3)  # every link is a bridge
        with pytest.raises(ValueError, match="disconnects"):
            remove_link(topo, 0)

    def test_removable_links(self):
        assert removable_links(make_line(3)) == []
        assert set(removable_links(make_diamond())) == {0, 1, 2, 3}

    def test_host_attachment_port_id_is_not_a_link_id(self):
        # Link ids and port ids are distinct namespaces: passing the port
        # number of a host attachment must not silently fail a switch link.
        links = [
            SwitchLink(10, PortRef(0, 1), PortRef(1, 1)),
            SwitchLink(11, PortRef(1, 2), PortRef(2, 1)),
            SwitchLink(12, PortRef(2, 2), PortRef(0, 2)),
        ]
        attach = [PortRef(s, 0) for s in range(3)]  # hosts sit on port 0
        topo = NetworkTopology(3, 8, attach, links)
        with pytest.raises(ValueError, match="no link with id 0"):
            remove_link(topo, 0)
        # the real link ids are still individually removable (it's a cycle)
        assert removable_links(topo) == [10, 11, 12]


class TestDegrade:
    def test_zero_failures_is_identity_shape(self):
        topo = make_diamond()
        degraded, failed = degrade(topo, 0)
        assert failed == []
        assert len(degraded.links) == 4

    def test_multiple_failures_keep_connected(self):
        topo = generate_irregular_topology(SimParams(), seed=3)
        degraded, failed = degrade(topo, 3, random.Random(1))
        assert len(failed) == 3
        assert degraded.is_connected()
        assert len(degraded.links) == len(topo.links) - 3

    def test_deterministic_with_seeded_rng(self):
        topo = generate_irregular_topology(SimParams(), seed=3)
        _d1, f1 = degrade(topo, 2, random.Random(5))
        _d2, f2 = degrade(topo, 2, random.Random(5))
        assert f1 == f2

    def test_too_many_failures_rejected(self):
        with pytest.raises(ValueError, match="cannot fail"):
            degrade(make_line(4), 1)
        with pytest.raises(ValueError):
            degrade(make_diamond(), -1)

    def test_stuck_mid_degrade_reports_progress(self):
        # The diamond absorbs exactly one failure (then it is a tree); the
        # error must say how far the degradation got before sticking.
        with pytest.raises(ValueError, match=r"stuck after 1"):
            degrade(make_diamond(), 2, random.Random(0))


class TestReconfiguration:
    def test_routing_recomputed_and_deadlock_free(self):
        topo = generate_irregular_topology(SimParams(), seed=3)
        degraded, _ = degrade(topo, 2, random.Random(7))
        rt = UpDownRouting.build(degraded)
        verify_deadlock_free(degraded, rt)

    @pytest.mark.parametrize("scheme", ["binomial", "ni", "path", "tree"])
    def test_multicast_survives_failures(self, scheme):
        params = SimParams()
        topo = generate_irregular_topology(params, seed=3)
        degraded, _ = degrade(topo, 2, random.Random(7))
        net = SimNetwork(degraded, params)
        dests = random.Random(0).sample(range(1, 32), 10)
        res = make_scheme(scheme).execute(net, 0, dests)
        net.run()
        assert res.complete
        net.assert_quiescent()

    def test_failures_never_speed_up_tree_multicast_much(self):
        # Losing links can only shrink the set of legal routes; latency may
        # rise (longer climbs) but should not collapse.
        params = SimParams()
        topo = generate_irregular_topology(params, seed=3)
        dests = random.Random(0).sample(range(1, 32), 12)

        def latency(t):
            net = SimNetwork(t, params)
            res = make_scheme("tree").execute(net, 0, dests)
            net.run()
            return res.latency

        healthy = latency(topo)
        degraded, _ = degrade(topo, 2, random.Random(7))
        assert latency(degraded) >= healthy - 10
