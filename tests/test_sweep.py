"""Tests for the generic grid sweep utility."""

import pytest

from repro.experiments.sweep import (
    SweepRecord,
    grid_sweep,
    save_sweep_csv,
    single_latency_metric,
    sweep_to_csv,
)
from repro.params import SimParams


def counting_metric(calls):
    def metric(params: SimParams) -> dict[str, float]:
        calls.append(params)
        return {"m": params.o_host * params.ratio_r}

    return metric


class TestGridSweep:
    def test_cartesian_product_order_and_size(self):
        calls = []
        records = grid_sweep(
            SimParams(),
            {"o_host": [100, 200], "ratio_r": [1.0, 2.0, 4.0]},
            counting_metric(calls),
        )
        assert len(records) == 6
        assert len(calls) == 6
        # coords are sorted by field name: o_host before ratio_r
        assert records[0].coords == (("o_host", 100), ("ratio_r", 1.0))
        assert records[-1].coords == (("o_host", 200), ("ratio_r", 4.0))

    def test_metrics_recorded(self):
        records = grid_sweep(
            SimParams(), {"o_host": [100]}, counting_metric([])
        )
        assert records[0].metrics == {"m": 200.0}
        assert records[0].coord("o_host") == 100
        with pytest.raises(KeyError):
            records[0].coord("nope")

    def test_unknown_field_fails_fast(self):
        calls = []
        with pytest.raises(ValueError, match="no field"):
            grid_sweep(SimParams(), {"bogus": [1]}, counting_metric(calls))
        assert calls == []

    def test_invalid_derived_params_rejected(self):
        with pytest.raises(ValueError):
            grid_sweep(
                SimParams(), {"ratio_r": [-1.0]}, counting_metric([])
            )

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            grid_sweep(SimParams(), {}, counting_metric([]))


class TestLatencyMetric:
    def test_real_latency_sweep(self):
        metric = single_latency_metric(
            scheme_names=("tree",), group_size=8, n_topologies=1, trials=1
        )
        records = grid_sweep(SimParams(), {"ratio_r": [1.0, 4.0]}, metric)
        assert all("latency_tree" in r.metrics for r in records)
        # tree latency falls with R (cheaper o_ni)
        assert records[1].metrics["latency_tree"] < records[0].metrics["latency_tree"]


def doubled_metric(params: SimParams) -> dict[str, float]:
    """Module-level (picklable) metric for the parallel executor path."""
    return {"m": params.o_host * 2.0}


class TestParallelGridSweep:
    def test_jobs_match_serial(self):
        grid = {"o_host": [100, 200, 300]}
        serial = grid_sweep(SimParams(), grid, doubled_metric, jobs=1)
        parallel = grid_sweep(SimParams(), grid, doubled_metric, jobs=3)
        assert serial == parallel

    def test_real_metric_is_picklable_across_the_pool(self):
        metric = single_latency_metric(
            scheme_names=("tree",), group_size=4, n_topologies=1, trials=1
        )
        grid = {"ratio_r": [1.0, 4.0]}
        serial = grid_sweep(SimParams(), grid, metric, jobs=1)
        parallel = grid_sweep(SimParams(), grid, metric, jobs=2)
        assert serial == parallel

    def test_invalid_params_still_fail_fast(self):
        # Validation happens before any worker is spawned.
        with pytest.raises(ValueError):
            grid_sweep(SimParams(), {"ratio_r": [-1.0]}, doubled_metric, jobs=4)


class TestCsvExport:
    def test_layout(self, tmp_path):
        records = [
            SweepRecord((("a", 1), ("b", 2)), {"x": 3.0, "y": 4.0}),
            SweepRecord((("a", 5), ("b", 6)), {"x": 7.0, "y": 8.0}),
        ]
        text = sweep_to_csv(records)
        lines = text.strip().splitlines()
        assert lines[0] == "a,b,x,y"
        assert lines[1] == "1,2,3.0,4.0"
        path = tmp_path / "sweep.csv"
        save_sweep_csv(records, path)
        assert path.read_text() == text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sweep_to_csv([])

    def test_heterogeneous_metric_dicts_keep_all_columns(self):
        # Regression: metric columns were taken from records[0] only, so a
        # metric first appearing in a later record silently vanished.
        records = [
            SweepRecord((("a", 1),), {"x": 1.0}),
            SweepRecord((("a", 2),), {"x": 2.0, "late": 9.0}),
            SweepRecord((("a", 3),), {"other": 7.0}),
        ]
        lines = sweep_to_csv(records).strip().splitlines()
        assert lines[0] == "a,late,other,x"
        assert lines[1] == "1,,,1.0"
        assert lines[2] == "2,9.0,,2.0"
        assert lines[3] == "3,,7.0,"
