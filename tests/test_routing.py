"""Unit tests for BFS tree, up*/down* routing, paths, and reachability."""

import pytest

from repro.params import SimParams
from repro.routing import (
    Phase,
    ReachabilityTable,
    UpDownRouting,
    all_minimal_paths,
    build_bfs_tree,
    is_legal_path,
    shortest_path_links,
)
from repro.routing.paths import path_switches
from repro.routing.reachability import decode_mask, header_mask
from repro.topology import NetworkTopology, PortRef, SwitchLink
from repro.topology.irregular import generate_irregular_topology


def line_topology(n_switches: int = 4) -> NetworkTopology:
    """sw0 - sw1 - ... - sw(k-1), one host per switch."""
    links = [
        SwitchLink(i, PortRef(i, 1), PortRef(i + 1, 2))
        for i in range(n_switches - 1)
    ]
    return NetworkTopology(
        num_switches=n_switches,
        ports_per_switch=4,
        node_attachment=[PortRef(s, 0) for s in range(n_switches)],
        links=links,
    )


def diamond_topology() -> NetworkTopology:
    """sw0 at top; sw1, sw2 in the middle; sw3 at bottom; host per switch."""
    links = [
        SwitchLink(0, PortRef(0, 1), PortRef(1, 1)),
        SwitchLink(1, PortRef(0, 2), PortRef(2, 1)),
        SwitchLink(2, PortRef(1, 2), PortRef(3, 1)),
        SwitchLink(3, PortRef(2, 2), PortRef(3, 2)),
    ]
    return NetworkTopology(
        num_switches=4,
        ports_per_switch=4,
        node_attachment=[PortRef(s, 0) for s in range(4)],
        links=links,
    )


class TestBfsTree:
    def test_line_levels(self):
        tree = build_bfs_tree(line_topology())
        assert tree.root == 0
        assert tree.level == (0, 1, 2, 3)
        assert tree.parent == (-1, 0, 1, 2)

    def test_diamond_levels(self):
        tree = build_bfs_tree(diamond_topology())
        assert tree.level == (0, 1, 1, 2)
        assert tree.parent[3] == 1  # tie between sw1/sw2 broken by id

    def test_children_and_depth(self):
        tree = build_bfs_tree(diamond_topology())
        assert tree.children(0) == [1, 2]
        assert tree.depth() == 2

    def test_disconnected_raises(self):
        topo = NetworkTopology(2, 4, [], [])
        with pytest.raises(ValueError, match="disconnected"):
            build_bfs_tree(topo)

    def test_bad_root_raises(self):
        with pytest.raises(ValueError):
            build_bfs_tree(line_topology(), root=99)


class TestUpDownOrientation:
    def test_line_orientation_points_to_root(self):
        topo = line_topology()
        rt = UpDownRouting.build(topo)
        for lk in topo.links:
            # up end is the lower-numbered (closer to root) switch
            assert rt.up_end_switch(lk) == min(lk.a.switch, lk.b.switch)

    def test_same_level_tie_break_by_id(self):
        # Triangle: root 0, switches 1 and 2 both level 1, link between them.
        topo = NetworkTopology(
            3,
            4,
            [PortRef(s, 0) for s in range(3)],
            [
                SwitchLink(0, PortRef(0, 1), PortRef(1, 1)),
                SwitchLink(1, PortRef(0, 2), PortRef(2, 1)),
                SwitchLink(2, PortRef(1, 2), PortRef(2, 2)),
            ],
        )
        rt = UpDownRouting.build(topo)
        cross = topo.links[2]
        assert rt.up_end_switch(cross) == 1

    def test_up_links_form_dag(self):
        # No directed cycle in the up orientation for random topologies.
        for seed in range(5):
            topo = generate_irregular_topology(SimParams(), seed=seed)
            rt = UpDownRouting.build(topo)
            # Kahn's algorithm over "up" edges (edge from down end -> up end).
            indeg = {s: 0 for s in range(topo.num_switches)}
            edges = []
            for lk in topo.links:
                up = rt.up_end_switch(lk)
                down = lk.other_end(up).switch
                edges.append((down, up))
                indeg[up] += 1
            ready = [s for s, d in indeg.items() if d == 0]
            seen = 0
            while ready:
                s = ready.pop()
                seen += 1
                for a, b in edges:
                    if a == s:
                        indeg[b] -= 1
                        if indeg[b] == 0:
                            ready.append(b)
            assert seen == topo.num_switches, "up orientation has a cycle"


class TestRoutingTables:
    def test_line_distance(self):
        rt = UpDownRouting.build(line_topology())
        assert rt.distance(0, 3) == 3
        assert rt.distance(3, 0) == 3
        assert rt.distance(2, 2) == 0

    def test_next_hops_minimal(self):
        rt = UpDownRouting.build(diamond_topology())
        hops = rt.next_hops(0, Phase.UP, 3)
        # From the root both middle switches lie on 2-hop routes.
        assert {h.to_switch for h in hops} == {1, 2}
        assert all(h.next_phase is Phase.DOWN for h in hops)

    def test_no_up_after_down(self):
        rt = UpDownRouting.build(diamond_topology())
        # In DOWN phase at sw1, destination sw2 must not be directly
        # reachable by going back up through the root.
        assert rt.reachable(1, Phase.DOWN, 2) is False or rt.distance(
            1, 2, Phase.DOWN
        ) > rt.distance(1, 2, Phase.UP)

    def test_all_pairs_reachable_in_up_phase(self):
        for seed in range(4):
            topo = generate_irregular_topology(SimParams(), seed=seed)
            rt = UpDownRouting.build(topo)
            for s in range(topo.num_switches):
                for d in range(topo.num_switches):
                    assert rt.reachable(s, Phase.UP, d)


class TestPaths:
    def test_shortest_path_matches_distance(self):
        for seed in range(4):
            topo = generate_irregular_topology(SimParams(), seed=seed)
            rt = UpDownRouting.build(topo)
            for s in range(topo.num_switches):
                for d in range(topo.num_switches):
                    p = shortest_path_links(rt, s, d)
                    assert len(p) == rt.distance(s, d)
                    assert is_legal_path(rt, s, p)

    def test_all_minimal_paths_legal_and_minimal(self):
        topo = diamond_topology()
        rt = UpDownRouting.build(topo)
        paths = all_minimal_paths(rt, 3, 0)
        assert len(paths) == 2
        for p in paths:
            assert len(p) == 2
            assert is_legal_path(rt, 3, p)

    def test_is_legal_path_rejects_up_after_down(self):
        topo = diamond_topology()
        rt = UpDownRouting.build(topo)
        # 1 -> 0 (up) -> 2 (down) -> 3 (down) is legal;
        # 1 -> 3 (down) -> 2 (up!) is not.
        l_03 = topo.links[1]
        l_13 = topo.links[2]
        l_23 = topo.links[3]
        l_01 = topo.links[0]
        assert is_legal_path(rt, 1, [l_01, l_03, l_23])
        assert not is_legal_path(rt, 1, [l_13, l_23])

    def test_is_legal_path_rejects_discontiguous(self):
        topo = diamond_topology()
        rt = UpDownRouting.build(topo)
        assert not is_legal_path(rt, 0, [topo.links[2]])

    def test_path_switches(self):
        topo = line_topology()
        assert path_switches(0, topo.links) == [0, 1, 2, 3]


class TestReachability:
    def test_root_reaches_everything(self):
        for seed in range(4):
            topo = generate_irregular_topology(SimParams(), seed=seed)
            rt = UpDownRouting.build(topo)
            reach = ReachabilityTable.build(rt)
            assert reach.down_reach(rt.tree.root) == frozenset(
                range(topo.num_nodes)
            )

    def test_line_reach_sets(self):
        topo = line_topology()
        rt = UpDownRouting.build(topo)
        reach = ReachabilityTable.build(rt)
        assert reach.down_reach(3) == frozenset({3})
        assert reach.down_reach(2) == frozenset({2, 3})
        assert reach.down_reach(0) == frozenset({0, 1, 2, 3})

    def test_port_reach_down_only(self):
        topo = line_topology()
        rt = UpDownRouting.build(topo)
        reach = ReachabilityTable.build(rt)
        lk01 = topo.links[0]
        assert reach.port_reach(0, lk01) == frozenset({1, 2, 3})
        with pytest.raises(ValueError, match="up port"):
            reach.port_reach(1, lk01)

    def test_masks_roundtrip(self):
        dests = {1, 5, 9}
        assert decode_mask(header_mask(dests)) == frozenset(dests)

    def test_port_reach_mask_matches_set(self):
        topo = line_topology()
        rt = UpDownRouting.build(topo)
        reach = ReachabilityTable.build(rt)
        lk12 = topo.links[1]
        assert decode_mask(reach.port_reach_mask(1, lk12)) == reach.port_reach(1, lk12)

    def test_covers(self):
        topo = line_topology()
        rt = UpDownRouting.build(topo)
        reach = ReachabilityTable.build(rt)
        assert reach.covers(0, {1, 3})
        assert not reach.covers(2, {0})
