"""Observability invariants: TraceLog ring-buffer semantics and agreement
between the utilization monitor's flit accounting and the event trace.

These are the instruments the fuzz harness and the load experiments lean on;
if the trace silently lost records or the monitor double-counted flits, both
would report garbage without failing anywhere else.
"""

import pytest

from repro.multicast import make_scheme
from repro.params import SimParams
from repro.sim.monitor import NetworkMonitor
from repro.sim.network import SimNetwork
from repro.sim.tracelog import TraceLog
from repro.topology.irregular import generate_irregular_topology


# ----------------------------------------------------------------------
# TraceLog ring buffer
# ----------------------------------------------------------------------
def _fill(log, count, start=0):
    for i in range(start, start + count):
        log.emit(float(i), "grant", f"w{i}", f"detail-{i}")


def test_tracelog_at_exact_capacity_drops_nothing():
    log = TraceLog(capacity=16)
    _fill(log, 16)
    assert len(log) == 16
    assert log.dropped == 0
    assert [r.detail for r in log.records()] == [f"detail-{i}" for i in range(16)]


def test_tracelog_past_capacity_keeps_exactly_the_tail():
    log = TraceLog(capacity=16)
    _fill(log, 16)
    log.emit(16.0, "grant", "w16", "detail-16")
    assert len(log) == 16
    assert log.dropped == 1
    assert [r.detail for r in log.records()] == [
        f"detail-{i}" for i in range(1, 17)
    ]


def test_tracelog_eviction_count_matches_overflow():
    log = TraceLog(capacity=8)
    _fill(log, 30)
    assert len(log) == 8
    assert log.dropped == 30 - 8
    assert [r.time for r in log.records()] == [float(i) for i in range(22, 30)]


def test_tracelog_filters_and_clear():
    log = TraceLog(capacity=100)
    log.emit(0.0, "grant", "worm-a", "x")
    log.emit(1.0, "deliver", "worm-a", "node 3")
    log.emit(2.0, "deliver", "worm-b", "node 4")
    assert len(log.records(event="deliver")) == 2
    assert len(log.records(event="deliver", worm_contains="worm-b")) == 1
    assert "3 records" in log.format()
    log.clear()
    assert len(log) == 0


def test_tracelog_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        TraceLog(capacity=0)


# ----------------------------------------------------------------------
# Monitor vs trace agreement on a deterministic two-worm scenario
# ----------------------------------------------------------------------
def test_monitor_flit_accounting_agrees_with_trace():
    params = SimParams(num_switches=4, num_nodes=8)
    topo = generate_irregular_topology(params, seed=3)
    net = SimNetwork(topo, params)
    net.trace = TraceLog()
    mon = NetworkMonitor(net)

    scheme = make_scheme("tree")
    res_a = scheme.execute(net, 0, [2, 5, 7])
    res_b = scheme.execute(net, 1, [3, 6])
    net.run()
    assert res_a.complete and res_b.complete

    report = mon.report()
    grants = net.trace.records(event="grant")
    deliveries = net.trace.records(event="deliver")
    releases = net.trace.records(event="release")

    # Every hop is granted exactly once and released exactly once, and each
    # release books the worm's full length onto the channel -- so the
    # monitor's flit total must equal packet_flits per traced grant.
    assert len(releases) == len(grants)
    assert report.total_flits_moved == params.packet_flits * len(grants)

    # Delivery events line up one-to-one with the schemes' delivery maps.
    assert len(deliveries) == len(res_a.delivery_times) + len(res_b.delivery_times)
    delivered_nodes = sorted(
        int(r.detail.removeprefix("node ")) for r in deliveries
    )
    assert delivered_nodes == sorted(
        list(res_a.delivery_times) + list(res_b.delivery_times)
    )

    # The measurement window covers the whole run and saw real traffic.
    assert report.window == pytest.approx(net.engine.now)
    assert report.max_link_utilization > 0
