"""Tier-1 replay of the committed fuzz regression corpus.

Every entry under ``tests/fuzz_corpus/`` is a minimized scenario the fuzzing
harness considered worth pinning (see docs/fuzzing.md for how nightly
failures get triaged into entries).  Replaying them through the full oracle
suite on every PR turns each one into a permanent regression test: a
reintroduced delivery/legality/conservation/differential bug fails here with
a minimal reproducer already attached.
"""

import pathlib

import pytest

from repro.fuzz import load_corpus, load_entry, run_oracles
from repro.fuzz.scenario import FuzzScenario

CORPUS_DIR = pathlib.Path(__file__).parent / "fuzz_corpus"
ENTRIES = load_corpus(CORPUS_DIR)


def test_corpus_is_seeded():
    assert len(ENTRIES) >= 6, "corpus must hold at least 6 scenarios"


def test_corpus_includes_a_degraded_topology():
    assert any(sc.degraded_links for _, sc in ENTRIES), (
        "at least one corpus entry must come from a link-degraded topology"
    )


def test_corpus_includes_chaos_scenarios():
    chaos = [sc for _, sc in ENTRIES if sc.fault_schedule]
    assert len(chaos) >= 2, (
        "corpus must hold at least 2 runtime-fault (chaos) scenarios"
    )
    assert any(len(sc.fault_schedule) >= 2 for sc in chaos), (
        "at least one chaos entry must arm multiple faults "
        "(sequential reconfigurations)"
    )


def test_corpus_entries_are_minimized_small():
    for path, sc in ENTRIES:
        assert sc.topo.num_switches <= 8, path.name
        assert len(sc.dests) <= 4, path.name


@pytest.mark.parametrize(
    "path", [p for p, _ in ENTRIES], ids=[p.stem for p, _ in ENTRIES]
)
def test_corpus_entry_passes_every_oracle(path):
    report = run_oracles(load_entry(path))
    assert report.ok, report.render()


@pytest.mark.parametrize(
    "path", [p for p, _ in ENTRIES], ids=[p.stem for p, _ in ENTRIES]
)
def test_corpus_entry_roundtrips_and_matches_filename(path):
    scenario = load_entry(path)
    again = FuzzScenario.from_dict(scenario.to_dict())
    assert again.digest() == scenario.digest()
    assert scenario.digest()[:12] in path.name, (
        "corpus file name must carry the scenario's content digest"
    )
