"""Tier-1 replay of the committed fuzz regression corpus.

Every entry under ``tests/fuzz_corpus/`` is a minimized scenario the fuzzing
harness considered worth pinning (see docs/fuzzing.md for how nightly
failures get triaged into entries).  Replaying them through the full oracle
suite on every PR turns each one into a permanent regression test: a
reintroduced delivery/legality/conservation/differential bug fails here with
a minimal reproducer already attached.
"""

import pathlib

import pytest

from repro.analyze.epochs import verify_scenario_epochs
from repro.fuzz import load_corpus, load_entry, run_oracles
from repro.fuzz.scenario import FuzzScenario
from repro.routing.deadlock import verify_escape_deadlock_free
from repro.routing.updown import UpDownRouting

CORPUS_DIR = pathlib.Path(__file__).parent / "fuzz_corpus"
ENTRIES = load_corpus(CORPUS_DIR)


def test_corpus_is_seeded():
    assert len(ENTRIES) >= 6, "corpus must hold at least 6 scenarios"


def test_corpus_includes_a_degraded_topology():
    assert any(sc.degraded_links for _, sc in ENTRIES), (
        "at least one corpus entry must come from a link-degraded topology"
    )


def test_corpus_includes_chaos_scenarios():
    chaos = [sc for _, sc in ENTRIES if sc.fault_schedule]
    assert len(chaos) >= 2, (
        "corpus must hold at least 2 runtime-fault (chaos) scenarios"
    )
    assert any(len(sc.fault_schedule) >= 2 for sc in chaos), (
        "at least one chaos entry must arm multiple faults "
        "(sequential reconfigurations)"
    )


def test_corpus_includes_a_collectives_scenario():
    # At least one entry must drive the open-loop workload path, and it
    # must mix all three collective kinds so the oracle's per-kind
    # accounting (delivered counts, drain completeness) is pinned.
    mixes = [
        {kind for _t, kind, _r in sc.collective_ops}
        for _, sc in ENTRIES
        if sc.collective_ops
    ]
    assert mixes, "corpus must hold a collective-workload scenario"
    assert any(
        m >= {"broadcast", "allreduce", "barrier"} for m in mixes
    ), "a collectives entry must mix all three kinds"


def test_corpus_entries_are_minimized_small():
    for path, sc in ENTRIES:
        assert sc.topo.num_switches <= 8, path.name
        assert len(sc.dests) <= 4, path.name


@pytest.mark.parametrize(
    "path", [p for p, _ in ENTRIES], ids=[p.stem for p, _ in ENTRIES]
)
def test_corpus_entry_passes_every_oracle(path):
    report = run_oracles(load_entry(path))
    assert report.ok, report.render()


def test_corpus_includes_multilane_scenarios():
    lane_counts = {sc.params.vc_count for _, sc in ENTRIES}
    assert {2, 4} <= lane_counts, (
        "corpus must hold minimized virtual-channel scenarios at 2 and 4 "
        f"lanes; found lane counts {sorted(lane_counts)}"
    )


@pytest.mark.parametrize(
    "path", [p for p, _ in ENTRIES], ids=[p.stem for p, _ in ENTRIES]
)
def test_corpus_topology_escape_lane_cdg_is_acyclic(path):
    # Every corpus topology must admit escape-VC routing: lane 0's
    # restricted channel dependency graph is acyclic (the Duato escape
    # argument's structural premise).
    sc = load_entry(path)
    rt = UpDownRouting.build(sc.topo, orientation=sc.params.routing_tree)
    verify_escape_deadlock_free(sc.topo, rt, vc_count=2)


@pytest.mark.parametrize(
    "path", [p for p, _ in ENTRIES], ids=[p.stem for p, _ in ENTRIES]
)
def test_corpus_chaos_epochs_have_no_escape_cycles(path):
    # ... and the premise must survive every reconfiguration epoch of the
    # entry's fault schedule, not just the intact topology.
    problems = verify_scenario_epochs(load_entry(path))
    cycles = [p for p in problems if p.kind == "escape-cdg-cycle"]
    assert not cycles, cycles


@pytest.mark.parametrize(
    "path", [p for p, _ in ENTRIES], ids=[p.stem for p, _ in ENTRIES]
)
def test_corpus_entry_roundtrips_and_matches_filename(path):
    scenario = load_entry(path)
    again = FuzzScenario.from_dict(scenario.to_dict())
    assert again.digest() == scenario.digest()
    assert scenario.digest()[:12] in path.name, (
        "corpus file name must carry the scenario's content digest"
    )
