"""Dynamic multicast groups: churn repair, bounded tables, paired harness."""

import pytest

from repro.groups import (
    ChurnEvent,
    DynamicGroupManager,
    SwitchMulticastTables,
    churn_stream,
    graft_path_plan,
    graft_tree_plan,
    path_plan_cost,
    prune_path_plan,
    run_paired_churn,
)
from repro.multicast.pathworm import verify_plan
from repro.multicast.treeworm import plan_tree_worm, verify_tree_plan
from repro.params import SimParams
from repro.sim.network import SimNetwork
from repro.topology import faults
from repro.topology.irregular import generate_irregular_topology


def default_net(seed=3, **kw) -> SimNetwork:
    p = SimParams(**kw)
    return SimNetwork(generate_irregular_topology(p, seed=seed), p)


def drain(net):
    net.engine.run(max_events=500_000)


class TestLeaveRegression:
    """A rejected leave must leave the group completely untouched."""

    @pytest.mark.parametrize("scheme", ["path", "tree", "ni"])
    def test_failed_leave_leaves_members_unchanged(self, scheme):
        net = default_net()
        g = DynamicGroupManager(net, default_scheme=scheme).create(0, [3, 9])
        g.leave(9)
        before_members = g.members
        before_plan = g._state.plan if g._state else None
        before_stats = dict(g.stats.as_dict())
        with pytest.raises(ValueError, match="not a member"):
            g.leave(17)  # valid node, not a member
        with pytest.raises(ValueError, match="last member"):
            g.leave(3)
        assert g.members == before_members == frozenset({3})
        if g._state is not None:
            assert g._state.plan is before_plan
        assert g.stats.as_dict() == before_stats
        res = g.send()
        drain(net)
        assert set(res.delivery_times) == {3}

    def test_unknown_node_leave_rejected_before_mutation(self):
        net = default_net()
        g = DynamicGroupManager(net).create(0, [3, 9, 17])
        with pytest.raises(ValueError):
            g.leave(999)
        assert g.members == frozenset({3, 9, 17})


class TestSortedMemberCache:
    """send() uses a cached sorted tuple; results stay byte-identical."""

    @pytest.mark.parametrize("scheme", ["path", "tree", "ni", "binomial"])
    def test_repeated_sends_byte_identical(self, scheme):
        net = default_net()
        g = DynamicGroupManager(net, default_scheme=scheme).create(
            0, [17, 3, 9]
        )
        r1 = g.send()
        drain(net)
        r2 = g.send()
        drain(net)
        assert g._sorted_members == (3, 9, 17)
        assert sorted(r1.delivery_times) == sorted(r2.delivery_times)
        assert r1.latency == r2.latency

    def test_cache_refreshed_on_churn(self):
        net = default_net()
        g = DynamicGroupManager(net, default_scheme="ni").create(0, [9, 3])
        assert g._sorted_members == (3, 9)
        g.join(21)
        assert g._sorted_members == (3, 9, 21)
        g.leave(3)
        assert g._sorted_members == (9, 21)
        res = g.send()
        drain(net)
        assert set(res.delivery_times) == {9, 21}


class TestKeyedInvalidation:
    """One group's churn never wipes a cache-sharing neighbour's plans."""

    @pytest.mark.parametrize("scheme", ["path", "tree"])
    def test_neighbour_plans_survive_churn(self, scheme):
        net = default_net()
        mgr = DynamicGroupManager(net, default_scheme=scheme)
        g = mgr.create(0, [3, 9])
        other = mgr.create(0, [4, 8])
        assert g.scheme is other.scheme  # shared instance, shared cache
        g.send()
        other.send()
        drain(net)
        per_net = g.scheme._plan_cache[net]

        def group_keys(dests):
            return {
                k for k in per_net
                if len(k[1]) >= 2 and k[1][1] == 0
                and all(
                    set(part) <= set(dests)
                    for part in k[1][2:] if isinstance(part, tuple)
                )
            }

        other_keys = group_keys((4, 8))
        assert other_keys
        g.join(21)
        assert other_keys <= set(per_net)  # neighbour survived
        assert ((net.routing_epoch, ("downdist",)) in per_net) == (
            scheme == "tree"
        )  # the shared table survives too

    def test_destroy_discards_only_that_group(self):
        net = default_net()
        mgr = DynamicGroupManager(net, default_scheme="path")
        g = mgr.create(0, [3, 9])
        other = mgr.create(0, [4, 8])
        g.send()
        other.send()
        drain(net)
        per_net = g.scheme._plan_cache[net]
        before = len(per_net)
        mgr.destroy(g.group_id)
        assert 0 < len(per_net) < before


class TestRepairFunctions:
    """Graft/prune plan surgery produces verifier-clean plans."""

    def test_path_graft_legal_and_covering(self):
        net = default_net()
        scheme_dests = [3, 9, 17]
        from repro.multicast.pathworm import plan_path_worms

        plan = plan_path_worms(net, 0, scheme_dests)
        patched = graft_path_plan(net, plan, 0, 21)
        assert patched is not None
        assert verify_plan(net.topo, net.routing, 0, [3, 9, 17, 21],
                           patched) == []

    def test_path_prune_legal_and_covering(self):
        net = default_net()
        from repro.multicast.pathworm import plan_path_worms

        plan = plan_path_worms(net, 0, [3, 9, 17, 21])
        for gone in (3, 9, 17, 21):
            patched = prune_path_plan(net, plan, 0, gone)
            if patched is None:
                continue  # legal fallback: caller replans
            keep = [d for d in (3, 9, 17, 21) if d != gone]
            assert verify_plan(net.topo, net.routing, 0, keep, patched) == []

    def test_path_prune_of_absent_node_replans(self):
        net = default_net()
        from repro.multicast.pathworm import plan_path_worms

        plan = plan_path_worms(net, 0, [3, 9])
        assert prune_path_plan(net, plan, 0, 21) is None

    def test_tree_graft_extends_and_verifies(self):
        net = default_net()
        plan = plan_tree_worm(net, net.topo.switch_of_node(0), [3])
        grown = graft_tree_plan(net, plan, (3, 9, 17, 21))
        assert verify_tree_plan(net, grown, [3, 9, 17, 21]) == []
        # the splice keeps the original climb as a prefix
        assert grown.up_switch_path[: len(plan.up_switch_path)] == \
            plan.up_switch_path

    def test_graft_cost_never_below_fresh_is_bounded(self):
        # Patched path plans may cost more than fresh ones; the quality
        # bound is what reins that in.  Sanity: a graft adds cost only.
        net = default_net()
        from repro.multicast.pathworm import plan_path_worms

        plan = plan_path_worms(net, 0, [3, 9])
        patched = graft_path_plan(net, plan, 0, 17)
        assert patched is not None
        assert path_plan_cost(patched) >= path_plan_cost(plan)


class TestDynamicGroupChurn:
    def test_join_of_root_raises(self):
        net = default_net()
        g = DynamicGroupManager(net).create(0, [3, 9])
        with pytest.raises(ValueError, match="root"):
            g.join(0)
        assert g.members == frozenset({3, 9})

    @pytest.mark.parametrize("scheme", ["path", "tree"])
    def test_join_leave_interleaved_with_epoch_bump(self, scheme):
        net = default_net()
        g = DynamicGroupManager(net, default_scheme=scheme).create(0, [3, 9])
        g.join(17)
        epoch_before = g.plan_epoch
        assert epoch_before == net.routing_epoch
        removable = faults.removable_links(net.topo)
        net.reconfigure(faults.remove_link(net.topo, removable[0]))
        assert net.routing_epoch != epoch_before
        # The patched plan is stale; the next change replans on the new
        # orientation instead of patching a dead epoch.
        g.leave(3)
        assert g.stats.epoch_replans == 1
        assert g.plan_epoch == net.routing_epoch
        res = g.send()
        drain(net)
        assert res.complete and set(res.delivery_times) == {9, 17}

    @pytest.mark.parametrize("scheme", ["path", "tree"])
    def test_epoch_bump_between_sends_refreshes(self, scheme):
        net = default_net()
        g = DynamicGroupManager(net, default_scheme=scheme).create(0, [3, 9])
        g.send()
        drain(net)
        removable = faults.removable_links(net.topo)
        net.reconfigure(faults.remove_link(net.topo, removable[0]))
        res = g.send()
        drain(net)
        assert g.stats.send_refreshes == 1
        assert res.complete and set(res.delivery_times) == {3, 9}
        # membership survived the reconfiguration untouched
        assert g.members == frozenset({3, 9})

    @pytest.mark.parametrize("scheme", ["path", "tree"])
    def test_leave_then_rejoin_reuses_graft_point(self, scheme):
        net = default_net()
        g = DynamicGroupManager(net, default_scheme=scheme).create(
            0, [3, 9, 17]
        )
        cost_before = g.plan_cost
        foot_before = g.plan_footprint
        g.leave(17)
        g.join(17)
        # Same membership again: the regrafted plan must cover the same
        # set legally and land back on a comparable footprint.
        assert g.members == frozenset({3, 9, 17})
        assert g.stats.verify_failures == 0
        res = g.send()
        drain(net)
        assert set(res.delivery_times) == {3, 9, 17}
        if g.stats.replans == 0:
            # pure patch round-trip: the graft reattached on the pruned
            # plan, so the footprint stays within the original's reach
            assert g.plan_cost is not None and cost_before is not None
            assert set(g.plan_footprint) >= set()  # well-formed
            assert foot_before is not None

    def test_capped_tree_is_replan_kind(self):
        net = default_net()
        g = DynamicGroupManager(net, default_scheme="tree").create(
            0, [3, 9], max_header_dests=2
        )
        g.join(17)
        assert g.stats.replans >= 1
        assert g.stats.grafts == 0

    def test_stateless_patches_are_free(self):
        net = default_net()
        g = DynamicGroupManager(
            net, default_scheme="binomial", table_capacity=4
        ).create(0, [3, 9])
        assert g.tables is None  # NI-based: never charged
        g.join(17)
        g.leave(3)
        assert g.stats.grafts == 1 and g.stats.prunes == 1
        assert g.stats.replans == 0


class TestSwitchTables:
    def test_lru_evicts_and_reinstalls(self):
        t = SwitchMulticastTables(1, capacity=2, policy="lru")
        t.install(0, (0,))
        t.install(1, (0,))
        t.touch(0, (0,))          # group 0 now most recent
        t.install(2, (0,))        # evicts group 1 (LRU)
        assert t.holds(0, 0) and t.holds(2, 0) and not t.holds(1, 0)
        assert t.stats.evictions == 1
        t.touch(1, (0,))          # miss: re-install, evicting group 0
        assert t.stats.reinstalls == 1
        assert t.holds(1, 0)

    def test_lfu_protects_hot_entries(self):
        t = SwitchMulticastTables(1, capacity=2, policy="lfu")
        t.install(0, (0,))
        t.install(1, (0,))
        for _ in range(5):
            t.touch(0, (0,))
        t.touch(1, (0,))
        t.install(2, (0,))        # evicts group 1 (fewer uses)
        assert t.holds(0, 0) and not t.holds(1, 0)

    def test_aggregate_never_evicts(self):
        t = SwitchMulticastTables(1, capacity=1, policy="aggregate")
        t.install(0, (0,))
        t.install(1, (0,))
        t.install(2, (0,))
        assert t.stats.evictions == 0
        assert t.stats.aggregations == 2
        assert t.coarse_entries() == 1
        assert t.holds(0, 0) and t.holds(1, 0) and t.holds(2, 0)
        assert t.occupancy(0) == 1

    def test_release_frees_slots(self):
        t = SwitchMulticastTables(2, capacity=2, policy="lru")
        t.install(0, (0, 1))
        t.release(0)
        assert t.occupancy(0) == 0 and t.occupancy(1) == 0
        assert t.stats.releases == 2

    def test_install_replaces_old_footprint(self):
        t = SwitchMulticastTables(3, capacity=2, policy="lru")
        t.install(0, (0, 1))
        t.install(0, (2,))        # replan moved the plan off switches 0/1
        assert not t.holds(0, 0) and not t.holds(0, 1)
        assert t.holds(0, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            SwitchMulticastTables(1, capacity=0)
        with pytest.raises(ValueError):
            SwitchMulticastTables(1, capacity=1, policy="mru")


class TestChurnStream:
    def test_deterministic_and_valid(self):
        pool = tuple(range(1, 20))
        a = churn_stream(7, 50, pool, 0, (3, 9), 0.5)
        b = churn_stream(7, 50, pool, 0, (3, 9), 0.5)
        assert a == b
        members = {3, 9}
        for ev in a:
            assert isinstance(ev, ChurnEvent)
            assert ev.node != 0
            if ev.op == "join":
                assert ev.node not in members
                members.add(ev.node)
            else:
                assert ev.node in members and len(members) > 1
                members.remove(ev.node)

    def test_rate_zero_is_empty_and_rate_one_is_dense(self):
        pool = tuple(range(1, 20))
        assert churn_stream(7, 50, pool, 0, (3, 9), 0.0) == ()
        dense = churn_stream(7, 50, pool, 0, (3, 9), 1.0)
        assert len(dense) == 50

    def test_streams_share_prefix_across_rates(self):
        # The gate and op draws are consumed every step, so two rates
        # agree event-for-event until the first step where only the
        # higher rate fires (after which its extra node draws advance
        # the stream).
        pool = tuple(range(1, 20))
        low = churn_stream(7, 80, pool, 0, (3, 9), 0.2)
        high = churn_stream(7, 80, pool, 0, (3, 9), 0.9)
        first_divergence = min(
            (ev.step for ev in high
             if ev.step not in {e.step for e in low}),
            default=81,
        )
        low_prefix = [ev for ev in low if ev.step < first_divergence]
        high_prefix = [ev for ev in high if ev.step < first_divergence]
        assert low_prefix == high_prefix
        assert len(high) >= len(low)


class TestPairedChurn:
    @pytest.mark.parametrize("scheme", ["path", "tree", "ni"])
    def test_delivery_identity_and_replan_bound(self, scheme):
        rep = run_paired_churn(
            SimParams(), scheme, seed=11, steps=30, group_size=6,
            churn_rate=0.8, table_capacity=4,
        )
        assert rep.delivery_identical, rep.mismatches
        assert rep.verify_failures == 0
        assert rep.patched_stats["replan_fraction"] <= 0.2
        if scheme == "ni":
            assert rep.twin_replans == 0  # stateless twin has no plan
        else:
            assert rep.twin_replans == rep.events

    def test_digest_replays_byte_identical(self):
        kw = dict(seed=23, steps=20, group_size=4, churn_rate=0.6,
                  table_capacity=4)
        a = run_paired_churn(SimParams(), "tree", **kw)
        b = run_paired_churn(SimParams(), "tree", **kw)
        assert a.digest() == b.digest()
        assert a.to_value() == b.to_value()

    def test_fault_steps_bump_epochs_not_membership(self):
        rep = run_paired_churn(
            SimParams(), "tree", seed=11, steps=20, group_size=5,
            churn_rate=0.7, fault_steps=(5, 12),
        )
        assert rep.epoch_bumps >= 1
        assert rep.delivery_identical, rep.mismatches

    def test_group_size_validation(self):
        with pytest.raises(ValueError):
            run_paired_churn(SimParams(), "tree", seed=1, steps=5,
                             group_size=0, churn_rate=0.5)


class TestFuzzChurnIntegration:
    def test_generator_and_oracles_exactly_once_under_churn(self):
        from repro.fuzz.generator import generate_scenario
        from repro.fuzz.oracles import run_oracles

        checked = 0
        for i in range(12):
            sc = generate_scenario(5, i, fault_rate=0.0, churn_rate=1.0)
            if not sc.churn_ops:
                continue
            report = run_oracles(sc)
            assert report.ok, report.render()
            checked += 1
            if checked >= 3:
                break
        assert checked >= 1

    def test_scenario_churn_round_trip_and_digest_stability(self):
        from repro.fuzz.generator import generate_scenario
        from repro.fuzz.scenario import FuzzScenario

        sc = generate_scenario(5, 0, churn_rate=0.0)
        assert "churn_ops" not in sc.to_dict()
        for i in range(30):
            s = generate_scenario(5, i, churn_rate=1.0)
            if s.churn_ops:
                s2 = FuzzScenario.from_dict(s.to_dict())
                assert s2.churn_ops == s.churn_ops
                assert s2.digest() == s.digest()
                break
        else:
            pytest.fail("no churn scenario drawn in 30 tries")

    def test_scenario_validator_rejects_bad_streams(self):
        from repro.fuzz.generator import generate_scenario

        sc = generate_scenario(5, 0, churn_rate=0.0)
        with pytest.raises(ValueError):
            sc.with_changes(churn_ops=(("leave", sc.source),))
        with pytest.raises(ValueError):
            sc.with_changes(churn_ops=(("join", sc.dests[0]),))
        with pytest.raises(ValueError):
            sc.with_changes(churn_ops=(("frob", 1),))

    def test_shrink_filters_churn_against_dests(self):
        from repro.fuzz.shrink import _filter_churn

        ops = (("leave", 3), ("join", 5), ("leave", 5), ("leave", 9))
        # the final leave would empty the group, so the filter drops it
        assert _filter_churn(ops, 0, (3, 9), 20) == ops[:3]
        # dropping dest 3 invalidates its leave; the rest replays cleanly
        assert _filter_churn(ops, 0, (9,), 20) == (
            ("join", 5), ("leave", 5))
