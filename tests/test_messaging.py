"""Unit tests for host/NI send-receive pipelines and FPFS forwarding."""

import pytest

from repro.params import SimParams
from repro.sim.messaging import (
    HostReceiver,
    SmartNIForwarder,
    _FpfsProgram,
    host_send,
    smart_ni_source_send,
)
from repro.sim.network import SimNetwork
from tests.topo_fixtures import make_line


def net_line3(**kw) -> SimNetwork:
    return SimNetwork(make_line(3), SimParams(**kw))


def wire_unicast(net, src, dst, receiver):
    steer = net.unicast_steer(dst)

    def launch():
        net.hosts[src].launch_worm(
            steer, None, on_delivered=lambda _n, _t: receiver.packet_arrived()
        )

    return launch


class TestConventionalPipeline:
    def test_single_packet_end_to_end_exact(self):
        net = net_line3()
        p = net.params
        delivered = []
        recv = HostReceiver(net.hosts[2], 1, delivered.append)
        host_send(net.hosts[0], [wire_unicast(net, 0, 2, recv)])
        net.run()
        dma = p.packet_flits / p.io_bus_flits_per_cycle
        expected = 2 * p.o_host + 2 * dma + 2 * p.o_ni + 137
        assert delivered == [pytest.approx(expected)]

    def test_multi_packet_receive_counts(self):
        net = net_line3(message_packets=3)
        delivered = []
        recv = HostReceiver(net.hosts[2], 3, delivered.append)
        launchers = [wire_unicast(net, 0, 2, recv) for _ in range(3)]
        host_send(net.hosts[0], launchers)
        net.run()
        assert len(delivered) == 1
        net.assert_quiescent()

    def test_ni_overhead_paid_once_per_message(self):
        # Latency difference between a 1-packet and a 2-packet message must
        # be dominated by wire/DMA time, not an extra o_ni block.
        lats = {}
        for m in (1, 2):
            net = net_line3(message_packets=m)
            done = []
            recv = HostReceiver(net.hosts[2], m, done.append)
            host_send(
                net.hosts[0], [wire_unicast(net, 0, 2, recv) for _ in range(m)]
            )
            net.run()
            lats[m] = done[0]
        delta = lats[2] - lats[1]
        p = SimParams()
        assert delta < p.o_ni  # far less than another NI block
        # The second packet's wire time hides inside the receiver's o_ni
        # block; only its two DMA crossings remain on the critical path.
        assert delta == pytest.approx(2 * p.packet_flits / p.io_bus_flits_per_cycle)

    def test_on_injected_fires_after_ni(self):
        net = net_line3()
        events = []
        recv = HostReceiver(net.hosts[2], 1, lambda t: events.append(("recv", t)))
        host_send(
            net.hosts[0],
            [wire_unicast(net, 0, 2, recv)],
            on_injected=lambda: events.append(("injected", net.engine.now)),
        )
        net.run()
        assert [e[0] for e in events] == ["injected", "recv"]
        p = net.params
        assert events[0][1] == pytest.approx(
            p.o_host + p.packet_flits / p.io_bus_flits_per_cycle + p.o_ni
        )

    def test_empty_message_rejected(self):
        net = net_line3()
        with pytest.raises(ValueError):
            host_send(net.hosts[0], [])
        with pytest.raises(ValueError):
            HostReceiver(net.hosts[0], 0, lambda t: None)

    def test_too_many_arrivals_rejected(self):
        net = net_line3()
        recv = HostReceiver(net.hosts[2], 1, lambda t: None)
        recv.packet_arrived()
        with pytest.raises(RuntimeError, match="more packets"):
            recv.packet_arrived()


class TestFpfsProgram:
    def record_launchers(self, net, m, k, log):
        return [
            [
                (lambda p=p, c=c: log.append((p, c, net.engine.now)))
                for c in range(k)
            ]
            for p in range(m)
        ]

    def test_packet_major_order_with_interleaved_setup(self):
        net = net_line3()
        log = []
        prog = _FpfsProgram(
            net.hosts[0], self.record_launchers(net, 2, 2, log), 0
        )
        for p in range(2):
            prog.packet_available(p)
        prog.start()
        net.run()
        o = net.params.o_ni
        # setup c0 -> launch (0,0) @o; setup c1 -> launch (0,1) @2o;
        # launches (1,0), (1,1) immediately after (no further NI blocks).
        assert log == [
            (0, 0, o),
            (0, 1, 2 * o),
            (1, 0, 2 * o),
            (1, 1, 2 * o),
        ]

    def test_suspends_until_packet_arrives(self):
        net = net_line3()
        log = []
        prog = _FpfsProgram(
            net.hosts[0], self.record_launchers(net, 2, 1, log), 0
        )
        prog.packet_available(0)
        prog.start()
        net.engine.at(5000, lambda: prog.packet_available(1))
        net.run()
        assert log[0][:2] == (0, 0)
        assert log[1] == (1, 0, 5000)

    def test_prologue_blocks_run_first(self):
        net = net_line3()
        log = []
        prog = _FpfsProgram(
            net.hosts[0], self.record_launchers(net, 1, 1, log), 2
        )
        prog.packet_available(0)
        prog.start()
        net.run()
        # 2 prologue blocks + 1 setup block before the only launch.
        assert log == [(0, 0, 3 * net.params.o_ni)]

    def test_per_packet_cost_serialises_launches(self):
        net = net_line3(o_ni_per_packet=100)
        log = []
        prog = _FpfsProgram(
            net.hosts[0], self.record_launchers(net, 2, 1, log), 0
        )
        for p in range(2):
            prog.packet_available(p)
        prog.start()
        net.run()
        o = net.params.o_ni
        assert log == [(0, 0, o + 100), (1, 0, o + 200)]

    def test_double_start_rejected(self):
        net = net_line3()
        prog = _FpfsProgram(net.hosts[0], [[lambda: None]], 0)
        prog.start()
        with pytest.raises(RuntimeError):
            prog.start()

    def test_on_done_fires_once(self):
        net = net_line3()
        done = []
        prog = _FpfsProgram(
            net.hosts[0], [[lambda: None]], 0, on_done=lambda: done.append(1)
        )
        prog.packet_available(0)
        prog.start()
        net.run()
        assert done == [1]


class TestSmartNIForwarder:
    def test_forwarding_precedes_host_delivery(self):
        # Interior node: replica launch must happen while the host is still
        # paying (or waiting for) its receive overhead.
        net = net_line3()
        events = []
        fwd = SmartNIForwarder(
            net.hosts[1],
            1,
            [[lambda: events.append(("launch", net.engine.now))]],
            on_delivered=lambda t: events.append(("host", t)),
        )
        fwd.packet_arrived()
        net.run()
        kinds = [e[0] for e in events]
        assert kinds == ["launch", "host"]
        launch_t = events[0][1]
        host_t = events[1][1]
        p = net.params
        assert launch_t == pytest.approx(2 * p.o_ni)  # recv + setup blocks
        # Host delivery needs DMA + o_host and is strictly later.
        assert host_t > launch_t

    def test_store_and_forward_waits_for_last_packet(self):
        net = net_line3(message_packets=2, ni_store_and_forward=True)
        launches = []
        fwd = SmartNIForwarder(
            net.hosts[1],
            2,
            [
                [lambda: launches.append((0, net.engine.now))],
                [lambda: launches.append((1, net.engine.now))],
            ],
            on_delivered=lambda t: None,
        )
        fwd.packet_arrived()
        net.run()
        assert launches == []  # nothing forwarded yet
        net.engine.at(net.engine.now + 1, fwd.packet_arrived)
        net.run()
        assert [p for p, _t in launches] == [0, 1]

    def test_fpfs_forwards_first_packet_immediately(self):
        net = net_line3(message_packets=2)
        launches = []
        fwd = SmartNIForwarder(
            net.hosts[1],
            2,
            [
                [lambda: launches.append((0, net.engine.now))],
                [lambda: launches.append((1, net.engine.now))],
            ],
            on_delivered=lambda t: None,
        )
        fwd.packet_arrived()
        net.run()
        assert [p for p, _t in launches] == [0]  # forwarded before pkt 2

    def test_row_count_must_match(self):
        net = net_line3()
        with pytest.raises(ValueError):
            SmartNIForwarder(net.hosts[1], 2, [[lambda: None]], lambda t: None)


class TestSmartSourceSend:
    def test_source_pipeline_timing(self):
        net = net_line3()
        p = net.params
        launches = []
        smart_ni_source_send(
            net.hosts[0],
            [[lambda: launches.append(net.engine.now)]],
        )
        net.run()
        dma = p.packet_flits / p.io_bus_flits_per_cycle
        # o_host + message DMA + one per-child setup block.
        assert launches == [pytest.approx(p.o_host + dma + p.o_ni)]

    def test_rejects_empty(self):
        net = net_line3()
        with pytest.raises(ValueError):
            smart_ni_source_send(net.hosts[0], [])
        with pytest.raises(ValueError):
            smart_ni_source_send(net.hosts[0], [[]])
