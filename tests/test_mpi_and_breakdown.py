"""Tests for the MPI facade and the latency decomposition."""

import random

import pytest

from repro.metrics.breakdown import decompose_multicast
from repro.mpi import Communicator
from repro.params import SimParams
from repro.sim.network import SimNetwork
from repro.topology.irregular import generate_irregular_topology


def default_net(seed=3, **kw) -> SimNetwork:
    p = SimParams(**kw)
    return SimNetwork(generate_irregular_topology(p, seed=seed), p)


class TestCommunicator:
    def test_size(self):
        comm = Communicator(default_net())
        assert comm.size == 32

    @pytest.mark.parametrize(
        "op", ["bcast", "barrier", "reduce", "allreduce", "gather", "scatter"]
    )
    def test_all_collectives_complete(self, op):
        comm = Communicator(default_net())
        lat = comm.time(op)
        assert lat > 0
        comm.net.assert_quiescent()

    def test_scheme_choice_affects_bcast(self):
        lat = {}
        for scheme in ("tree", "binomial"):
            comm = Communicator(default_net(), multicast_scheme=scheme)
            lat[scheme] = comm.time("bcast")
        assert lat["tree"] < lat["binomial"]

    def test_nonzero_root(self):
        comm = Communicator(default_net())
        assert comm.time("bcast", root=7) > 0

    def test_invalid_root_and_op(self):
        comm = Communicator(default_net())
        with pytest.raises(ValueError):
            comm.bcast(99)
        with pytest.raises(ValueError):
            comm.time("run")
        with pytest.raises(ValueError):
            comm.time("nonexistent")

    def test_subgroups_via_manager(self):
        comm = Communicator(default_net())
        g = comm.groups.create(0, [4, 9, 12])
        res = g.send()
        comm.run()
        assert res.complete


class TestBreakdown:
    def topo_params(self):
        p = SimParams()
        return generate_irregular_topology(p, seed=3), p

    @pytest.mark.parametrize("scheme", ["binomial", "ni", "path", "tree"])
    def test_components_sum(self, scheme):
        topo, p = self.topo_params()
        dests = random.Random(0).sample(range(1, 32), 10)
        b = decompose_multicast(topo, p, scheme, 0, dests)
        assert b.wire + b.software == pytest.approx(b.isolated_total)
        assert b.contention is None
        assert 0 < b.software_fraction < 1

    def test_software_dominates_at_paper_defaults(self):
        # The paper's Section 3.1 claim, quantified: software overhead is
        # the dominant component for every scheme at default parameters.
        topo, p = self.topo_params()
        dests = random.Random(1).sample(range(1, 32), 12)
        for scheme in ("binomial", "ni", "path", "tree"):
            b = decompose_multicast(topo, p, scheme, 0, dests)
            assert b.software_fraction > 0.5, scheme

    def test_tree_has_smallest_software_share(self):
        topo, p = self.topo_params()
        dests = random.Random(2).sample(range(1, 32), 12)
        sw = {
            s: decompose_multicast(topo, p, s, 0, dests).software
            for s in ("binomial", "ni", "path", "tree")
        }
        assert sw["tree"] == min(sw.values())
        assert sw["binomial"] == max(sw.values())

    def test_contention_component(self):
        topo, p = self.topo_params()
        dests = random.Random(3).sample(range(1, 32), 8)
        b = decompose_multicast(
            topo, p, "tree", 0, dests, measured_latency=20_000.0
        )
        assert b.contention == pytest.approx(20_000.0 - b.isolated_total)
        assert "contention" in str(b)
