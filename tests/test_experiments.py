"""Tests for the experiment harness (registry, sweeps, CLI, table output)."""

import pytest

from repro.experiments.base import ExperimentResult, Series, single_multicast_sweep
from repro.experiments.cli import main as cli_main
from repro.experiments.config import PROFILES, Profile
from repro.experiments.registry import EXPERIMENTS, PAPER_FIGURES, run_experiment
from repro.params import SimParams

TINY = Profile(
    name="tiny",
    n_topologies=1,
    trials_per_topology=1,
    group_sizes=(4, 8),
    loads=(0.02, 0.08),
    load_duration=20_000,
    load_warmup=2_000,
    load_degrees=(4,),
)


class TestRegistry:
    def test_all_paper_figures_registered(self):
        for fig in ("fig06", "fig07", "fig08", "fig09", "fig10", "fig11"):
            assert fig in EXPERIMENTS
            assert fig in PAPER_FIGURES

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("fig99")

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown profile"):
            run_experiment("fig06", "mega")

    def test_profiles_exist(self):
        assert set(PROFILES) == {"quick", "full"}


class TestSweepEngines:
    def test_single_sweep_structure(self):
        res = single_multicast_sweep(
            "t", "t", {"base": SimParams()}, TINY, schemes=("tree",)
        )
        assert isinstance(res, ExperimentResult)
        assert len(res.series) == 1
        s = res.series[0]
        assert s.label == "base/tree"
        assert s.x == [4.0, 8.0]
        assert all(y is not None and y > 0 for y in s.y)

    def test_group_sizes_clamped_to_node_count(self):
        res = single_multicast_sweep(
            "t", "t",
            {"small": SimParams(num_nodes=6, num_switches=2)},
            TINY,
            schemes=("tree",),
        )
        assert res.series[0].x == [4.0]  # 8 >= 6 nodes dropped

    def test_curve_lookup(self):
        res = ExperimentResult(
            "e", "t", "x", "y", [Series("a", [1.0], [2.0])]
        )
        assert res.curve("a").y == [2.0]
        with pytest.raises(KeyError):
            res.curve("b")

    def test_table_renders_with_mixed_x(self):
        res = ExperimentResult(
            "e",
            "mixed",
            "x",
            "y",
            [
                Series("a", [1.0, 2.0], [10.0, None]),
                Series("b", [2.0, 3.0], [30.0, 40.0]),
            ],
        )
        table = res.to_table()
        assert "sat" in table  # None renders as saturated
        assert "-" in table  # missing x support renders as dash


class TestFigureRuns:
    """Each paper figure regenerates at tiny scale with sane shapes."""

    @pytest.mark.parametrize("fig", ["fig06", "fig07", "fig08"])
    def test_single_figures_produce_all_series(self, fig):
        res = EXPERIMENTS[fig](TINY)
        assert res.exp_id == fig
        assert len(res.series) >= 6  # >=2 variants x 3 schemes
        for s in res.series:
            assert all(y is not None and y > 0 for y in s.y)

    def test_fig06_r_trend(self):
        res = EXPERIMENTS["fig06"](TINY)
        # NI latency falls monotonically with R at every set size.
        ni_05 = res.curve("R=0.5/ni").y
        ni_4 = res.curve("R=4/ni").y
        assert all(a > b for a, b in zip(ni_05, ni_4))
        # Tree-based is best within every variant.
        for r in ("R=0.5", "R=1", "R=2", "R=4"):
            tree = res.curve(f"{r}/tree").y
            path = res.curve(f"{r}/path").y
            assert all(t <= p for t, p in zip(tree, path))

    def test_fig07_path_degrades_with_switches(self):
        res = EXPERIMENTS["fig07"](TINY)
        few = res.curve("8sw/path").y
        many = res.curve("32sw/path").y
        assert many[-1] > few[-1]

    def test_fig09_runs_and_orders(self):
        res = EXPERIMENTS["fig09"](TINY)
        # At the light-load point, tree <= path for the default R variant.
        tree = res.curve("R=2/4-way/tree").y[0]
        path = res.curve("R=2/4-way/path").y[0]
        assert tree is not None and path is not None
        assert tree <= path

    @pytest.mark.parametrize("fig", ["fig10", "fig11"])
    def test_load_figures_produce_points(self, fig):
        res = EXPERIMENTS[fig](TINY)
        assert res.series
        # light-load points must be measurable for every curve
        for s in res.series:
            assert s.y[0] is not None


class TestExtrasAndAblations:
    def test_fpfs_beats_store_and_forward(self):
        res = EXPERIMENTS["ablation-fpfs"](TINY)
        fpfs = res.curve("fpfs/ni").y
        saf = res.curve("store&fwd/ni").y
        assert all(f < s for f, s in zip(fpfs, saf))

    def test_auto_k_not_worse_than_fixed(self):
        res = EXPERIMENTS["ablation-fixedk"](TINY)
        auto = res.curve("ni/auto").y
        for fixed in ("ni/k=1", "ni/k=2"):
            ys = res.curve(fixed).y
            assert all(a <= y * 1.05 for a, y in zip(auto, ys))

    def test_host_overhead_scales_everything(self):
        res = EXPERIMENTS["extra-hostoverhead"](TINY)
        lo = res.curve("o_h=250/tree").y
        hi = res.curve("o_h=4000/tree").y
        assert all(h > l for h, l in zip(hi, lo))


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out and "ablation-buffer" in out

    def test_run_unknown(self, capsys):
        assert cli_main(["run", "nope"]) == 2

    def test_run_quick_figure(self, capsys):
        assert cli_main(["run", "ablation-fpfs"]) == 0
        out = capsys.readouterr().out
        assert "fpfs/ni" in out
        assert "cells:" in out  # execution summary line

    def test_run_with_jobs_and_cache(self, tmp_path, capsys):
        argv = [
            "run", "ablation-fpfs",
            "--jobs", "2",
            "--cache-dir", str(tmp_path),
            "--json", str(tmp_path / "out"),
        ]
        assert cli_main(argv) == 0
        cold = capsys.readouterr().out
        assert "cells:" in cold and "run, 0 cached" in cold
        cold_json = (tmp_path / "out" / "ablation-fpfs.json").read_bytes()
        assert cli_main(argv) == 0
        warm = capsys.readouterr().out
        assert "experiment cache hit" in warm
        assert (tmp_path / "out" / "ablation-fpfs.json").read_bytes() == cold_json

    def test_no_cache_flag_disables_caching(self, tmp_path, capsys):
        argv = [
            "run", "ablation-fpfs",
            "--cache-dir", str(tmp_path),
            "--no-cache",
        ]
        assert cli_main(argv) == 0
        assert not (tmp_path / "experiments").exists()


class TestShardScaling:
    """The shard-scaling experiment: the fig07 axis on the sharded runner."""

    def test_registered(self):
        assert "shard-scaling" in EXPERIMENTS
        assert "shard-scaling" not in PAPER_FIGURES

    def test_shard_counts_double_up_to_budget(self):
        from repro.experiments.shard_scaling import _shard_counts

        assert _shard_counts(1) == (1,)
        assert _shard_counts(2) == (1, 2)
        assert _shard_counts(6) == (1, 2, 4)
        assert _shard_counts(8) == (1, 2, 4, 8)

    def test_curves_overlay_across_shard_counts(self, monkeypatch):
        from repro.experiments import shard_scaling

        monkeypatch.setattr(shard_scaling, "QUICK_SWITCHES", (64,))
        res = run_experiment("shard-scaling", "quick", shards=2)
        assert [s.label for s in res.series] == ["1 shard", "2 shards"]
        serial, sharded = res.series
        assert sharded.y == serial.y
        p1, p2 = serial.meta["points"][0], sharded.meta["points"][0]
        assert p2["canonical_digest"] == p1["canonical_digest"]
        assert p2["deliveries"] == p1["deliveries"]
        assert p1["messages"] == 0 and p2["messages"] > 0

    def test_shards_is_part_of_experiment_cache_identity(self):
        from repro.experiments.registry import _experiment_digest

        one = _experiment_digest("shard-scaling", PROFILES["quick"], 1)
        two = _experiment_digest("shard-scaling", PROFILES["quick"], 2)
        assert one != two

    def test_invalid_shard_budget_rejected(self):
        from repro.experiments.runner import execution_context

        with pytest.raises(ValueError, match="shards"):
            with execution_context(shards=0):
                pass
