"""DFS-based link orientation (alternative to the Autonet BFS rule).

Sancho & Robles observed that orienting up*/down* links with a *depth-first*
spanning tree instead of Autonet's breadth-first one changes which minimal
paths are legal, often relieving the hot-spot around the BFS root.  We
implement the simplest sound variant: label switches by DFS preorder
(deterministic: lowest-id root, neighbours ascending) and point every link's
*up* end at the lower label.  Labels are a total order, so the up-directed
graph is trivially acyclic -- the deadlock-freedom argument is unchanged --
and tree paths from the root descend monotonically, so the root still
down-reaches every node (the tree-worm scheme's covering ancestor always
exists).

Selected via ``SimParams.routing_tree = "dfs"``; the default remains the
paper's BFS rule.
"""

from __future__ import annotations

from repro.topology.graph import NetworkTopology


def dfs_preorder_labels(topo: NetworkTopology, root: int = 0) -> tuple[int, ...]:
    """DFS preorder label of every switch (root gets 0).

    Deterministic: neighbours are visited ascending by (switch id, link id).

    Raises:
        ValueError: if the switch graph is disconnected.
    """
    if not (0 <= root < topo.num_switches):
        raise ValueError(f"root {root} out of range")
    labels = [-1] * topo.num_switches
    counter = 0
    stack = [root]
    while stack:
        s = stack.pop()
        if labels[s] != -1:
            continue
        labels[s] = counter
        counter += 1
        neighbours = sorted(
            {lk.other_end(s).switch for lk in topo.links_of(s)}, reverse=True
        )
        for nb in neighbours:
            if labels[nb] == -1:
                stack.append(nb)
    if any(lb == -1 for lb in labels):
        raise ValueError("switch graph is disconnected")
    return tuple(labels)
