"""Per-port reachability sets for tree-based multicast (system S4).

The tree-based scheme's switches associate with every *down* output port a
bit string naming the nodes reachable through that port by down-only routes
(Section 3.2.3 of the paper).  A multidestination worm that has finished its
up phase is replicated onto exactly the down ports whose reachability string
intersects the worm's destination header.

Because the down-directed links form a DAG, reachability is a straightforward
memoised union; we expose it both as Python sets (for algorithms) and as bit
masks (mirroring the paper's bit-string encoding).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.routing.updown import UpDownRouting
from repro.topology.graph import SwitchLink


@dataclass
class ReachabilityTable:
    """Down-reachability of nodes from switches and through down ports."""

    routing: UpDownRouting
    _switch_reach: dict[int, frozenset[int]] = field(default_factory=dict, repr=False)

    @classmethod
    def build(cls, routing: UpDownRouting) -> "ReachabilityTable":
        """Compute down-reachable node sets for every switch."""
        table = cls(routing=routing)
        topo = routing.topo
        # Iterate switches from the deepest BFS level upward so every
        # down-neighbour is already resolved (the down graph follows BFS
        # levels except for same-level links, which are oriented by id --
        # handle both with memoised recursion instead of a level sweep).
        for s in range(topo.num_switches):
            table._reach(s)
        return table

    def _reach(self, switch: int) -> frozenset[int]:
        cached = self._switch_reach.get(switch)
        if cached is not None:
            return cached
        topo = self.routing.topo
        acc: set[int] = set(topo.nodes_on_switch(switch))
        # Mark before recursing: the down graph is acyclic, so this is only a
        # guard against topology bugs, surfaced as a missing-entry KeyError.
        self._switch_reach[switch] = frozenset()
        for lk in self.routing.down_links_of(switch):
            acc |= self._reach(lk.other_end(switch).switch)
        result = frozenset(acc)
        self._switch_reach[switch] = result
        return result

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def down_reach(self, switch: int) -> frozenset[int]:
        """Nodes reachable from ``switch`` using only down traversals.

        Includes the nodes attached to ``switch`` itself.
        """
        return self._switch_reach[switch]

    def port_reach(self, switch: int, link: SwitchLink) -> frozenset[int]:
        """Reachability set of the down output port of ``switch`` on ``link``.

        Raises:
            ValueError: if traversing ``link`` out of ``switch`` goes up
                (up ports carry no reachability string in the paper).
        """
        if self.routing.is_up_traversal(link, switch):
            raise ValueError(
                f"link {link.link_id} is an up port of switch {switch}; "
                "reachability strings exist only for down ports"
            )
        return self.down_reach(link.other_end(switch).switch)

    def covers(self, switch: int, dests: frozenset[int] | set[int]) -> bool:
        """True when every destination is down-reachable from ``switch``."""
        return set(dests) <= self._switch_reach[switch]

    # ------------------------------------------------------------------
    # Bit-string encodings (the hardware view)
    # ------------------------------------------------------------------
    def port_reach_mask(self, switch: int, link: SwitchLink) -> int:
        """The paper's reachability bit string, as an int bit mask.

        Bit ``i`` is set iff node ``i`` is reachable through the port.
        """
        return _mask(self.port_reach(switch, link))

    def total_reach_mask(self, switch: int) -> int:
        """Bit mask of all nodes down-reachable from ``switch``."""
        return _mask(self.down_reach(switch))


def _mask(nodes: frozenset[int]) -> int:
    m = 0
    for n in nodes:
        m |= 1 << n
    return m


def header_mask(dests: list[int] | set[int] | frozenset[int]) -> int:
    """Encode a destination set as the worm's bit-string header."""
    return _mask(frozenset(dests))


def decode_mask(mask: int) -> frozenset[int]:
    """Decode a bit-string header back into a destination set."""
    out = set()
    i = 0
    while mask:
        if mask & 1:
            out.add(i)
        mask >>= 1
        i += 1
    return frozenset(out)
