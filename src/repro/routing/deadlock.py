"""Channel-dependency-graph deadlock-freedom verification.

The paper leans on the classical result that up*/down* routing is
deadlock-free because "the directed links do not form loops" once every
route is an up* prefix followed by a down* suffix.  This module makes that
argument checkable: it builds the full channel dependency graph (CDG) of a
topology under a routing relation -- injection channels, both directions of
every switch link, and delivery channels -- and verifies it is acyclic
(Dally & Seitz).  Multidestination worms add no new dependency *kinds*
beyond "input channel held while an output channel is requested", so the
same CDG covers the tree- and path-based multicast schemes as well.

A permissive "any minimal path" routing relation is included as a negative
control: on cyclic topologies it produces cyclic CDGs, which the test-suite
uses to show the checker actually detects deadlock potential.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.routing.updown import Phase, UpDownRouting
from repro.topology.graph import NetworkTopology

ChannelKey = tuple
"""('inj', node) | ('fwd', link_id, from_switch) | ('del', node)"""


class DeadlockCycleError(Exception):
    """Raised when the channel dependency graph contains a cycle."""

    def __init__(self, cycle: list[ChannelKey]) -> None:
        self.cycle = cycle
        super().__init__(f"cyclic channel dependency: {' -> '.join(map(str, cycle))}")


@dataclass(frozen=True)
class _ArrivalState:
    """A channel entering a switch together with the packet phase there."""

    switch: int
    phase: Phase


def _arrival_state(
    rt: UpDownRouting, topo: NetworkTopology, chan: ChannelKey
) -> _ArrivalState | None:
    kind = chan[0]
    if kind == "inj":
        return _ArrivalState(topo.switch_of_node(chan[1]), Phase.UP)
    if kind == "fwd":
        link = next(lk for lk in topo.links if lk.link_id == chan[1])
        frm = chan[2]
        to = link.other_end(frm).switch
        return _ArrivalState(to, rt.traversal_phase(link, frm))
    return None  # delivery channels terminate at a node: no dependencies


def build_channel_dependency_graph(
    topo: NetworkTopology, rt: UpDownRouting
) -> dict[ChannelKey, set[ChannelKey]]:
    """All (held channel -> requested channel) edges under up*/down* routing.

    An edge exists when some packet, having crossed the first channel, may
    request the second at the switch between them -- over every destination
    and every minimal-route candidate (adaptive routing's full choice set).
    """
    channels: list[ChannelKey] = (
        [("inj", n) for n in range(topo.num_nodes)]
        + [("del", n) for n in range(topo.num_nodes)]
        + [
            ("fwd", lk.link_id, frm)
            for lk in topo.links
            for frm in (lk.a.switch, lk.b.switch)
        ]
    )
    deps: dict[ChannelKey, set[ChannelKey]] = {c: set() for c in channels}
    for chan in channels:
        state = _arrival_state(rt, topo, chan)
        if state is None:
            continue
        s, phase = state.switch, state.phase
        for dest_node in range(topo.num_nodes):
            dest_switch = topo.switch_of_node(dest_node)
            if dest_switch == s:
                deps[chan].add(("del", dest_node))
                continue
            if not rt.reachable(s, phase, dest_switch):
                continue
            for hop in rt.next_hops(s, phase, dest_switch):
                deps[chan].add(("fwd", hop.link.link_id, s))
    return deps


def find_cycle(deps: dict[ChannelKey, set[ChannelKey]]) -> list[ChannelKey] | None:
    """Return one dependency cycle, or None if the graph is acyclic."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {c: WHITE for c in deps}
    stack: list[ChannelKey] = []

    def dfs(c: ChannelKey) -> list[ChannelKey] | None:
        colour[c] = GREY
        stack.append(c)
        for nxt in deps[c]:
            if colour[nxt] == GREY:
                return stack[stack.index(nxt):] + [nxt]
            if colour[nxt] == WHITE:
                found = dfs(nxt)
                if found:
                    return found
        colour[c] = BLACK
        stack.pop()
        return None

    for c in deps:
        if colour[c] == WHITE:
            found = dfs(c)
            if found:
                return found
    return None


def verify_deadlock_free(topo: NetworkTopology, rt: UpDownRouting) -> None:
    """Raise :class:`DeadlockCycleError` if the CDG has a cycle."""
    cycle = find_cycle(build_channel_dependency_graph(topo, rt))
    if cycle is not None:
        raise DeadlockCycleError(cycle)


def build_multicast_cdg(
    topo: NetworkTopology, rt: UpDownRouting
) -> dict[ChannelKey, set[ChannelKey]]:
    """CDG extended with the dependencies multidestination worms introduce.

    The base graph (:func:`build_channel_dependency_graph`) covers unicast
    traffic on *minimal* legal routes.  Multidestination worms add two things:

    * **Arbitrary legal continuations.**  A tree worm's up path is chosen at
      encode time toward a covering ancestor (not necessarily on a minimal
      route to any single destination), and its down distribution follows the
      reachability priority encoder.  A path worm forks a local delivery off
      the planned path at every switch it crosses.  Both stay within the
      up*/down* rule, so the extension adds an edge from every channel
      entering a switch to *every* legal next channel (all up and down
      outputs in the UP phase, all down outputs in the DOWN phase) and to
      every delivery channel of the switch.

    * **Replication branch sets.**  A replicating switch holds the branch
      output channels of one worm *simultaneously*: while flits stream into
      the branches already acquired, the worm blocks on the branches still
      being requested.  Our switches acquire branches in ascending link-id
      order (see ``TreeWormScheme.make_steer``), so the induced dependency
      runs from each held branch to every later-ordered sibling down output
      of the same switch -- one direction only, which is exactly why ordered
      acquisition stays deadlock-free while unordered acquisition would not.

    For any valid up*/down* orientation the result is acyclic (up DAG, then
    down DAG, siblings ordered by link id); a corrupted orientation whose
    "down" links form a directed cycle is detected by :func:`find_cycle`
    even when the minimal-route tables never exercise the cycle.
    """
    channels: list[ChannelKey] = (
        [("inj", n) for n in range(topo.num_nodes)]
        + [("del", n) for n in range(topo.num_nodes)]
        + [
            ("fwd", lk.link_id, frm)
            for lk in topo.links
            for frm in (lk.a.switch, lk.b.switch)
        ]
    )
    deps: dict[ChannelKey, set[ChannelKey]] = {c: set() for c in channels}
    for chan in channels:
        state = _arrival_state(rt, topo, chan)
        if state is None:
            continue
        s, phase = state.switch, state.phase
        for node in topo.nodes_on_switch(s):
            deps[chan].add(("del", node))
        if phase is Phase.UP:
            for lk in rt.up_links_of(s):
                deps[chan].add(("fwd", lk.link_id, s))
        for lk in rt.down_links_of(s):
            deps[chan].add(("fwd", lk.link_id, s))
    # Replication branch sets: held branch -> later-ordered sibling branch.
    for s in range(topo.num_switches):
        down = sorted(rt.down_links_of(s), key=lambda lk: lk.link_id)
        for i, held in enumerate(down):
            for requested in down[i + 1:]:
                deps[("fwd", held.link_id, s)].add(
                    ("fwd", requested.link_id, s)
                )
    return deps


def build_escape_cdg(
    topo: NetworkTopology, rt: UpDownRouting, vc_count: int = 2
) -> dict[ChannelKey, set[ChannelKey]]:
    """Lane-annotated CDG of the escape-VC fabric (``vc_routing="escape"``).

    Forward channels split into ``vc_count`` lane nodes
    ``('fwd', link_id, from_switch, lane)``; injection and delivery channels
    stay unannotated (they are pure sources/sinks of the dependency
    relation, so lanes would only multiply nodes without changing cycles).
    Three edge families model the escape discipline
    (see docs/virtual_channels.md):

    1. **Blocking waits.**  A worm holding any lane of a channel may *wait*
       for a legal up*/down* continuation; the wait is lane-agnostic (the
       FIFO grants whichever lane frees first, lane 0 included), so each
       held lane points at every lane of every multicast-CDG successor.
    2. **Adaptive claims.**  Lanes >= 1 of any minimal-path continuation
       may be claimed from any held lane.  The claim itself never blocks
       (shortcuts are taken only when a lane is free at decision time), but
       the hold-while-requesting edge exists while the worm drains.
    3. **Post-shortcut continuations.**  A lane >= 1 may carry a worm that
       crossed the channel *against* its up/down orientation and restarted
       in the UP phase, so those lanes also point at the full UP-phase
       legal continuation set of their arrival switch.

    The full graph is generally **cyclic** on cyclic topologies -- families
    2 and 3 are exactly the unrestricted minimal-path relation the up*/down*
    rule exists to break -- which is why deadlock freedom rests on the
    lane-0 restriction instead: see :func:`escape_subgraph`.
    """
    if vc_count < 2:
        raise ValueError("escape routing needs at least 2 VCs")
    from repro.topology.analysis import switch_distances

    base = build_multicast_cdg(topo, rt)
    dist = [switch_distances(topo, s) for s in range(topo.num_switches)]

    def lanes_of(chan: ChannelKey, adaptive_only: bool = False) -> list[ChannelKey]:
        if chan[0] == "fwd":
            start = 1 if adaptive_only else 0
            return [(*chan, lane) for lane in range(start, vc_count)]
        return [] if adaptive_only else [chan]

    deps: dict[ChannelKey, set[ChannelKey]] = {
        lane: set() for chan in base for lane in lanes_of(chan)
    }
    # 1. blocking waits: lifted multicast-CDG edges, lane-agnostic targets.
    for held, reqs in base.items():
        targets = {lane for req in reqs for lane in lanes_of(req)}
        for h in lanes_of(held):
            deps[h].update(targets)
    # 2 + 3. adaptive claims from every arrival switch, and UP-phase
    # continuations for adaptively-crossable lanes (>= 1).
    dest_switches = sorted({topo.switch_of_node(n) for n in range(topo.num_nodes)})
    for chan in base:
        state = _arrival_state(rt, topo, chan)
        if state is None:
            continue
        s = state.switch
        minimal = {
            ("fwd", lk.link_id, s)
            for lk in topo.links_of(s)
            for d in dest_switches
            if dist[s][d] > 0
            and dist[lk.other_end(s).switch][d] == dist[s][d] - 1
        }
        claims = {
            lane for m in minimal for lane in lanes_of(m, adaptive_only=True)
        }
        for h in lanes_of(chan):
            deps[h].update(claims)
        if chan[0] != "fwd":
            continue
        up_state = {lane for lk in rt.up_links_of(s)
                    for lane in lanes_of(("fwd", lk.link_id, s))}
        up_state |= {lane for lk in rt.down_links_of(s)
                     for lane in lanes_of(("fwd", lk.link_id, s))}
        up_state |= {("del", n) for n in topo.nodes_on_switch(s)}
        for h in lanes_of(chan, adaptive_only=True):
            deps[h].update(up_state)
    return deps


def escape_subgraph(
    deps: dict[ChannelKey, set[ChannelKey]]
) -> dict[ChannelKey, set[ChannelKey]]:
    """Restrict an escape CDG to lane 0 plus injection/delivery channels.

    This is the graph Duato's condition cares about: every blocking wait in
    the fabric admits lane 0 (adaptive-only requests are never queued -- a
    shortcut is only taken when a free lane is in hand), so any deadlocked
    configuration would induce a cycle among lane-0 holds.  By construction
    the restriction equals the plain multicast CDG up to lane annotation;
    verifying it per epoch proves the lane lifting preserved acyclicity.
    """

    def keep(chan: ChannelKey) -> bool:
        return chan[0] != "fwd" or chan[3] == 0

    return {
        chan: {t for t in targets if keep(t)}
        for chan, targets in deps.items()
        if keep(chan)
    }


def verify_escape_deadlock_free(
    topo: NetworkTopology, rt: UpDownRouting, vc_count: int = 2
) -> None:
    """Raise :class:`DeadlockCycleError` if the escape-lane CDG has a cycle.

    The escape subgraph is lane-count invariant (lanes >= 1 are filtered
    out wholesale), so checking one representative ``vc_count`` certifies
    every lane count the fabric may run with.
    """
    cycle = find_cycle(escape_subgraph(build_escape_cdg(topo, rt, vc_count)))
    if cycle is not None:
        raise DeadlockCycleError(cycle)


def build_unrestricted_cdg(topo: NetworkTopology) -> dict[ChannelKey, set[ChannelKey]]:
    """Negative control: minimal-path routing with *no* up/down restriction.

    Every channel entering a switch may request any outgoing link channel on
    a shortest path (plain BFS distances) to any destination.  On topologies
    with cycles this CDG is cyclic -- the deadlock the up*/down* rule exists
    to prevent.
    """
    from repro.topology.analysis import switch_distances

    dist = [switch_distances(topo, s) for s in range(topo.num_switches)]
    channels: list[ChannelKey] = (
        [("inj", n) for n in range(topo.num_nodes)]
        + [("del", n) for n in range(topo.num_nodes)]
        + [
            ("fwd", lk.link_id, frm)
            for lk in topo.links
            for frm in (lk.a.switch, lk.b.switch)
        ]
    )
    deps: dict[ChannelKey, set[ChannelKey]] = {c: set() for c in channels}
    for chan in channels:
        if chan[0] == "del":
            continue
        if chan[0] == "inj":
            s = topo.switch_of_node(chan[1])
        else:
            link = next(lk for lk in topo.links if lk.link_id == chan[1])
            s = link.other_end(chan[2]).switch
        for dest_node in range(topo.num_nodes):
            dest_switch = topo.switch_of_node(dest_node)
            if dest_switch == s:
                deps[chan].add(("del", dest_node))
                continue
            for lk in topo.links_of(s):
                t = lk.other_end(s).switch
                if dist[t][dest_switch] == dist[s][dest_switch] - 1:
                    deps[chan].add(("fwd", lk.link_id, s))
    return deps
