"""Breadth-first spanning tree of the switch graph (Autonet step 1).

Autonet's distributed algorithm guarantees all switches eventually agree on a
unique spanning tree.  We reproduce the agreed-upon result directly: the root
is the lowest-numbered switch and ties during the BFS are broken by switch
id, which makes the tree a pure function of the topology.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.topology.graph import NetworkTopology, SwitchLink


@dataclass(frozen=True)
class BfsTree:
    """The BFS spanning tree: per-switch level and tree parent.

    Attributes:
        root: the root switch (lowest id, per our deterministic election).
        level: ``level[s]`` is the BFS depth of switch ``s`` (root = 0).
        parent: ``parent[s]`` is the tree parent of ``s`` (root's is -1).
        parent_link: the link id used to reach the parent (root's is -1).
    """

    root: int
    level: tuple[int, ...]
    parent: tuple[int, ...]
    parent_link: tuple[int, ...]

    def depth(self) -> int:
        """Height of the tree (max level)."""
        return max(self.level)

    def children(self, switch: int) -> list[int]:
        """Tree children of ``switch`` (ascending)."""
        return [s for s, p in enumerate(self.parent) if p == switch]


def build_bfs_tree(topo: NetworkTopology, root: int = 0) -> BfsTree:
    """Compute the unique BFS spanning tree rooted at ``root``.

    Neighbours are visited in (switch id, link id) order so the result is a
    deterministic function of the topology, mirroring Autonet's property that
    "all nodes will eventually agree on a unique spanning tree".

    Raises:
        ValueError: if the switch graph is disconnected.
    """
    if not (0 <= root < topo.num_switches):
        raise ValueError(f"root {root} out of range")
    level = [-1] * topo.num_switches
    parent = [-1] * topo.num_switches
    parent_link = [-1] * topo.num_switches
    level[root] = 0
    q: deque[int] = deque([root])
    while q:
        s = q.popleft()
        # Deterministic order: neighbours ascending, lowest link id first.
        outgoing: list[tuple[int, SwitchLink]] = sorted(
            ((lk.other_end(s).switch, lk) for lk in topo.links_of(s)),
            key=lambda t: (t[0], t[1].link_id),
        )
        for nb, lk in outgoing:
            if level[nb] == -1:
                level[nb] = level[s] + 1
                parent[nb] = s
                parent_link[nb] = lk.link_id
                q.append(nb)
    if any(lv == -1 for lv in level):
        raise ValueError("switch graph is disconnected")
    return BfsTree(
        root=root,
        level=tuple(level),
        parent=tuple(parent),
        parent_link=tuple(parent_link),
    )
