"""Escape-VC adaptive routing: minimal shortcuts outside up*/down* order.

With ``vc_routing="escape"`` (see :class:`~repro.params.SimParams`) lane 0
of every channel remains restricted to the up*/down* order -- the *escape
lane*, whose channel dependency graph is acyclic (Duato's sufficient
condition, proved per epoch by
:func:`repro.routing.deadlock.verify_escape_deadlock_free`) -- while lanes
>= 1 may take any hop on a *minimal* switch-graph path toward the
destination, regardless of up/down legality.

This module provides the minimal-path candidate sets.  The discipline that
makes the combination deadlock-free lives in the worm model: a shortcut is
taken only when a lane >= 1 of its channel is free at decision time, so a
worm never *waits* on an adaptive lane; every blocking wait admits lane 0,
where only acyclic up*/down* dependencies exist (docs/virtual_channels.md
has the full argument).

After a shortcut the up*/down* phase state resets to ``Phase.UP`` at the
next switch: up-phase routes reach every destination from every switch
(the reachability property the test-suite pins), so a misrouted worm always
has a legal escape continuation.
"""

from __future__ import annotations

from repro.topology.analysis import switch_distances
from repro.topology.graph import NetworkTopology, SwitchLink


class EscapeRouting:
    """Per-topology minimal-path tables for adaptive (non-escape) lanes."""

    def __init__(self, topo: NetworkTopology) -> None:
        self.topo = topo
        self._dist = [
            switch_distances(topo, s) for s in range(topo.num_switches)
        ]

    def distance(self, src_switch: int, dst_switch: int) -> int:
        """Switch-graph hop distance (unrestricted by up*/down*)."""
        return self._dist[src_switch][dst_switch]

    def minimal_hops(self, switch: int, dest_switch: int) -> list[SwitchLink]:
        """Links out of ``switch`` on some minimal path to ``dest_switch``.

        Deterministic order (ascending link id); empty at the destination.
        """
        if switch == dest_switch:
            return []
        want = self._dist[switch][dest_switch] - 1
        hops = [
            lk
            for lk in self.topo.links_of(switch)
            if self._dist[lk.other_end(switch).switch][dest_switch] == want
        ]
        hops.sort(key=lambda lk: lk.link_id)
        return hops
