"""Up*/down* routing (Autonet) on an irregular switch graph.

Every link gets an *up* end: (1) the end whose switch is closer to the BFS
root, or (2) the end with the lower switch id when both ends are at the same
level.  A legal route traverses zero or more links in the up direction
followed by zero or more links in the down direction -- a packet may never go
up after having gone down.  Because the directed "up" links form a DAG, the
rule is deadlock-free.

This module computes, for every (switch, routing phase, destination switch)
triple, the set of next hops that lie on a *minimal* legal route, which is
what both the adaptive and the deterministic routing policies consult.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.routing.bfs_tree import BfsTree, build_bfs_tree
from repro.topology.graph import NetworkTopology, SwitchLink


class Phase(enum.Enum):
    """Routing phase of a packet under the up*/down* rule."""

    UP = 0
    """The packet has only traversed up links so far (may still turn down)."""

    DOWN = 1
    """The packet has traversed a down link (must keep going down)."""


@dataclass(frozen=True)
class Hop:
    """One candidate next hop on a minimal legal route."""

    link: SwitchLink
    to_switch: int
    next_phase: Phase


@dataclass
class UpDownRouting:
    """Routing tables for the up*/down* scheme.

    Build one per topology via :meth:`build`; all queries are O(1) lookups.
    """

    topo: NetworkTopology
    tree: BfsTree
    _up_end: dict[int, int] = field(default_factory=dict, repr=False)
    _dist: list[dict[tuple[int, Phase], int]] = field(default_factory=list, repr=False)
    _hops: list[dict[tuple[int, Phase], tuple[Hop, ...]]] = field(
        default_factory=list, repr=False
    )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, topo: NetworkTopology, root: int = 0, orientation: str = "bfs"
    ) -> "UpDownRouting":
        """Compute the orientation and all-pairs minimal-route tables.

        ``orientation`` selects the spanning structure the up/down rule is
        anchored to: ``"bfs"`` is the paper's Autonet rule (closer to the
        BFS root = up; ties by id); ``"dfs"`` uses DFS preorder labels
        (see :mod:`repro.routing.dfs_tree`).
        """
        tree = build_bfs_tree(topo, root=root)
        rt = cls(topo=topo, tree=tree)
        if orientation == "bfs":
            for lk in topo.links:
                rt._up_end[lk.link_id] = rt._bfs_up_end(lk)
        elif orientation == "dfs":
            from repro.routing.dfs_tree import dfs_preorder_labels

            labels = dfs_preorder_labels(topo, root=root)
            for lk in topo.links:
                rt._up_end[lk.link_id] = (
                    lk.a.switch
                    if labels[lk.a.switch] < labels[lk.b.switch]
                    else lk.b.switch
                )
        else:
            raise ValueError(f"unknown orientation {orientation!r}")
        rt._compute_tables()
        return rt

    def _bfs_up_end(self, link: SwitchLink) -> int:
        la, lb = self.tree.level[link.a.switch], self.tree.level[link.b.switch]
        if la != lb:
            return link.a.switch if la < lb else link.b.switch
        return min(link.a.switch, link.b.switch)

    # ------------------------------------------------------------------
    # Orientation queries
    # ------------------------------------------------------------------
    def up_end_switch(self, link: SwitchLink) -> int:
        """The switch at the *up* end of ``link``."""
        return self._up_end[link.link_id]

    def is_up_traversal(self, link: SwitchLink, from_switch: int) -> bool:
        """True when crossing ``link`` out of ``from_switch`` goes *up*."""
        return self._up_end[link.link_id] != from_switch

    def traversal_phase(self, link: SwitchLink, from_switch: int) -> Phase:
        """Phase a packet is in *after* crossing ``link`` from ``from_switch``."""
        return Phase.UP if self.is_up_traversal(link, from_switch) else Phase.DOWN

    def down_links_of(self, switch: int) -> list[SwitchLink]:
        """Links whose traversal out of ``switch`` goes down (toward leaves)."""
        return [
            lk for lk in self.topo.links_of(switch) if not self.is_up_traversal(lk, switch)
        ]

    def up_links_of(self, switch: int) -> list[SwitchLink]:
        """Links whose traversal out of ``switch`` goes up (toward the root)."""
        return [
            lk for lk in self.topo.links_of(switch) if self.is_up_traversal(lk, switch)
        ]

    # ------------------------------------------------------------------
    # Minimal-route tables
    # ------------------------------------------------------------------
    def _legal_transitions(self, switch: int, phase: Phase) -> list[tuple[SwitchLink, int, Phase]]:
        """All (link, neighbour, next phase) moves legal from a state."""
        out: list[tuple[SwitchLink, int, Phase]] = []
        for lk in self.topo.links_of(switch):
            t = lk.other_end(switch).switch
            if self.is_up_traversal(lk, switch):
                if phase is Phase.UP:
                    out.append((lk, t, Phase.UP))
            else:
                out.append((lk, t, Phase.DOWN))
        return out

    def _compute_tables(self) -> None:
        """All-pairs BFS over the (switch, phase) state graph, per destination."""
        S = self.topo.num_switches
        self._dist = [dict() for _ in range(S)]
        self._hops = [dict() for _ in range(S)]
        # Forward BFS from every start state is O(S * states * edges); with the
        # paper's scales (<= 32 switches) this is negligible, and it keeps the
        # code obviously correct (cf. the optimization guide: make it work and
        # tested before making it fast).
        states = [(s, p) for s in range(S) for p in (Phase.UP, Phase.DOWN)]
        trans = {st: self._legal_transitions(*st) for st in states}
        for dest in range(S):
            # Backward BFS from the destination over reversed transitions.
            dist: dict[tuple[int, Phase], int] = {
                (dest, Phase.UP): 0,
                (dest, Phase.DOWN): 0,
            }
            frontier = [(dest, Phase.UP), (dest, Phase.DOWN)]
            # Build a reverse adjacency once per destination on the fly.
            # (precomputing globally would be marginally faster; clarity wins)
            rev: dict[tuple[int, Phase], list[tuple[int, Phase]]] = {st: [] for st in states}
            for st, moves in trans.items():
                for _lk, t, np_ in moves:
                    rev[(t, np_)].append(st)
            d = 0
            while frontier:
                d += 1
                nxt = []
                for st in frontier:
                    for pst in rev[st]:
                        if pst not in dist:
                            dist[pst] = d
                            nxt.append(pst)
                frontier = nxt
            for s in range(S):
                for p in (Phase.UP, Phase.DOWN):
                    st = (s, p)
                    if st not in dist:
                        continue
                    self._dist[dest][st] = dist[st]
                    if s == dest:
                        self._hops[dest][st] = ()
                        continue
                    hops = tuple(
                        Hop(lk, t, np_)
                        for lk, t, np_ in trans[st]
                        if dist.get((t, np_), -1) == dist[st] - 1
                    )
                    self._hops[dest][st] = hops

    def distance(self, src: int, dest: int, phase: Phase = Phase.UP) -> int:
        """Minimal legal hop count between switches from a given phase.

        Raises:
            KeyError: if ``dest`` is unreachable from the state (cannot
                happen for ``Phase.UP`` starts in a connected network).
        """
        return self._dist[dest][(src, phase)]

    def next_hops(self, switch: int, phase: Phase, dest: int) -> tuple[Hop, ...]:
        """Candidate next hops on minimal legal routes toward ``dest``.

        An empty tuple means ``switch == dest`` (already there); a missing
        state (packet in DOWN phase with no legal continuation) raises
        ``KeyError`` -- by up*/down* correctness this never occurs for routes
        produced by this table itself.
        """
        return self._hops[dest][(switch, phase)]

    def reachable(self, switch: int, phase: Phase, dest: int) -> bool:
        """Whether ``dest`` has any legal route from the state at all."""
        return (switch, phase) in self._dist[dest]
