"""Up*/down* routing (Autonet) on an irregular switch graph.

Every link gets an *up* end: (1) the end whose switch is closer to the BFS
root, or (2) the end with the lower switch id when both ends are at the same
level.  A legal route traverses zero or more links in the up direction
followed by zero or more links in the down direction -- a packet may never go
up after having gone down.  Because the directed "up" links form a DAG, the
rule is deadlock-free.

This module computes, for every (switch, routing phase, destination switch)
triple, the set of next hops that lie on a *minimal* legal route, which is
what both the adaptive and the deterministic routing policies consult.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.routing.bfs_tree import BfsTree, build_bfs_tree
from repro.topology.graph import NetworkTopology, SwitchLink


class Phase(enum.Enum):
    """Routing phase of a packet under the up*/down* rule."""

    UP = 0
    """The packet has only traversed up links so far (may still turn down)."""

    DOWN = 1
    """The packet has traversed a down link (must keep going down)."""


@dataclass(frozen=True)
class Hop:
    """One candidate next hop on a minimal legal route."""

    link: SwitchLink
    to_switch: int
    next_phase: Phase


@dataclass
class UpDownRouting:
    """Routing tables for the up*/down* scheme.

    Build one per topology via :meth:`build`; all queries are O(1) lookups.
    """

    topo: NetworkTopology
    tree: BfsTree
    _up_end: dict[int, int] = field(default_factory=dict, repr=False)
    _dist: list[dict[tuple[int, Phase], int]] = field(default_factory=list, repr=False)
    _hops: list[dict[tuple[int, Phase], tuple[Hop, ...]]] = field(
        default_factory=list, repr=False
    )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, topo: NetworkTopology, root: int = 0, orientation: str = "bfs"
    ) -> "UpDownRouting":
        """Compute the orientation and all-pairs minimal-route tables.

        ``orientation`` selects the spanning structure the up/down rule is
        anchored to: ``"bfs"`` is the paper's Autonet rule (closer to the
        BFS root = up; ties by id); ``"dfs"`` uses DFS preorder labels
        (see :mod:`repro.routing.dfs_tree`).
        """
        tree = build_bfs_tree(topo, root=root)
        rt = cls(topo=topo, tree=tree)
        if orientation == "bfs":
            for lk in topo.links:
                rt._up_end[lk.link_id] = rt._bfs_up_end(lk)
        elif orientation == "dfs":
            from repro.routing.dfs_tree import dfs_preorder_labels

            labels = dfs_preorder_labels(topo, root=root)
            for lk in topo.links:
                rt._up_end[lk.link_id] = (
                    lk.a.switch
                    if labels[lk.a.switch] < labels[lk.b.switch]
                    else lk.b.switch
                )
        else:
            raise ValueError(f"unknown orientation {orientation!r}")
        rt._compute_tables()
        return rt

    def _bfs_up_end(self, link: SwitchLink) -> int:
        la, lb = self.tree.level[link.a.switch], self.tree.level[link.b.switch]
        if la != lb:
            return link.a.switch if la < lb else link.b.switch
        return min(link.a.switch, link.b.switch)

    # ------------------------------------------------------------------
    # Orientation queries
    # ------------------------------------------------------------------
    def up_end_switch(self, link: SwitchLink) -> int:
        """The switch at the *up* end of ``link``."""
        return self._up_end[link.link_id]

    def is_up_traversal(self, link: SwitchLink, from_switch: int) -> bool:
        """True when crossing ``link`` out of ``from_switch`` goes *up*."""
        return self._up_end[link.link_id] != from_switch

    def traversal_phase(self, link: SwitchLink, from_switch: int) -> Phase:
        """Phase a packet is in *after* crossing ``link`` from ``from_switch``."""
        return Phase.UP if self.is_up_traversal(link, from_switch) else Phase.DOWN

    def down_links_of(self, switch: int) -> list[SwitchLink]:
        """Links whose traversal out of ``switch`` goes down (toward leaves)."""
        return [
            lk for lk in self.topo.links_of(switch) if not self.is_up_traversal(lk, switch)
        ]

    def up_links_of(self, switch: int) -> list[SwitchLink]:
        """Links whose traversal out of ``switch`` goes up (toward the root)."""
        return [
            lk for lk in self.topo.links_of(switch) if self.is_up_traversal(lk, switch)
        ]

    # ------------------------------------------------------------------
    # Minimal-route tables
    # ------------------------------------------------------------------
    def _legal_transitions(self, switch: int, phase: Phase) -> list[tuple[SwitchLink, int, Phase]]:
        """All (link, neighbour, next phase) moves legal from a state."""
        out: list[tuple[SwitchLink, int, Phase]] = []
        for lk in self.topo.links_of(switch):
            t = lk.other_end(switch).switch
            if self.is_up_traversal(lk, switch):
                if phase is Phase.UP:
                    out.append((lk, t, Phase.UP))
            else:
                out.append((lk, t, Phase.DOWN))
        return out

    def _compute_tables(self) -> None:
        """All-pairs BFS over the (switch, phase) state graph, per destination."""
        S = self.topo.num_switches
        self._dist = [dict() for _ in range(S)]
        self._hops = [dict() for _ in range(S)]
        states = [(s, p) for s in range(S) for p in (Phase.UP, Phase.DOWN)]
        trans = {st: self._legal_transitions(*st) for st in states}
        # The per-destination backward BFS runs on flat integer state ids
        # with the (destination-independent) reverse adjacency built once:
        # at the sharded-runner scales (512-1024 switches) rebuilding the
        # adjacency per destination and hashing (switch, Phase) tuples in
        # the inner loops dominated table construction.  The enum-keyed
        # dicts stay the external table format, and visit/append orders are
        # unchanged, so the resulting tables are identical.
        sid = {st: i for i, st in enumerate(states)}
        rev: list[list[int]] = [[] for _ in states]
        moves_of: list[list[tuple[Hop, int]]] = [[] for _ in states]
        for st, moves in trans.items():
            i = sid[st]
            for lk, t, np_ in moves:
                j = sid[(t, np_)]
                moves_of[i].append((Hop(lk, t, np_), j))
                rev[j].append(i)
        for dest in range(S):
            dist = [-1] * len(states)
            up, down = sid[(dest, Phase.UP)], sid[(dest, Phase.DOWN)]
            dist[up] = dist[down] = 0
            frontier = [up, down]
            d = 0
            while frontier:
                d += 1
                nxt: list[int] = []
                for i in frontier:
                    for p in rev[i]:
                        if dist[p] < 0:
                            dist[p] = d
                            nxt.append(p)
                frontier = nxt
            dest_dist = self._dist[dest]
            dest_hops = self._hops[dest]
            for i, st in enumerate(states):
                if dist[i] < 0:
                    continue
                dest_dist[st] = dist[i]
                if st[0] == dest:
                    dest_hops[st] = ()
                    continue
                want = dist[i] - 1
                dest_hops[st] = tuple(
                    hop for hop, j in moves_of[i] if dist[j] == want
                )

    def distance(self, src: int, dest: int, phase: Phase = Phase.UP) -> int:
        """Minimal legal hop count between switches from a given phase.

        Raises:
            KeyError: if ``dest`` is unreachable from the state (cannot
                happen for ``Phase.UP`` starts in a connected network).
        """
        return self._dist[dest][(src, phase)]

    def next_hops(self, switch: int, phase: Phase, dest: int) -> tuple[Hop, ...]:
        """Candidate next hops on minimal legal routes toward ``dest``.

        An empty tuple means ``switch == dest`` (already there); a missing
        state (packet in DOWN phase with no legal continuation) raises
        ``KeyError`` -- by up*/down* correctness this never occurs for routes
        produced by this table itself.
        """
        return self._hops[dest][(switch, phase)]

    def reachable(self, switch: int, phase: Phase, dest: int) -> bool:
        """Whether ``dest`` has any legal route from the state at all."""
        return (switch, phase) in self._dist[dest]
