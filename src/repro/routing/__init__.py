"""Deadlock-free up*/down* routing on irregular networks (systems S2-S4).

Implements the Autonet routing scheme the paper assumes: a breadth-first
spanning tree rooted deterministically, a loop-free up/down orientation of
every link, legal-route computation under the up*/down* rule, and the
per-port reachability sets ("reachability strings") that the tree-based
multicast scheme's switches consult.
"""

from repro.routing.bfs_tree import BfsTree, build_bfs_tree
from repro.routing.updown import UpDownRouting, Phase
from repro.routing.reachability import ReachabilityTable
from repro.routing.paths import (
    all_minimal_paths,
    is_legal_path,
    shortest_path_links,
)

__all__ = [
    "BfsTree",
    "build_bfs_tree",
    "UpDownRouting",
    "Phase",
    "ReachabilityTable",
    "all_minimal_paths",
    "is_legal_path",
    "shortest_path_links",
]
