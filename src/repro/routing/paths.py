"""Explicit legal-path construction and validation helpers.

The simulator mostly routes hop by hop through :class:`UpDownRouting`, but
the path-based multicast scheme needs whole paths materialised up front, and
the test-suite wants to enumerate and validate routes.  Those utilities live
here.
"""

from __future__ import annotations

from repro.routing.updown import Phase, UpDownRouting
from repro.topology.graph import SwitchLink


def shortest_path_links(
    rt: UpDownRouting, src_switch: int, dst_switch: int
) -> list[SwitchLink]:
    """One minimal legal path as a link sequence (deterministic choice).

    Ties between equally short continuations break toward the lowest
    (neighbour switch id, link id), making the result reproducible.
    """
    path: list[SwitchLink] = []
    here, phase = src_switch, Phase.UP
    while here != dst_switch:
        hops = rt.next_hops(here, phase, dst_switch)
        if not hops:
            raise AssertionError("routing table returned no hop before arrival")
        best = min(hops, key=lambda h: (h.to_switch, h.link.link_id))
        path.append(best.link)
        here, phase = best.to_switch, best.next_phase
    return path


def all_minimal_paths(
    rt: UpDownRouting, src_switch: int, dst_switch: int, limit: int = 1000
) -> list[list[SwitchLink]]:
    """Enumerate every minimal legal path (bounded by ``limit``).

    Mainly for tests and for the path-worm coverage search on the paper's
    small networks; raises ``ValueError`` when truncation would occur so a
    caller never silently works with a partial enumeration.
    """
    results: list[list[SwitchLink]] = []

    def walk(here: int, phase: Phase, acc: list[SwitchLink]) -> None:
        if here == dst_switch:
            results.append(list(acc))
            if len(results) > limit:
                raise ValueError("minimal path enumeration exceeded limit")
            return
        for hop in rt.next_hops(here, phase, dst_switch):
            acc.append(hop.link)
            walk(hop.to_switch, hop.next_phase, acc)
            acc.pop()

    walk(src_switch, Phase.UP, [])
    return results


def updown_decomposition(
    rt: UpDownRouting, src_switch: int, links: list[SwitchLink]
) -> tuple[int, int]:
    """Split a path into its up* prefix and down* suffix lengths.

    Returns ``(num_up, num_down)`` with ``num_up + num_down == len(links)``.
    This is the constructive form of the paper's route legality condition:
    a route is legal iff such a decomposition exists.

    Raises:
        ValueError: if the sequence is not contiguous (a link does not leave
            the switch the previous one entered) or takes an up traversal
            after a down traversal.
    """
    here = src_switch
    num_up = num_down = 0
    for i, lk in enumerate(links):
        lk.end_on(here)  # raises ValueError on a non-contiguous sequence
        if rt.is_up_traversal(lk, here):
            if num_down:
                raise ValueError(
                    f"up traversal at position {i} (link {lk.link_id}) "
                    "after the path already went down"
                )
            num_up += 1
        else:
            num_down += 1
        here = lk.other_end(here).switch
    return num_up, num_down


def is_legal_path(
    rt: UpDownRouting, src_switch: int, links: list[SwitchLink]
) -> bool:
    """Validate a link sequence against the up*/down* rule.

    Checks contiguity (each link leaves the switch the previous one entered)
    and the no-up-after-down rule.
    """
    try:
        updown_decomposition(rt, src_switch, links)
    except ValueError:
        return False
    return True


def path_switches(src_switch: int, links: list[SwitchLink]) -> list[int]:
    """The switch sequence visited by a path, including the start."""
    seq = [src_switch]
    here = src_switch
    for lk in links:
        here = lk.other_end(here).switch
        seq.append(here)
    return seq
