"""Physical channels of the switch fabric.

Contention in a wormhole/cut-through network happens at *channels*: the
directional use of a physical link, plus the node injection and delivery
links.  Each channel is a unit-capacity FIFO resource (one worm owns it at a
time) with a header-crossing delay and a record of the flit buffer waiting on
its far side (which governs how quickly a blocked worm can drain off of it --
see :mod:`repro.sim.worm`).

Channel kinds and their crossing delays:

* ``inject``  (NI -> switch input buffer): link propagation.
* ``forward`` (switch input buffer -> crossbar -> link -> next switch input
  buffer): switch delay + link propagation.
* ``deliver`` (switch input buffer -> crossbar -> host link -> NI): switch
  delay + link propagation; the NI sinks at link rate, so its buffer is
  effectively unbounded.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.params import SimParams
from repro.sim.engine import Engine
from repro.sim.resources import MultiLaneResource
from repro.topology.graph import NetworkTopology, SwitchLink

UNBOUNDED_BUFFER = 1 << 30
"""Sentinel buffer size for sinks that always accept flits (the NI)."""


def _lane_seed(route_seed: int, uid: int) -> int:
    """Deterministic per-channel lane-pointer seed (sha256, never hash())."""
    payload = f"lane:{route_seed}:{uid}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


class Channel(MultiLaneResource):
    """One directional channel of the fabric.

    A channel is a :class:`MultiLaneResource` with ``params.vc_count`` lanes:
    each lane is an independent virtual channel of the physical link.  The
    lane-allocation pointer is seeded per channel from ``(route_seed, uid)``
    so allocation is deterministic yet decorrelated across channels."""

    __slots__ = (
        "uid",
        "kind",
        "delay",
        "downstream_buffer",
        "to_switch",
        "to_node",
        "link",
        "from_switch",
        "flits_carried",
        "worms_carried",
        "revoked",
    )

    def __init__(
        self,
        engine: Engine,
        uid: int,
        kind: str,
        delay: int,
        downstream_buffer: int,
        *,
        from_switch: int | None = None,
        to_switch: int | None = None,
        to_node: int | None = None,
        link: SwitchLink | None = None,
        name: str = "",
        lanes: int = 1,
        lane_seed: int = 0,
    ) -> None:
        super().__init__(engine, lanes=lanes, name=name, lane_seed=lane_seed)
        self.uid = uid
        self.kind = kind
        self.delay = delay
        self.downstream_buffer = downstream_buffer
        self.from_switch = from_switch
        self.to_switch = to_switch
        self.to_node = to_node
        self.link = link
        self.flits_carried = 0
        self.worms_carried = 0
        self.revoked = False

    def revoke(self) -> None:
        """Take the channel out of service (runtime link fault).

        A revoked channel never accepts new traffic: worms ask
        :attr:`revoked` before requesting it and abort instead (a link-level
        nack).  Worms already holding or queued on the channel are aborted by
        the fault injector; their queued grant closures drain by releasing
        immediately, so the channel ends idle and stays idle.
        """
        self.revoked = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Channel {self.name or self.uid} kind={self.kind}>"


class Fabric:
    """All channels of a topology, wired for a given parameter set."""

    def __init__(self, engine: Engine, topo: NetworkTopology, params: SimParams) -> None:
        self.engine = engine
        self.topo = topo
        self.params = params
        self._uid = 0
        forward_delay = params.switch_delay + params.link_delay

        self.inject: dict[int, Channel] = {}
        for node in range(topo.num_nodes):
            sw = topo.switch_of_node(node)
            self.inject[node] = self._make(
                "inject",
                params.link_delay,
                params.input_buffer_flits,
                to_switch=sw,
                name=f"inj:n{node}->s{sw}",
            )

        self.deliver: dict[int, Channel] = {}
        for node in range(topo.num_nodes):
            sw = topo.switch_of_node(node)
            self.deliver[node] = self._make(
                "deliver",
                forward_delay,
                UNBOUNDED_BUFFER,
                from_switch=sw,
                to_node=node,
                name=f"del:s{sw}->n{node}",
            )

        # Two directional channels per switch-switch link, keyed by
        # (link_id, from_switch).
        self.forward: dict[tuple[int, int], Channel] = {}
        for lk in topo.links:
            for frm in (lk.a.switch, lk.b.switch):
                to = lk.other_end(frm).switch
                self.forward[(lk.link_id, frm)] = self._make(
                    "forward",
                    forward_delay,
                    params.input_buffer_flits,
                    from_switch=frm,
                    to_switch=to,
                    link=lk,
                    name=f"fwd:l{lk.link_id}:s{frm}->s{to}",
                )

    def _make(self, kind: str, delay: int, downstream_buffer: int, **kw) -> Channel:
        ch = Channel(
            self.engine,
            self._uid,
            kind,
            delay,
            downstream_buffer,
            lanes=self.params.vc_count,
            lane_seed=_lane_seed(self.params.route_seed, self._uid),
            **kw,
        )
        self._uid += 1
        return ch

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def forward_channel(self, link: SwitchLink, from_switch: int) -> Channel:
        """The directional channel crossing ``link`` out of ``from_switch``."""
        return self.forward[(link.link_id, from_switch)]

    def all_channels(self) -> list[Channel]:
        """Every channel in the fabric (for load/occupancy statistics)."""
        return (
            list(self.inject.values())
            + list(self.deliver.values())
            + list(self.forward.values())
        )

    def total_flits_carried(self) -> int:
        """Sum of flits moved across all channels (traffic volume metric)."""
        return sum(c.flits_carried for c in self.all_channels())
