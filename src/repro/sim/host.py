"""Host and network-interface model (system S8).

Each processing node has:

* a **host CPU** that pays the per-message software overhead ``o_host`` on
  every send and on every receive (FIFO: one overhead block at a time);
* an **I/O bus** crossed by DMA between host memory and NI memory, a serial
  pipe of ``io_bus_flits_per_cycle`` shared by inbound and outbound
  transfers;
* an **NI processor** that pays ``o_ni`` per packet handled (send, receive,
  or -- for the smart-NI multicast -- per forwarded replica);
* the **injection channel** onto its switch (owned by the fabric).

The composite send/receive pipelines the three multicast schemes share are in
:mod:`repro.sim.messaging`; this module provides the primitives.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.resources import FifoResource, ThroughputResource
from repro.sim.worm import SteerFn, Worm


class Host:
    """One node's processors and local transfer resources."""

    def __init__(self, net: "SimNetwork", node: int) -> None:  # noqa: F821
        self.net = net
        self.node = node
        engine = net.engine
        self.cpu = FifoResource(engine, name=f"cpu:{node}")
        self.ni = FifoResource(engine, name=f"ni:{node}")
        self.bus = ThroughputResource(
            engine, net.params.io_bus_flits_per_cycle, name=f"iobus:{node}"
        )

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def cpu_task(self, then: Callable[[], None]) -> None:
        """Run one ``o_host`` software overhead block on the host CPU."""
        self.cpu.hold_for(self.net.params.o_host, then)

    def ni_task(self, then: Callable[[], None]) -> None:
        """Run one ``o_ni`` per-packet overhead block on the NI processor."""
        self.ni.hold_for(self.net.params.o_ni, then)

    def dma(self, flits: int, then: Callable[[], None]) -> None:
        """Move ``flits`` across the I/O bus (direction-agnostic: the bus is
        shared by host->NI and NI->host transfers)."""
        self.bus.transfer(flits, then)

    def launch_worm(
        self,
        steer: SteerFn,
        initial_state: object,
        on_delivered: Callable[[int, float], None],
        on_done: Callable[[], None] | None = None,
        on_abort: Callable[[str], None] | None = None,
        length: int | None = None,
        label: str = "",
    ) -> Worm:
        """Inject one packet from this node's NI into the network.

        If a runtime link fault kills the worm (see :mod:`repro.chaos`), the
        nack propagates back to this source host: a ``nack`` trace record is
        emitted, the abort counters bump, and ``on_abort`` (if given) fires
        so the sender can retry.
        """
        net = self.net

        def nack(reason: str) -> None:
            net.chaos.worms_aborted += 1
            net.chaos.nacks += 1
            if net.trace is not None:
                net.trace.emit(
                    net.engine.now, "nack", label,
                    f"node {self.node}: {reason}",
                )
            if on_abort is not None:
                on_abort(reason)

        worm = Worm(
            net.engine,
            net.params,
            steer,
            on_delivered,
            on_done=on_done,
            on_abort=nack,
            rng=net.rng,
            length=length,
            label=label,
            trace=net.trace,
        )
        worm.epoch = net.routing_epoch
        net.register_worm(worm)
        if net.worm_log is not None:
            net.worm_log.append(worm)
        worm.start(net.fabric.inject[self.node], initial_state)
        return worm
