"""Utilization instrumentation: where does the time go?

Collects channel/CPU/NI/I-O-bus utilization from a :class:`SimNetwork` over
a measurement window.  Used by the load experiments to identify the
saturating resource (e.g. the paper's observation that the NI-based scheme
"results in a greater amount of traffic and higher contention in the
network") and by the examples for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.network import SimNetwork


@dataclass(frozen=True)
class UtilizationReport:
    """Resource utilizations over a window (fractions of wall time)."""

    window: float
    mean_link_utilization: float
    max_link_utilization: float
    max_link_name: str
    mean_injection_utilization: float
    mean_delivery_utilization: float
    mean_cpu_utilization: float
    mean_ni_utilization: float
    mean_bus_utilization: float
    total_flits_moved: int
    # Runtime fault-injection counters (zero on fault-free runs); cumulative
    # network totals, not windowed -- see repro.sim.network.ChaosStats.
    worms_aborted: int = 0
    retries: int = 0
    reconfigurations: int = 0
    reconfig_latency_total: float = 0.0

    def bottleneck(self) -> str:
        """Name the resource class closest to saturation."""
        candidates = {
            "links": self.max_link_utilization,
            "injection": self.mean_injection_utilization,
            "delivery": self.mean_delivery_utilization,
            "host CPUs": self.mean_cpu_utilization,
            "NI processors": self.mean_ni_utilization,
            "I/O buses": self.mean_bus_utilization,
        }
        return max(candidates, key=lambda k: candidates[k])


class NetworkMonitor:
    """Snapshot-based utilization measurement over a simulation window.

    Usage::

        mon = NetworkMonitor(net)     # snapshot at window start
        net.run(until=...)            # simulate
        report = mon.report()         # utilizations since the snapshot
    """

    def __init__(self, net: SimNetwork) -> None:
        self.net = net
        self.start_time = net.engine.now
        self._busy0 = self._busy_snapshot()
        self._flits0 = net.fabric.total_flits_carried()

    def _busy_snapshot(self) -> dict[str, float]:
        snap: dict[str, float] = {}
        for ch in self.net.fabric.all_channels():
            snap[f"ch:{ch.uid}"] = ch.busy_time
        for h in self.net.hosts:
            snap[f"cpu:{h.node}"] = h.cpu.busy_time
            snap[f"ni:{h.node}"] = h.ni.busy_time
            snap[f"bus:{h.node}"] = h.bus.flits_moved
        return snap

    def report(self) -> UtilizationReport:
        """Utilizations accumulated since construction."""
        window = self.net.engine.now - self.start_time
        if window <= 0:
            raise ValueError("measurement window is empty")
        now = self._busy_snapshot()

        def util(key: str) -> float:
            return (now[key] - self._busy0[key]) / window

        fab = self.net.fabric
        link_utils = {
            ch.name: util(f"ch:{ch.uid}") for ch in fab.forward.values()
        }
        inj_utils = [util(f"ch:{ch.uid}") for ch in fab.inject.values()]
        del_utils = [util(f"ch:{ch.uid}") for ch in fab.deliver.values()]
        cpu_utils = [util(f"cpu:{h.node}") for h in self.net.hosts]
        ni_utils = [util(f"ni:{h.node}") for h in self.net.hosts]
        bus_utils = [
            (now[f"bus:{h.node}"] - self._busy0[f"bus:{h.node}"])
            / (h.bus.rate * window)
            for h in self.net.hosts
        ]
        max_link = max(link_utils, key=lambda k: link_utils[k], default="")

        def mean(xs):
            return sum(xs) / len(xs) if xs else 0.0

        return UtilizationReport(
            window=window,
            mean_link_utilization=mean(list(link_utils.values())),
            max_link_utilization=link_utils.get(max_link, 0.0),
            max_link_name=max_link,
            mean_injection_utilization=mean(inj_utils),
            mean_delivery_utilization=mean(del_utils),
            mean_cpu_utilization=mean(cpu_utils),
            mean_ni_utilization=mean(ni_utils),
            mean_bus_utilization=mean(bus_utils),
            total_flits_moved=fab.total_flits_carried() - self._flits0,
            worms_aborted=self.net.chaos.worms_aborted,
            retries=self.net.chaos.retries,
            reconfigurations=self.net.chaos.reconfigurations,
            reconfig_latency_total=self.net.chaos.reconfig_latency_total,
        )
