"""Shared scenario builders for cross-validating the two simulation backends.

The agreement suite (``tests/test_flitsim_crossvalidation.py``) and the
backend benchmark (``benchmarks/bench_backends.py``) both need to run *one*
scenario -- a set of worms, each with a start time, a source node and a
destination set -- on both the worm-level event model and the flit-level
reference simulator, and compare per-destination delivery times exactly.

This module provides the common plumbing:

* :func:`multicast_route` merges deterministic minimal unicast routes into a
  single multidestination :class:`~repro.sim.flitsim.FlitRoute` tree (shared
  prefixes become one channel; divergence points become replication forks),
  refusing inputs whose paths re-converge (a worm may not cross the same
  channel twice);
* :func:`route_steer` turns such a tree into a worm-level
  :data:`~repro.sim.worm.SteerFn`, so the event backend replicates along the
  *identical* static tree -- any timing disagreement is then a modelling
  bug, never a routing difference;
* :func:`run_event_scenario` / :func:`run_flit_scenario` execute a job list
  on each backend and return ``{(worm_index, node): tail_time}``.
"""

from __future__ import annotations

from repro.params import SimParams
from repro.routing.updown import UpDownRouting
from repro.sim.flitsim import FlitLevelFabric, FlitRoute, unicast_route
from repro.sim.network import SimNetwork
from repro.sim.worm import Deliver, Forward, SteerFn, Worm
from repro.topology.graph import NetworkTopology

Job = tuple[int, int, tuple[int, ...]]
"""(start_cycle, source_node, destination_nodes)"""


def multicast_route(
    topo: NetworkTopology,
    rt: UpDownRouting,
    src_node: int,
    dst_nodes: tuple[int, ...] | list[int],
) -> FlitRoute:
    """Merge deterministic unicast routes into one multidestination tree.

    Each destination contributes its minimal deterministic up*/down* path;
    paths sharing a channel prefix share tree nodes, and the first channel
    where they differ becomes a replication fork.  Raises ``ValueError`` if
    two branches would re-converge onto the same channel (the result would
    not be a tree, and a worm may not cross a channel twice).
    """
    if not dst_nodes:
        raise ValueError("multicast_route needs at least one destination")
    routes = [unicast_route(topo, rt, src_node, d) for d in dst_nodes]
    root = FlitRoute(routes[0].channel)

    def merge(into: FlitRoute, sub: FlitRoute) -> None:
        for child in sub.children:
            match = next(
                (c for c in into.children if c.channel == child.channel), None
            )
            if match is None:
                match = FlitRoute(child.channel)
                into.children.append(match)
            merge(match, child)

    for r in routes:
        merge(root, r)

    seen: set[tuple] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if node.channel in seen:
            raise ValueError(
                f"paths to {tuple(dst_nodes)} re-converge on channel "
                f"{node.channel}; the merged route is not a tree"
            )
        seen.add(node.channel)
        stack.extend(node.children)
    return root


def route_steer(net: SimNetwork, route: FlitRoute) -> SteerFn:
    """Steer function replaying a static :class:`FlitRoute` tree.

    The steer state is the tree node whose channel the header just crossed;
    pass ``route`` itself as the worm's ``initial_state``.
    """
    links = {lk.link_id: lk for lk in net.topo.links}
    fabric = net.fabric

    def steer(switch: int, state: object):
        node: FlitRoute = state if isinstance(state, FlitRoute) else route
        instrs: list[Deliver | Forward] = []
        for child in node.children:
            key = child.channel
            if key[0] == "del":
                instrs.append(Deliver(fabric.deliver[key[1]]))
            elif key[0] == "fwd":
                _, link_id, frm = key
                if frm != switch:
                    raise ValueError(
                        f"route channel {key} does not leave switch {switch}"
                    )
                instrs.append(
                    Forward([(fabric.forward_channel(links[link_id], frm), child)])
                )
            else:  # pragma: no cover - route trees only nest fwd/del
                raise ValueError(f"unexpected mid-route channel {key}")
        return instrs

    return steer


def run_event_scenario(
    topo: NetworkTopology, params: SimParams, jobs: list[Job]
) -> dict[tuple[int, int], float]:
    """Run ``jobs`` on the worm-level event backend; return delivery times."""
    net = SimNetwork(topo, params)
    rt = net.routing
    out: dict[tuple[int, int], float] = {}
    for i, (start, src, dsts) in enumerate(jobs):
        route = multicast_route(topo, rt, src, dsts)

        def launch(i=i, src=src, route=route) -> None:
            w = Worm(
                net.engine,
                net.params,
                route_steer(net, route),
                on_delivered=lambda n, t, i=i: out.__setitem__((i, n), t),
                rng=net.rng,
            )
            w.start(net.fabric.inject[src], route)

        if start == 0:
            launch()
        else:
            net.engine.at(start, launch)
    net.run()
    return out


def run_flit_scenario(
    topo: NetworkTopology, params: SimParams, jobs: list[Job]
) -> dict[tuple[int, int], float]:
    """Run ``jobs`` on the flit-level reference backend; return delivery times."""
    rt = UpDownRouting.build(topo, orientation=params.routing_tree)
    fab = FlitLevelFabric(topo, params)
    for i, (start, src, dsts) in enumerate(jobs):
        fab.inject(start, multicast_route(topo, rt, src, dsts), worm_id=i)
    fab.run()
    return {k: float(v) for k, v in fab.deliveries.items()}
