"""Composite send/receive pipelines shared by the multicast schemes.

The paper's cost structure (Section 4.1): software overheads are **per
message** -- ``o_host`` at the host processor and ``o_ni`` at the NI
processor, on both the sending and the receiving side.  Packets of a
multi-packet message stream through DMA engines and the injection channel
back to back without re-running NI software (an optional per-packet NI cost,
``params.o_ni_per_packet``, exists for ablations and defaults to 0).

* conventional send: ``o_host`` on the host CPU -> DMA of the whole message
  across the I/O bus -> ``o_ni`` once on the NI -> packets injected back to
  back (the injection channel serialises them at wire rate);
* conventional receive: first packet triggers ``o_ni`` once; every packet is
  DMA'd to host memory; after the last DMA, ``o_host`` completes the message.

The smart-NI (FPFS) flows used by the NI-based multicast scheme are also
here: an interior node's NI pays ``o_ni`` for receive processing plus
``o_ni`` per *child replica stream*, after which individual packets are
forwarded the moment they arrive (First-Packet-First-Served), hiding the host
receive overhead and eliminating interior host send overheads entirely.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.host import Host

LaunchFn = Callable[[], None]
"""Launches one already-planned packet worm from the local NI."""


def _chain_ni_tasks(host: Host, count: int, then: Callable[[], None]) -> None:
    """Run ``count`` consecutive ``o_ni`` blocks on the NI, then ``then``."""
    if count == 0:
        then()
        return
    host.ni_task(lambda: _chain_ni_tasks(host, count - 1, then))


def _launch_all_with_per_packet_cost(host: Host, launchers: list[LaunchFn],
                                     then: Callable[[], None] | None) -> None:
    """Issue launches in order; with a nonzero per-packet NI cost each launch
    is preceded by its own NI block, otherwise all are queued immediately
    (the injection channel FIFO preserves the order)."""
    if host.net.params.o_ni_per_packet == 0:
        for ln in launchers:
            ln()
        if then is not None:
            then()
        return

    def step(i: int) -> None:
        def fire() -> None:
            launchers[i]()
            if i + 1 < len(launchers):
                step(i + 1)
            elif then is not None:
                then()

        host.ni.hold_for(host.net.params.o_ni_per_packet, fire)

    step(0)


def host_send(host: Host, packet_launchers: list[LaunchFn],
              on_injected: Callable[[], None] | None = None) -> None:
    """Conventional host-initiated send of one message.

    ``packet_launchers`` has one entry per packet (in transmission order).
    ``on_injected`` fires once the NI has handed every packet to the
    injection channel (not after network delivery -- the sender is free).
    """
    if not packet_launchers:
        raise ValueError("a message has at least one packet")
    params = host.net.params
    total_flits = params.packet_flits * len(packet_launchers)

    def after_ni() -> None:
        _launch_all_with_per_packet_cost(host, packet_launchers, on_injected)

    def after_dma() -> None:
        host.ni_task(after_ni)

    host.cpu_task(lambda: host.dma(total_flits, after_dma))


def host_send_multiworm(
    host: Host,
    worm_groups: list[list[LaunchFn]],
    on_injected: Callable[[], None] | None = None,
) -> None:
    """Host send of one message carried by several multidestination worms.

    Used by header-capacity-limited switch multicast: one host overhead and
    one message DMA, then the NI pays ``o_ni`` per *worm group* (it must
    encode a separate header per group) and injects the group's packets
    back to back.
    """
    if not worm_groups or not all(worm_groups):
        raise ValueError("need at least one non-empty worm group")
    params = host.net.params
    n_packets = len(worm_groups[0])
    total_flits = params.packet_flits * n_packets

    def group(i: int) -> None:
        def fire() -> None:
            _launch_all_with_per_packet_cost(
                host,
                worm_groups[i],
                (lambda: group(i + 1))
                if i + 1 < len(worm_groups)
                else on_injected,
            )

        host.ni_task(fire)

    host.cpu_task(lambda: host.dma(total_flits, lambda: group(0)))


class HostReceiver:
    """Conventional per-message receive pipeline at a destination.

    Feed it one :meth:`packet_arrived` call per packet tail reaching the NI;
    the first arrival pays ``o_ni`` once, each packet is DMA'd to host
    memory, and after the last DMA ``o_host`` runs, then
    ``on_delivered(time)`` fires.
    """

    def __init__(self, host: Host, n_packets: int,
                 on_delivered: Callable[[float], None]) -> None:
        if n_packets < 1:
            raise ValueError("a message has at least one packet")
        self.host = host
        self.n_packets = n_packets
        self.on_delivered = on_delivered
        self._arrived = 0
        self._dma_done = 0
        self._awaiting_dma = 0
        self._ni_ready = False

    def packet_arrived(self) -> None:
        """One packet's tail has fully reached this node's NI."""
        self._arrived += 1
        if self._arrived > self.n_packets:
            raise RuntimeError("more packets arrived than the message has")
        per_pkt = self.host.net.params.o_ni_per_packet
        if self._arrived == 1:
            self._awaiting_dma += 1
            self.host.ni.hold_for(
                self.host.net.params.o_ni + per_pkt, self._on_ni_ready
            )
        elif per_pkt:
            self.host.ni.hold_for(per_pkt, self._one_more)
        else:
            self._one_more()

    def _on_ni_ready(self) -> None:
        self._ni_ready = True
        self._flush()

    def _one_more(self) -> None:
        self._awaiting_dma += 1
        self._flush()

    def _flush(self) -> None:
        if not self._ni_ready:
            return
        flits = self.host.net.params.packet_flits
        while self._awaiting_dma:
            self._awaiting_dma -= 1
            self.host.dma(flits, self._after_dma)

    def _after_dma(self) -> None:
        self._dma_done += 1
        if self._dma_done == self.n_packets:
            self.host.cpu_task(
                lambda: self.on_delivered(self.host.net.engine.now)
            )


class _FpfsProgram:
    """Sequential NI-processor program implementing FPFS forwarding.

    The NI works through the replica schedule in strict packet-major order:
    ``(packet 0, child 0), (packet 0, child 1), ..., (packet 1, child 0),
    ...``.  Before the first replica to a given child it pays one ``o_ni``
    set-up block (the per-message NI send overhead of that replica stream);
    each replica launch may additionally cost ``o_ni_per_packet``.  A replica
    whose packet has not arrived yet suspends the program (strict FPFS --
    the NI does not skip ahead), resuming on arrival.

    ``prologue_blocks`` many ``o_ni`` blocks run before any forwarding (the
    interior node's message receive processing; 0 at the source).
    """

    def __init__(
        self,
        host: Host,
        replica_launchers: list[list[LaunchFn]],
        prologue_blocks: int,
        on_done: Callable[[], None] | None = None,
    ) -> None:
        self.host = host
        self.launchers = replica_launchers
        self.order = [
            (p, c)
            for p in range(len(replica_launchers))
            for c in range(len(replica_launchers[p]))
        ]
        self.prologue_left = prologue_blocks
        self.on_done = on_done
        self._avail: set[int] = set()
        self._setup_done: set[int] = set()
        self._idx = 0
        self._active = False
        self._started = False

    def start(self) -> None:
        """Begin the program (runs the prologue, then waits for packets)."""
        if self._started:
            raise RuntimeError("FPFS program already started")
        self._started = True
        self._resume()

    def packet_available(self, p: int) -> None:
        """Mark packet ``p`` present in NI memory; resume if suspended."""
        self._avail.add(p)
        if self._started:
            self._resume()

    def _resume(self) -> None:
        if self._active:
            return
        self._active = True
        self._step()

    def _step(self) -> None:
        o_ni = self.host.net.params.o_ni
        per_pkt = self.host.net.params.o_ni_per_packet
        while True:
            if self.prologue_left > 0:
                self.prologue_left -= 1
                self.host.ni.hold_for(o_ni, self._step)
                return
            if self._idx >= len(self.order):
                self._active = False
                if self.on_done is not None:
                    cb, self.on_done = self.on_done, None
                    cb()
                return
            p, c = self.order[self._idx]
            if p not in self._avail:
                self._active = False  # suspended; packet_available resumes
                return
            if c not in self._setup_done:
                self._setup_done.add(c)
                self.host.ni.hold_for(o_ni, self._step)
                return
            launcher = self.launchers[p][c]
            self._idx += 1
            if per_pkt:
                self.host.ni.hold_for(per_pkt, lambda ln=launcher: (ln(), self._step()))
                return
            launcher()


class SmartNIForwarder:
    """FPFS smart-NI behaviour at an interior node of the NI-based multicast.

    The first packet's arrival starts the NI program: one ``o_ni`` receive
    block, then interleaved per-child stream set-up and packet-major replica
    forwarding (see :class:`_FpfsProgram`).  Every packet is DMA'd toward
    host memory in the background as it arrives; the host pays ``o_host``
    once after the whole message is in host memory.

    With ``params.ni_store_and_forward`` True (ablation E8), replica
    forwarding starts only after the last packet has arrived (FPFS off).
    """

    def __init__(
        self,
        host: Host,
        n_packets: int,
        replica_launchers: list[list[LaunchFn]],
        on_delivered: Callable[[float], None],
    ) -> None:
        """``replica_launchers[p][c]`` launches packet ``p``'s copy to child
        ``c``.  Arrivals index packets by order of arrival, which is also
        their transmission order on every channel of the path (adaptive
        routing can in principle reorder same-source packets; the replicas
        are indistinguishable in size and children, so the schedule is
        unaffected)."""
        if len(replica_launchers) != n_packets:
            raise ValueError("need one launcher row per packet")
        self.host = host
        self.n_packets = n_packets
        self.on_delivered = on_delivered
        self._arrived = 0
        self._dma_done = 0
        self._store_and_forward = host.net.params.ni_store_and_forward
        self._program = _FpfsProgram(host, replica_launchers, prologue_blocks=1)

    def packet_arrived(self) -> None:
        """One packet's tail has fully reached this node's NI."""
        idx = self._arrived
        self._arrived += 1
        if self._arrived > self.n_packets:
            raise RuntimeError("more packets arrived than the message has")
        self.host.dma(self.host.net.params.packet_flits, self._after_dma)
        if self._store_and_forward:
            if self._arrived == self.n_packets:
                for p in range(self.n_packets):
                    self._program.packet_available(p)
        else:
            self._program.packet_available(idx)
        if idx == 0:
            self._program.start()

    def _after_dma(self) -> None:
        self._dma_done += 1
        if self._dma_done == self.n_packets:
            self.host.cpu_task(
                lambda: self.on_delivered(self.host.net.engine.now)
            )


def smart_ni_source_send(
    host: Host,
    replica_launchers: list[list[LaunchFn]],
    on_injected: Callable[[], None] | None = None,
) -> None:
    """Source-side send of the NI-based multicast.

    One host overhead and one message DMA; the NI then runs the FPFS
    program: per-child ``o_ni`` stream set-up interleaved with packet-major
    replica injection.
    """
    if not replica_launchers or not replica_launchers[0]:
        raise ValueError("source must have at least one replica to send")
    params = host.net.params
    total_flits = params.packet_flits * len(replica_launchers)
    program = _FpfsProgram(
        host, replica_launchers, prologue_blocks=0, on_done=on_injected
    )

    def after_dma() -> None:
        for p in range(len(replica_launchers)):
            program.packet_available(p)
        program.start()

    host.cpu_task(lambda: host.dma(total_flits, after_dma))
