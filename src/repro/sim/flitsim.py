"""Cycle-accurate flit-level reference simulator (validation backend).

The production simulator (:mod:`repro.sim.worm`) advances packets at *worm*
granularity with closed-form tail/release times.  This module implements the
same fabric semantics by brute force -- ticking every cycle and moving
individual flits through channels and finite input buffers -- and exists
purely to *validate* the worm-level model: the test-suite runs identical
scenarios on both backends and compares timings.

Semantics (matching DESIGN.md section 4):

* a channel transmits one flit per cycle; a flit entering at cycle ``t``
  arrives downstream at ``t + delay``;
* a channel is owned by one worm branch at a time, FIFO-granted, and becomes
  free the cycle its owner's tail flit finishes crossing;
* a head flit arriving at a switch decodes for ``routing_delay`` cycles and
  then requests this branch's outgoing channels;
* flit ``m`` may be sent on a channel only when flit ``m - (B+1)`` of the
  same branch has finished crossing the *next* channel (``B`` = downstream
  input-buffer capacity) -- the same capacity recurrence the event model
  uses, so buffered cut-through and wormhole chain-blocking reproduce;
* at a replication fork, the shared upstream channel may send flit ``m``
  only when *every* branch satisfies its constraint (a flit is held in the
  buffer until all branches have consumed it).

Routes are static trees (:class:`FlitRoute`), not adaptive -- validation
scenarios compare deterministic routing, where both backends must agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.params import SimParams
from repro.routing.paths import shortest_path_links
from repro.routing.updown import UpDownRouting
from repro.topology.graph import NetworkTopology

ChannelKey = tuple
"""('inj', node) | ('fwd', link_id, from_switch) | ('del', node)"""


@dataclass
class FlitRoute:
    """Static route tree: a channel to cross, then subtrees per branch.

    A leaf (no children) must be a delivery channel.
    """

    channel: ChannelKey
    children: list["FlitRoute"] = field(default_factory=list)


def unicast_route(
    topo: NetworkTopology, rt: UpDownRouting, src_node: int, dst_node: int
) -> FlitRoute:
    """Deterministic minimal-route tree for a unicast packet."""
    src_sw = topo.switch_of_node(src_node)
    dst_sw = topo.switch_of_node(dst_node)
    links = shortest_path_links(rt, src_sw, dst_sw)
    leaf = FlitRoute(("del", dst_node))
    node = leaf
    here = dst_sw
    for lk in reversed(links):
        frm = lk.other_end(here).switch
        node = FlitRoute(("fwd", lk.link_id, frm), [node])
        here = frm
    return FlitRoute(("inj", src_node), [node])


@dataclass
class _Branch:
    """One channel traversal of one worm (a node of its route tree)."""

    worm_id: int
    route: FlitRoute
    depth: int = 0
    children: list["_Branch"] = field(default_factory=list)
    granted: bool = False
    requested: bool = False
    sent: int = 0          # flits sent into the channel
    crossed: int = 0       # flits that finished crossing
    finish_times: dict[int, int] = field(default_factory=dict)

    @property
    def key(self) -> ChannelKey:
        return self.route.channel


class FlitLevelFabric:
    """The brute-force simulator.  One instance per scenario."""

    def __init__(self, topo: NetworkTopology, params: SimParams) -> None:
        params.validate()
        self.topo = topo
        self.params = params
        self.L = params.packet_flits
        self.B = params.input_buffer_flits
        self.now = 0
        self._worms: list[dict] = []
        self._queues: dict[ChannelKey, list[_Branch]] = {}
        self._owner: dict[ChannelKey, _Branch | None] = {}
        self._free_at: dict[ChannelKey, int] = {}
        self._pending_decodes: list[tuple[int, _Branch]] = []
        self._pending_starts: list[tuple[int, _Branch]] = []
        self.deliveries: dict[tuple[int, int], int] = {}
        """(worm_id, node) -> cycle the tail arrived at the NI."""

    # ------------------------------------------------------------------
    # Channel properties
    # ------------------------------------------------------------------
    def _delay(self, key: ChannelKey) -> int:
        if key[0] == "inj":
            return self.params.link_delay
        return self.params.switch_delay + self.params.link_delay

    def _buffer_of(self, key: ChannelKey) -> int:
        """Capacity of the buffer this channel feeds."""
        if key[0] == "del":
            return 1 << 30  # NI sinks at wire rate
        return self.B

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------
    def inject(self, start_time: int, route: FlitRoute, worm_id: int | None = None) -> int:
        """Schedule a worm: its root (injection) channel is requested at
        ``start_time``.  Returns the worm id."""
        wid = worm_id if worm_id is not None else len(self._worms)

        def build(r: FlitRoute, depth: int = 0) -> _Branch:
            br = _Branch(worm_id=wid, route=r, depth=depth)
            br.children = [build(c, depth + 1) for c in r.children]
            if not br.children and r.channel[0] != "del":
                raise ValueError("route leaf must be a delivery channel")
            return br

        root = build(route)
        self._worms.append({"id": wid, "root": root})
        self._pending_starts.append((start_time, root))
        return wid

    # ------------------------------------------------------------------
    # Core loop
    # ------------------------------------------------------------------
    def _request(self, branch: _Branch) -> None:
        if branch.requested:
            raise AssertionError("double request")
        branch.requested = True
        key = branch.key
        self._queues.setdefault(key, []).append(branch)
        self._owner.setdefault(key, None)
        self._free_at.setdefault(key, 0)

    def _upstream_ok(self, branch: _Branch, parent: _Branch | None, m: int) -> bool:
        """Is flit ``m`` of this branch present at the source buffer?"""
        if parent is None:
            return True  # source NI holds the whole packet
        return parent.crossed > m

    def _capacity_ok(self, branch: _Branch, m: int) -> bool:
        """Downstream-capacity recurrence along single chains.

        Replication forks (more than one child) are exempt: replicating
        switches provide per-port full-packet replication buffers
        (deadlock-free replication support, paper section 3.3), so a fork
        absorbs the packet regardless of its branches' progress.
        """
        if len(branch.children) != 1:
            return True  # delivery sink, or fork with replication buffers
        need = m - (self._buffer_of(branch.key) + 1)
        if need < 0:
            return True
        deadline = self.now + self._delay(branch.key)
        child = branch.children[0]
        finish = child.finish_times.get(need)
        return finish is not None and finish <= deadline

    def run(self, max_cycles: int = 2_000_000) -> None:
        """Tick until every injected worm has fully drained."""
        while not self._all_done():
            self._tick()
            if self.now > max_cycles:
                raise RuntimeError("flit-level simulation exceeded max_cycles")

    def _all_done(self) -> bool:
        if self._pending_starts or self._pending_decodes:
            return False
        for key, owner in self._owner.items():
            if owner is not None or self._queues.get(key):
                return False
        return True

    def _tick(self) -> None:
        t = self.now
        # 1. starts scheduled for this cycle
        # Integer cycle counters: exact match is the tick semantics here.
        for st, br in [x for x in self._pending_starts if x[0] == t]:  # lint: disable=float-time-eq
            self._pending_starts.remove((st, br))
            self._request(br)
        # 2. decodes completing now: request child channels
        for dt, br in [x for x in self._pending_decodes if x[0] == t]:  # lint: disable=float-time-eq
            self._pending_decodes.remove((dt, br))
            for child in br.children:
                self._request(child)
        # 3. free channels whose owner's tail has fully crossed
        for key, owner in list(self._owner.items()):
            if owner is not None and owner.crossed >= self.L:
                self._owner[key] = None
        # 4. grants (FIFO)
        for key, queue in self._queues.items():
            if queue and self._owner.get(key) is None and self._free_at.get(key, 0) <= t:
                branch = queue.pop(0)
                self._owner[key] = branch
                branch.granted = True
        # 5. transmissions: each owned channel moves at most one flit.
        # Deepest branches first: a parent's capacity check must see its
        # child's send of this same cycle (a child's availability check only
        # depends on crossings settled at the end of earlier cycles, so the
        # leaf-first order is a valid topological schedule).
        arrivals: list[tuple[_Branch, int]] = []
        owned = sorted(
            (
                (key, branch)
                for key, branch in self._owner.items()
                if branch is not None
            ),
            key=lambda kb: -kb[1].depth,
        )
        for key, branch in owned:
            m = branch.sent
            if m >= self.L:
                continue
            parent = self._parent_of(branch)
            if not self._upstream_ok(branch, parent, m):
                continue
            if not self._capacity_ok(branch, m):
                continue
            branch.sent += 1
            finish = t + self._delay(key)
            branch.finish_times[m] = finish
            arrivals.append((branch, finish))
        # 6. process arrivals due exactly at future times lazily: instead of
        # a calendar, advance crossed counters when their finish time passes.
        self.now += 1
        self._settle_crossings()

    def _settle_crossings(self) -> None:
        """Promote flits whose finish time has been reached."""
        t = self.now
        for worm in self._worms:
            stack = [worm["root"]]
            while stack:
                br = stack.pop()
                while br.crossed < br.sent and br.finish_times[br.crossed] <= t:
                    m = br.crossed
                    br.crossed += 1
                    if m == 0 and br.children:
                        # head arrived at the next switch: decode then fan out
                        self._pending_decodes.append(
                            (br.finish_times[0] + self.params.routing_delay, br)
                        )
                    if m == self.L - 1 and not br.children:
                        node = br.route.channel[1]
                        self.deliveries[(br.worm_id, node)] = br.finish_times[m]
                stack.extend(br.children)

    def _parent_of(self, branch: _Branch) -> _Branch | None:
        for worm in self._worms:
            found = self._find_parent(worm["root"], branch)
            if found is not None:
                return found
            if worm["root"] is branch:
                return None
        return None

    @staticmethod
    def _find_parent(root: _Branch, target: _Branch) -> _Branch | None:
        stack = [root]
        while stack:
            br = stack.pop()
            for c in br.children:
                if c is target:
                    return br
                stack.append(c)
        return None
