"""Cycle-accurate flit-level reference simulator (validation backend).

The production simulator (:mod:`repro.sim.worm`) advances packets at *worm*
granularity with closed-form tail/release times.  This module implements the
same fabric semantics by brute force -- ticking every cycle and moving
individual flits through channels and finite input buffers -- and exists
purely to *validate* the worm-level model: the test-suite runs identical
scenarios on both backends and compares timings.

Semantics (matching DESIGN.md section 4):

* a channel transmits one flit per cycle; a flit entering at cycle ``t``
  arrives downstream at ``t + delay``;
* a channel is owned by one worm branch at a time, FIFO-granted, and becomes
  free the cycle its owner's tail flit finishes crossing.  There is no
  separate free-time calendar: the grant loop clears the owner on the first
  tick at which its tail has fully crossed and re-grants the channel on that
  same tick, which *is* the "free the cycle the tail finishes" rule (an
  earlier ``_free_at`` field duplicated this information, was never written,
  and has been removed);
* a head flit arriving at a switch decodes for ``routing_delay`` cycles and
  then requests this branch's outgoing channels;
* flit ``m`` may be sent on a channel only when flit ``m - (B+1)`` of the
  same branch has finished crossing the *next* channel (``B`` = downstream
  input-buffer capacity) -- the same capacity recurrence the event model
  uses, so buffered cut-through and wormhole chain-blocking reproduce;
* at a replication fork, the shared upstream channel may send flit ``m``
  only when *every* branch satisfies its constraint (a flit is held in the
  buffer until all branches have consumed it).

Routes are static trees (:class:`FlitRoute`), not adaptive -- validation
scenarios compare deterministic routing, where both backends must agree.

Complexity: each tick costs O(owned channels + in-flight branches), not
O(all channels + all branches ever injected): starts and decodes are
indexed by cycle, grant scanning only touches channels whose grantability
may have changed (a new request or a freed channel), crossings settle from
an active-branch set that drained branches leave, and fully idle stretches
(every channel free, nothing queued or in flight) fast-forward straight to
the next scheduled start/decode.  ``inject`` validates that ``start_time``
is an integer cycle ``>= now`` -- anything else could never match a tick
and the worm would silently never start.
"""

from __future__ import annotations

import operator
from collections import deque
from dataclasses import dataclass, field

from repro.params import SimParams
from repro.routing.paths import shortest_path_links
from repro.routing.updown import UpDownRouting
from repro.topology.graph import NetworkTopology

ChannelKey = tuple
"""('inj', node) | ('fwd', link_id, from_switch) | ('del', node)"""


@dataclass
class FlitRoute:
    """Static route tree: a channel to cross, then subtrees per branch.

    A leaf (no children) must be a delivery channel.
    """

    channel: ChannelKey
    children: list["FlitRoute"] = field(default_factory=list)


def unicast_route(
    topo: NetworkTopology, rt: UpDownRouting, src_node: int, dst_node: int
) -> FlitRoute:
    """Deterministic minimal-route tree for a unicast packet."""
    src_sw = topo.switch_of_node(src_node)
    dst_sw = topo.switch_of_node(dst_node)
    links = shortest_path_links(rt, src_sw, dst_sw)
    leaf = FlitRoute(("del", dst_node))
    node = leaf
    here = dst_sw
    for lk in reversed(links):
        frm = lk.other_end(here).switch
        node = FlitRoute(("fwd", lk.link_id, frm), [node])
        here = frm
    return FlitRoute(("inj", src_node), [node])


@dataclass
class _Branch:
    """One channel traversal of one worm (a node of its route tree)."""

    worm_id: int
    route: FlitRoute
    depth: int = 0
    parent: "_Branch | None" = field(default=None, repr=False)
    rank: int = 0          # global settle order (worm order, then tree walk)
    delay: int = 0         # channel crossing delay (precomputed at build)
    cap: int = 0           # downstream buffer capacity + 1 (precomputed)
    children: list["_Branch"] = field(default_factory=list)
    granted: bool = False
    requested: bool = False
    sent: int = 0          # flits sent into the channel
    crossed: int = 0       # flits that finished crossing
    finish_times: dict[int, int] = field(default_factory=dict)

    @property
    def key(self) -> ChannelKey:
        return self.route.channel


class FlitLevelFabric:
    """The brute-force simulator.  One instance per scenario."""

    def __init__(self, topo: NetworkTopology, params: SimParams) -> None:
        params.validate()
        self.topo = topo
        self.params = params
        self.L = params.packet_flits
        self.B = params.input_buffer_flits
        self.vcs = params.vc_count
        self.now = 0
        self._worms: list[dict] = []
        self._queues: dict[ChannelKey, deque[_Branch]] = {}
        self._owners: dict[ChannelKey, list[_Branch]] = {}
        """Per channel: branches holding a lane, in grant order.  Each of
        the ``vcs`` lanes is an independent full-rate virtual channel, so a
        channel admits up to ``vcs`` concurrent owners; with ``vcs=1`` this
        degenerates to the historical single-owner dict (the key is deleted
        the moment its owner list empties, so dict insertion order -- the
        transmission-order tie-break -- is preserved exactly)."""
        self._owned_order: list[_Branch] | None = None
        """Cached depth-sorted owners; invalidated on every grant/free."""
        self._owned_count = 0
        self._queued_count = 0
        self._rank_counter = 0
        self._pending_decodes: dict[int, list[_Branch]] = {}
        self._pending_starts: dict[int, list[_Branch]] = {}
        self._active: dict[int, _Branch] = {}
        """rank -> branch with in-flight flits (``crossed < sent``)."""
        self._grant_candidates: dict[ChannelKey, None] = {}
        """Ordered set of channels whose grantability may have changed."""
        self._to_free: list[tuple[ChannelKey, _Branch]] = []
        self.deliveries: dict[tuple[int, int], int] = {}
        """(worm_id, node) -> cycle the tail arrived at the NI."""

    # ------------------------------------------------------------------
    # Channel properties
    # ------------------------------------------------------------------
    def _delay(self, key: ChannelKey) -> int:
        if key[0] == "inj":
            return self.params.link_delay
        return self.params.switch_delay + self.params.link_delay

    def _buffer_of(self, key: ChannelKey) -> int:
        """Capacity of the buffer this channel feeds."""
        if key[0] == "del":
            return 1 << 30  # NI sinks at wire rate
        return self.B

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------
    def inject(self, start_time: int, route: FlitRoute, worm_id: int | None = None) -> int:
        """Schedule a worm: its root (injection) channel is requested at
        ``start_time``.  Returns the worm id.

        ``start_time`` must be an integer cycle not in the past: the tick
        loop matches starts by exact cycle, so a fractional or already-past
        start would never fire and the worm would spin ``run()`` into its
        ``max_cycles`` guard instead of starting.
        """
        try:
            start_time = operator.index(start_time)
        except TypeError:
            raise TypeError(
                f"start_time must be an integer cycle, got {start_time!r}"
            ) from None
        if start_time < self.now:
            raise ValueError(
                f"start_time {start_time} is in the past (now={self.now})"
            )
        wid = worm_id if worm_id is not None else len(self._worms)

        def build(r: FlitRoute, parent: _Branch | None, depth: int) -> _Branch:
            br = _Branch(
                worm_id=wid,
                route=r,
                depth=depth,
                parent=parent,
                delay=self._delay(r.channel),
                cap=self._buffer_of(r.channel) + 1,
            )
            br.children = [build(c, br, depth + 1) for c in r.children]
            if not br.children and r.channel[0] != "del":
                raise ValueError("route leaf must be a delivery channel")
            return br

        root = build(route, None, 0)
        # Settle ranks replicate the historical full-tree walk order (worms
        # in injection order, each tree in LIFO-stack order), so same-cycle
        # decode requests keep their exact FIFO arrival order.
        stack = [root]
        while stack:
            br = stack.pop()
            br.rank = self._rank_counter
            self._rank_counter += 1
            stack.extend(br.children)
        self._worms.append({"id": wid, "root": root})
        self._pending_starts.setdefault(start_time, []).append(root)
        return wid

    # ------------------------------------------------------------------
    # Core loop
    # ------------------------------------------------------------------
    def _request(self, branch: _Branch) -> None:
        if branch.requested:
            raise AssertionError("double request")
        branch.requested = True
        key = branch.key
        queue = self._queues.get(key)
        if queue is None:
            queue = self._queues[key] = deque()
        queue.append(branch)
        self._queued_count += 1
        self._grant_candidates[key] = None

    def run(self, max_cycles: int = 2_000_000) -> None:
        """Tick until every injected worm has fully drained."""
        while not self._all_done():
            self._tick()
            if self.now > max_cycles:
                raise RuntimeError("flit-level simulation exceeded max_cycles")

    def _all_done(self) -> bool:
        return not (
            self._pending_starts
            or self._pending_decodes
            or self._owned_count
            or self._queued_count
        )

    def _tick(self) -> None:
        t = self.now
        # 0. nothing owned, queued, or in flight: every intervening cycle is
        # a no-op, so jump straight to the next scheduled start/decode.
        if not (self._active or self._owned_count or self._queued_count):
            upcoming = [
                cyc
                for pending in (self._pending_starts, self._pending_decodes)
                if pending
                for cyc in (min(pending),)
            ]
            if upcoming:
                nxt = min(upcoming)
                if nxt > t:
                    t = self.now = nxt
        # 1. starts scheduled for this cycle
        for br in self._pending_starts.pop(t, ()):
            self._request(br)
        # 2. decodes completing now: request child channels
        for br in self._pending_decodes.pop(t, ()):
            for child in br.children:
                self._request(child)
        # 3. free lanes whose owner's tail has fully crossed (marked by
        # the settle pass of the previous tick)
        if self._to_free:
            for key, branch in self._to_free:
                owners = self._owners[key]
                owners.remove(branch)
                if not owners:
                    del self._owners[key]
                self._owned_count -= 1
                if self._queues.get(key):
                    self._grant_candidates[key] = None
            self._to_free.clear()
            self._owned_order = None
        # 4. grants (FIFO): only channels with a new request or a fresh
        # release can change state; everything else is skipped.  A channel
        # grants as long as it has a free lane (at most ``vcs`` owners).
        if self._grant_candidates:
            for key in self._grant_candidates:
                queue = self._queues.get(key)
                while queue and len(self._owners.get(key, ())) < self.vcs:
                    branch = queue.popleft()
                    self._queued_count -= 1
                    self._owners.setdefault(key, []).append(branch)
                    self._owned_count += 1
                    branch.granted = True
                    self._owned_order = None
            self._grant_candidates.clear()
        # 5. transmissions: each owned channel moves at most one flit.
        # Deepest branches first: a parent's capacity check must see its
        # child's send of this same cycle (a child's availability check only
        # depends on crossings settled at the end of earlier cycles, so the
        # leaf-first order is a valid topological schedule).
        order = self._owned_order
        if order is None:
            order = self._owned_order = sorted(
                (b for lst in self._owners.values() for b in lst),
                key=lambda b: -b.depth,
            )
        L = self.L
        for branch in order:
            m = branch.sent
            if m >= L:
                continue
            # upstream availability: flit m must have crossed the parent
            # channel (the source NI holds the whole packet for the root)
            parent = branch.parent
            if parent is not None and parent.crossed <= m:
                continue
            # downstream capacity along single chains: flit m may enter only
            # once flit m - (B+1) has cleared the next channel.  Replication
            # forks (2+ children) are exempt -- replicating switches provide
            # per-port full-packet replication buffers (deadlock-free
            # replication support, paper section 3.3) -- and so are delivery
            # sinks (no children; the NI absorbs at wire rate).
            if len(branch.children) == 1:
                need = m - branch.cap
                if need >= 0:
                    finish = branch.children[0].finish_times.get(need)
                    if finish is None or finish > t + branch.delay:
                        continue
            branch.sent = m + 1
            branch.finish_times[m] = t + branch.delay
            self._active[branch.rank] = branch
        # 6. process arrivals due exactly at future times lazily: instead of
        # a calendar, advance crossed counters when their finish time passes.
        self.now += 1
        self._settle_crossings()

    def _settle_crossings(self) -> None:
        """Promote flits whose finish time has been reached.

        Only branches with in-flight flits are visited, in the deterministic
        rank order assigned at injection (matching the historical full-tree
        walk); a branch leaves the active set once fully settled.
        """
        if not self._active:
            return
        t = self.now
        for rank in sorted(self._active):
            br = self._active[rank]
            ft = br.finish_times
            while br.crossed < br.sent and ft[br.crossed] <= t:
                m = br.crossed
                br.crossed += 1
                if m == 0 and br.children:
                    # head arrived at the next switch: decode then fan out
                    self._pending_decodes.setdefault(
                        ft[0] + self.params.routing_delay, []
                    ).append(br)
                if m == self.L - 1:
                    if not br.children:
                        node = br.route.channel[1]
                        self.deliveries[(br.worm_id, node)] = ft[m]
                    # tail fully crossed: the owned lane frees next tick
                    self._to_free.append((br.key, br))
            if br.crossed == br.sent:
                del self._active[rank]
