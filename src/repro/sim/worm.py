"""Worm-level cut-through packet model with flit-exact timing.

A *worm* is one packet (``L`` flits) moving through the fabric, possibly
replicating into a tree (multidestination worms).  Rather than ticking every
flit every cycle, the model advances the *header* through FIFO channel grants
and computes tail/release times in closed form, which is exact for rate-1
flit streaming through per-hop input buffers:

The per-flit send schedule of every hop is the least fixed point of three
constraint families (rate limit from the grant, flit availability from the
parent hop, and buffer backpressure from the next hop -- see the comment on
:meth:`Worm._send_bound`), evaluated lazily as grants occur.  When the
downstream buffer holds a whole packet a blocked packet absorbs into it and
frees its upstream channels -- virtual cut-through; with small buffers the
worm stalls spanning several channels -- wormhole chain-blocking.

Replication forks are special: replicating switch ports carry *full-packet
replication buffers* (the "support for deadlock-free replication ...
required at the switches" of the paper's Section 3.3), so branches advance
independently and a blocked branch neither starves its siblings nor
back-pressures the shared feed.  Without that hardware support, two
multidestination worms replicating across each other genuinely deadlock --
the cycle-accurate reference backend (:mod:`repro.sim.flitsim`) reproduces
both behaviours, and the cross-validation suite pins this model to it.

Complexity: finalization is event-driven -- each grant or expansion
re-attempts only the changed hop and the hops whose constraint walks are
registered as blocked on it, so a grant costs O(affected hops x walk
length) rather than rescanning the whole replication tree (see
:meth:`Worm._refinalize`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.params import SimParams
from repro.sim.engine import Engine
from repro.sim.fabric import Channel


@dataclass
class Deliver:
    """Steer instruction: absorb a copy at the node on ``channel``."""

    channel: Channel


@dataclass
class Forward:
    """Steer instruction: continue toward another switch.

    ``options`` are the adaptive alternatives (all on minimal legal
    continuations), each paired with the scheme-private routing state the
    steer function will receive at the next switch if that channel is the
    one chosen (e.g. the up*/down* phase depends on which link is taken).

    ``adaptive_options`` (escape-VC mode only) are minimal-path shortcuts
    *outside* the up*/down* order.  They may only be taken on lanes >= 1 of
    a channel with a free adaptive lane at decision time -- a worm never
    waits on one -- so lane 0 remains a deadlock-free escape path
    (see docs/virtual_channels.md).
    """

    options: list[tuple[Channel, object]]
    adaptive_options: list[tuple[Channel, object]] = field(default_factory=list)


SteerFn = Callable[[int, object], list["Deliver | Forward"]]
"""(switch, state) -> replication instructions at this switch."""


class _NotFinal(Exception):
    """A tail-time bound still depends on a pending grant/expansion.

    Carries the *blocker*: the ungranted/unexpanded hop the constraint walk
    stopped at.  The failed hop parks itself on the blocker's waiter list
    and is only re-attempted when that hop changes state.
    """

    def __init__(self, blocker: "_Hop") -> None:
        super().__init__("tail-time bound not final")
        self.blocker = blocker


@dataclass
class _Hop:
    """One granted-or-requested channel on the worm's replication tree."""

    channel: Channel
    parent: "_Hop | None"
    idx: int = 0            # creation order (finalization tie-break)
    lane: int = 0           # virtual channel granted (set with h)
    adaptive: bool = False  # escape-mode shortcut: must avoid lane 0
    h: float | None = None  # header finished crossing; None until granted
    terminal: bool = False  # delivery hop: chain ends here
    expanded: bool = False  # children hops all created (requests issued)
    children: list["_Hop"] = field(default_factory=list)
    release_scheduled: bool = False
    released: bool = False  # channel given back (normal tail or abort)
    counted: bool = False   # traffic committed to the channel's counters
    waiters: list["_Hop"] = field(default_factory=list, repr=False)
    """Hops whose last finalization attempt blocked on this hop."""


class Worm:
    """One packet in flight; drives itself through the fabric via events.

    Args:
        engine: the event engine.
        params: timing parameters (packet length, buffers, delays).
        steer: routing/replication decision function, called once per switch
            the header enters (at ``header arrival + routing_delay``).
        on_delivered: ``(node, tail_time)`` fired when the last flit of a
            copy reaches a destination NI.
        on_done: optional; fired when every delivery has completed *and*
            every channel has been released.
        on_abort: optional; fired (with a reason string) when the worm is
            killed by a runtime link fault -- the nack propagated back to
            the source host.  ``on_done`` never fires for an aborted worm.
        rng: shared RNG for adaptive tie-breaks (deterministic per seed).
        length: flits in this worm; defaults to ``params.packet_flits``.
    """

    def __init__(
        self,
        engine: Engine,
        params: SimParams,
        steer: SteerFn,
        on_delivered: Callable[[int, float], None],
        on_done: Callable[[], None] | None = None,
        on_abort: Callable[[str], None] | None = None,
        rng: random.Random | None = None,
        length: int | None = None,
        label: str = "",
        trace: "object | None" = None,
    ) -> None:
        if params.link_delay < 1:
            raise ValueError(
                "worm timing model requires link_delay >= 1 (header must "
                "advance at least one cycle per hop)"
            )
        self.engine = engine
        self.params = params
        self.steer = steer
        self.on_delivered = on_delivered
        self.on_done = on_done
        self.on_abort = on_abort
        self.rng = rng or random.Random(params.route_seed)
        self.length = params.packet_flits if length is None else length
        self.label = label
        self.trace = trace
        """Optional :class:`~repro.sim.tracelog.TraceLog` receiving events."""
        self.start_time: float | None = None
        self.finish_time: float | None = None
        self.aborted = False
        self.abort_reason = ""
        self.epoch = 0
        """Routing epoch at launch (stamped by :meth:`Host.launch_worm`);
        post-run audits judge the worm's route against the orientation it was
        planned under, not against post-reconfiguration tables."""
        self.on_retire: "Callable[[Worm], None] | None" = None
        """Set by the launching host: deregisters the worm from the
        network's live-worm registry on done *or* abort."""
        self._unreleased = 0
        self._pending_deliveries = 0
        self._started = False
        self._channels_used: set[int] = set()
        self._hops: list[_Hop] = []

    # ------------------------------------------------------------------
    # Launch
    # ------------------------------------------------------------------
    def start(self, inject_channel: Channel, initial_state: object) -> None:
        """Inject the worm: queue for the source node's injection channel."""
        if self._started:
            raise RuntimeError("worm already started")
        self._started = True
        self.start_time = self.engine.now
        root = self._new_hop(inject_channel, parent=None)
        self._request(root, next_state=initial_state)

    # ------------------------------------------------------------------
    # Hop mechanics
    # ------------------------------------------------------------------
    def _new_hop(self, channel: Channel, parent: _Hop | None) -> _Hop:
        if channel.uid in self._channels_used:
            raise RuntimeError(
                f"worm {self.label!r} routed across channel {channel.name} twice"
            )
        self._channels_used.add(channel.uid)
        hop = _Hop(channel=channel, parent=parent, idx=len(self._hops))
        if parent is not None:
            parent.children.append(hop)
        self._hops.append(hop)
        self._unreleased += 1
        return hop

    def _trace(self, event: str, detail: str) -> None:
        if self.trace is not None:
            self.trace.emit(self.engine.now, event, self.label, detail)

    def _request(self, hop: _Hop, next_state: object) -> None:
        if hop.channel.revoked:
            # Link-level nack: the channel was taken out of service by a
            # runtime fault after this hop was planned.
            self.abort(f"channel {hop.channel.name} revoked")
            return

        def granted(lane: int) -> None:
            hop.lane = lane
            if self.aborted or hop.released:
                # The worm died while this request sat in the FIFO; the
                # grant just made the lane ours, so hand it straight
                # back (no traffic is counted for a cancelled hop).
                hop.released = True
                hop.channel.release(lane)
                return
            hop.h = self.engine.now + hop.channel.delay
            self._trace("grant", hop.channel.name)
            if not hop.terminal:
                # Header reaches the next switch's input buffer at hop.h and
                # spends routing_delay being decoded before replication.
                self.engine.at(
                    hop.h + self.params.routing_delay,
                    lambda: self._expand(hop, next_state),
                )
            self._refinalize(hop)

        hop.channel.request(granted, adaptive_only=hop.adaptive)

    @staticmethod
    def _load(opt: tuple[Channel, object]) -> tuple[int, int]:
        """Channel preference key: channels with a free lane (immediate
        grant) first, then shortest queue.  At ``vc_count=1`` a free lane
        is exactly the not-busy condition of the single-lane fabric."""
        ch = opt[0]
        if ch.has_free_lane:
            return (0, ch.queue_length)
        return (1, ch.queue_length + 1)

    def _choose(self, options: list[tuple[Channel, object]]) -> tuple[Channel, object]:
        """Adaptive output selection: idle channels first, then shortest
        queue; ties broken randomly (seeded) like Autonet's random port pick."""
        if not options:
            raise ValueError("Forward with no candidate channels")
        if len(options) == 1:
            return options[0]
        best = min(self._load(o) for o in options)
        pool = [o for o in options if self._load(o) == best]
        return pool[0] if len(pool) == 1 else self.rng.choice(pool)

    def _choose_vc(
        self,
        options: list[tuple[Channel, object]],
        adaptive: list[tuple[Channel, object]],
    ) -> tuple[tuple[Channel, object], bool]:
        """Escape-mode selection among up*/down* options and adaptive
        shortcuts.  Returns ``(choice, is_adaptive)``.

        The up*/down* set wins whenever one of its channels grants
        immediately; an adaptive shortcut is taken only when every legal
        option would block *and* the shortcut has a free lane >= 1 right
        now.  Adaptive requests are issued in the same engine event as this
        check, so they always grant synchronously -- a worm never waits on
        an adaptive lane, which is what keeps escape routing deadlock-free.
        """
        candidates = [
            o for o in adaptive
            if not o[0].revoked and o[0].has_free_adaptive_lane
        ]
        if not candidates:
            return self._choose(options), False
        if min(self._load(o) for o in options)[0] == 0:
            return self._choose(options), False
        return self._choose(candidates), True

    def _expand(self, hop: _Hop, state: object) -> None:
        """Header decoded at the switch after crossing ``hop``: replicate."""
        if self.aborted:
            return
        switch = hop.channel.to_switch
        assert switch is not None, "expanded a delivery hop"
        instrs = self.steer(switch, state)
        if not instrs:
            raise RuntimeError(
                f"steer returned no instructions for worm {self.label!r} at "
                f"switch {switch} -- the worm would be stranded"
            )
        for ins in instrs:
            if self.aborted:
                # A sibling branch hit a revoked channel while this loop
                # ran; stop issuing requests for the rest of the tree.
                return
            if isinstance(ins, Deliver):
                child = self._new_hop(ins.channel, parent=hop)
                child.terminal = True
                child.expanded = True
                self._pending_deliveries += 1
                self._request(child, next_state=None)
            elif isinstance(ins, Forward):
                options = [o for o in ins.options if not o[0].revoked]
                if not options:
                    self.abort(f"no surviving route at switch {switch}")
                    return
                if ins.adaptive_options:
                    # Escape mode resets the up*/down* phase after a
                    # shortcut, so a later legal segment could retrace a
                    # channel this worm already crossed -- filter used
                    # channels out (a worm's tree never crosses a channel
                    # twice).  Pure up*/down* routes are simple by
                    # construction, so this filter is escape-mode only.
                    used = self._channels_used
                    base = [o for o in options if o[0].uid not in used]
                    shortcuts = [
                        o for o in ins.adaptive_options if o[0].uid not in used
                    ]
                    (chosen, next_state), adaptive = self._choose_vc(
                        base or options, shortcuts
                    )
                else:
                    chosen, next_state = self._choose(options)
                    adaptive = False
                child = self._new_hop(chosen, parent=hop)
                child.adaptive = adaptive
                self._request(child, next_state=next_state)
            else:  # pragma: no cover - type guard
                raise TypeError(f"unknown steer instruction {ins!r}")
        hop.expanded = True
        self._refinalize(hop)

    def hop_records(self) -> list[tuple[int | None, Channel]]:
        """The replication tree as ``(parent_index, channel)`` per hop.

        Hops appear in creation order; ``parent_index`` indexes into this
        same list (``None`` for the injection root).  This is the dynamic
        ground truth the fuzz oracles audit: every root-to-leaf chain must
        be a contiguous legal up*/down* route ending in a delivery channel.
        """
        # Transient identity->index map: every hop is kept alive by
        # self._hops for the whole comprehension (no id reuse window), and
        # only the stable creation-order index leaves this method.
        index = {id(h): i for i, h in enumerate(self._hops)}  # lint: disable=identity-in-sim -- hops pinned by self._hops; only indices escape
        return [  # lint: disable=identity-in-sim -- same transient map, same pinned hops
            (None if h.parent is None else index[id(h.parent)], h.channel)
            for h in self._hops
        ]

    def _delivered(self, node: int) -> None:
        if self.aborted:
            return
        self._pending_deliveries -= 1
        self._trace("deliver", f"node {node}")
        self.on_delivered(node, self.engine.now)
        self._check_done()

    # ------------------------------------------------------------------
    # Tail-time computation (release and delivery scheduling)
    # ------------------------------------------------------------------
    # The per-flit send schedule of hop h obeys three constraint families
    # (matching the flit-level reference simulator in repro.sim.flitsim):
    #
    #   send_h(m) >= grant_h + m                       (rate limit)
    #   send_h(m) >= send_parent(m) + delay_parent     (flit availability)
    #   send_h(m) >= send_c(m - (B_h+1)) + delay_c - delay_h   per child c
    #                                                  (buffer capacity;
    #                                                   ALL children gate a
    #                                                   fork's shared feed)
    #
    # The tail time of hop h is delay_h + send_h(L-1), computed by
    # relaxation over these constraint "walks".  Down-moves strictly
    # decrease the flit index by the buffer capacity, so the recursion
    # terminates; the value is *final* once every hop a walk can visit at a
    # non-negative index has been granted (and expanded, where its children
    # matter).  For single-chain worms this reduces exactly to the old
    # closed form; for replication trees it also captures a blocked branch
    # starving its siblings through the shared buffer.
    #
    # Finalization is event-driven rather than a full rescan per grant: a
    # walk aborts at its *first* ungranted/unexpanded hop, and nothing
    # before that blocker can change (hops are granted before they expand
    # and both transitions are one-way), so the walk's outcome is frozen
    # until the blocker itself changes.  Each failed hop therefore parks on
    # its blocker's waiter list, and a state change re-attempts exactly the
    # changed hop plus its registered waiters -- O(affected) per grant, not
    # O(all hops).  Candidates are re-attempted in hop-creation order, which
    # keeps the engine's same-time event sequence identical to the full
    # rescan (ties fire in schedule order).

    def _refinalize(self, changed: _Hop) -> None:
        """Re-attempt tail finalization for ``changed`` and its waiters."""
        if self.aborted:
            return
        candidates = [changed]
        if changed.waiters:
            candidates.extend(changed.waiters)
            changed.waiters = []
        candidates.sort(key=lambda h: h.idx)
        L = self.length
        memo: dict[tuple[int, int], float] = {}
        now = self.engine.now
        attempted: set[int] = set()
        for hop in candidates:
            if hop.release_scheduled or hop.idx in attempted:
                continue
            attempted.add(hop.idx)
            try:
                tail = hop.channel.delay + self._send_bound(hop, L - 1, memo)
            except _NotFinal as nf:
                nf.blocker.waiters.append(hop)
                continue
            hop.release_scheduled = True
            when = max(tail, now)
            self.engine.at(when, lambda h=hop: self._release(h))
            if hop.terminal:
                node = hop.channel.to_node
                assert node is not None
                self.engine.at(when, lambda n=node: self._delivered(n))

    def _send_bound(
        self, hop: _Hop, idx: int, memo: dict[tuple[int, int], float]
    ) -> float:
        """Tightest lower bound on when flit ``idx`` enters ``hop``'s channel.

        Raises :class:`_NotFinal` (carrying the blocking hop) when an
        ungranted/unexpanded hop within the constraint horizon makes the
        value still unbounded.
        """
        if hop.h is None:
            raise _NotFinal(hop)
        # The memo dict lives only for one tail-time computation and every
        # hop in it is pinned by the replication tree, so identities are
        # stable for the memo's whole lifetime and never escape it.
        key = (id(hop), idx)  # lint: disable=identity-in-sim -- memo is call-local; hops pinned by the tree
        cached = memo.get(key)
        if cached is not None:
            return cached
        grant = hop.h - hop.channel.delay
        best = grant + idx
        if hop.parent is not None:
            best = max(
                best,
                self._send_bound(hop.parent, idx, memo)
                + hop.parent.channel.delay,
            )
        cap = hop.channel.downstream_buffer + 1
        if idx - cap >= 0 and not hop.terminal:
            if not hop.expanded:
                raise _NotFinal(hop)
            # Replicating switches provide deadlock-free replication
            # (paper section 3.3): every fork port has its own full-packet
            # replication buffer, so a blocked branch neither starves its
            # siblings nor back-pressures the shared feed.  Without this,
            # two tree worms replicating across each other genuinely
            # deadlock (the flit-level reference reproduces that), which is
            # precisely why the paper lists the support as a switch cost.
            if len(hop.children) == 1:
                child = hop.children[0]
                best = max(
                    best,
                    self._send_bound(child, idx - cap, memo)
                    + child.channel.delay
                    - hop.channel.delay,
                )
        memo[key] = best
        return best

    def _release(self, hop: _Hop) -> None:
        if hop.released:
            # Abort already handed the channel back; the tail-time release
            # event scheduled earlier must not double-release.
            return
        hop.released = True
        hop.counted = True
        self._trace("release", hop.channel.name)
        hop.channel.flits_carried += self.length
        hop.channel.worms_carried += 1
        hop.channel.release(hop.lane)
        self._unreleased -= 1
        self._check_done()

    def _check_done(self) -> None:
        if self.aborted:
            return
        if self._unreleased == 0 and self._pending_deliveries == 0:
            if self.finish_time is None:
                self.finish_time = self.engine.now
                if self.on_done is not None:
                    self.on_done()
                if self.on_retire is not None:
                    self.on_retire(self)

    # ------------------------------------------------------------------
    # Runtime faults
    # ------------------------------------------------------------------
    def abort(self, reason: str) -> None:
        """Kill the worm (runtime link fault): release every held channel.

        All granted, not-yet-released hops hand their channels back
        immediately *without* committing traffic to the channel counters
        (an aborted transfer never completed, so it carries no flits for
        the load accounting -- see :meth:`hop_counted`).  Ungranted hops
        stay queued; their grant closures self-release when the FIFO
        reaches them.  Pending tail-release and delivery events become
        no-ops via the :attr:`aborted` guards.  Fires ``on_abort`` (the
        nack to the source host) exactly once.
        """
        if self.aborted or self.finish_time is not None:
            return
        self.aborted = True
        self.abort_reason = reason
        self._trace("abort", reason)
        for hop in self._hops:
            if hop.h is not None and not hop.released:
                hop.released = True
                hop.channel.release(hop.lane)
        if self.on_abort is not None:
            self.on_abort(reason)
        if self.on_retire is not None:
            self.on_retire(self)

    def touches(self, channel_uids: set[int]) -> bool:
        """Does the worm hold or await any of these channels right now?

        Used by the fault injector to find the victims of a revoked link:
        a hop that is granted-but-unreleased holds the channel; one that is
        requested-but-ungranted sits in its FIFO queue.  Released hops no
        longer matter.
        """
        return any(
            not h.released and h.channel.uid in channel_uids
            for h in self._hops
        )

    def hop_counted(self) -> list[bool]:
        """Per-hop flag: did the hop commit traffic to its channel counters?

        Aligned with :meth:`hop_records` order.  Aborted hops release their
        channels without counting, so conservation audits must only expect
        ``length`` flits on hops marked ``True`` here.
        """
        return [h.counted for h in self._hops]
