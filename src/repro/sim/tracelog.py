"""Structured event tracing for worm-level debugging.

Attach a :class:`TraceLog` to a :class:`~repro.sim.network.SimNetwork`
(``net.trace = TraceLog()``) and every worm launched through a host records
its channel grants, header expansions, deliveries, and releases.  The log is
a bounded ring buffer, so tracing a long load run keeps the tail rather
than exhausting memory.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class TraceRecord:
    """One traced simulator event."""

    time: float
    event: str
    worm: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.time:>12.1f}] {self.event:<8} {self.worm:<18} {self.detail}"


class TraceLog:
    """Bounded in-memory event trace."""

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._records: deque[TraceRecord] = deque(maxlen=capacity)
        self.dropped = 0
        self._capacity = capacity
        self._stream_hash = hashlib.sha256()

    def emit(self, time: float, event: str, worm: str, detail: str) -> None:
        """Append one record (oldest records are dropped past capacity).

        The determinism digest is folded in *here*, streaming, so it covers
        every record ever emitted -- ring eviction only affects what
        :meth:`records` can still show, never the witness.
        """
        if len(self._records) == self._capacity:
            self.dropped += 1
        record = TraceRecord(time, event, worm, detail)
        self._records.append(record)
        self._stream_hash.update(str(record).encode())
        self._stream_hash.update(b"\n")

    def __len__(self) -> int:
        return len(self._records)

    def records(
        self,
        event: str | None = None,
        worm_contains: str | None = None,
    ) -> list[TraceRecord]:
        """Filtered view of the trace."""
        out = []
        for r in self._records:
            if event is not None and r.event != event:
                continue
            if worm_contains is not None and worm_contains not in r.worm:
                continue
            out.append(r)
        return out

    def format(self, limit: int = 200, **filters) -> str:
        """Human-readable tail of the (filtered) trace."""
        recs = self.records(**filters)[-limit:]
        body = "\n".join(str(r) for r in recs)
        header = f"trace: {len(self._records)} records"
        if self.dropped:
            header += f" ({self.dropped} dropped)"
        return header + ("\n" + body if body else "")

    def digest(self) -> str:
        """SHA-256 over every rendered record ever emitted (byte-identity
        witness).

        The determinism contract of the chaos subsystem -- same seed + same
        fault schedule => byte-identical runs -- is asserted by comparing
        this digest across replays (see ``tests/test_chaos.py``).  The hash
        is maintained streaming in :meth:`emit`, so it is independent of the
        ring ``capacity``: once eviction starts, the digest still witnesses
        the *full* run, not just the retained tail.  For runs that never
        evict this renders exactly the bytes the pre-streaming implementation
        hashed, so historical pinned digests are unchanged.
        """
        return self._stream_hash.hexdigest()

    def clear(self) -> None:
        """Drop all retained records (drop counter and digest are kept).

        ``clear`` resets what :meth:`records` can show; the streaming digest
        deliberately survives it, since the witness covers the whole run.
        """
        self._records.clear()
