"""Structured event tracing for worm-level debugging.

Attach a :class:`TraceLog` to a :class:`~repro.sim.network.SimNetwork`
(``net.trace = TraceLog()``) and every worm launched through a host records
its channel grants, header expansions, deliveries, and releases.  The log is
a bounded ring buffer, so tracing a long load run keeps the tail rather
than exhausting memory.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class TraceRecord:
    """One traced simulator event."""

    time: float
    event: str
    worm: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.time:>12.1f}] {self.event:<8} {self.worm:<18} {self.detail}"


class TraceLog:
    """Bounded in-memory event trace."""

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._records: deque[TraceRecord] = deque(maxlen=capacity)
        self.dropped = 0
        self._capacity = capacity

    def emit(self, time: float, event: str, worm: str, detail: str) -> None:
        """Append one record (oldest records are dropped past capacity)."""
        if len(self._records) == self._capacity:
            self.dropped += 1
        self._records.append(TraceRecord(time, event, worm, detail))

    def __len__(self) -> int:
        return len(self._records)

    def records(
        self,
        event: str | None = None,
        worm_contains: str | None = None,
    ) -> list[TraceRecord]:
        """Filtered view of the trace."""
        out = []
        for r in self._records:
            if event is not None and r.event != event:
                continue
            if worm_contains is not None and worm_contains not in r.worm:
                continue
            out.append(r)
        return out

    def format(self, limit: int = 200, **filters) -> str:
        """Human-readable tail of the (filtered) trace."""
        recs = self.records(**filters)[-limit:]
        body = "\n".join(str(r) for r in recs)
        header = f"trace: {len(self._records)} records"
        if self.dropped:
            header += f" ({self.dropped} dropped)"
        return header + ("\n" + body if body else "")

    def digest(self) -> str:
        """SHA-256 over every rendered record (byte-identity witness).

        The determinism contract of the chaos subsystem -- same seed + same
        fault schedule => byte-identical runs -- is asserted by comparing
        this digest across replays (see ``tests/test_chaos.py``).
        """
        h = hashlib.sha256()
        for r in self._records:
            h.update(str(r).encode())
            h.update(b"\n")
        return h.hexdigest()

    def clear(self) -> None:
        """Drop all records (the drop counter is kept)."""
        self._records.clear()
