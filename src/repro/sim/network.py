"""Assembled simulated system: topology + routing + fabric + hosts.

:class:`SimNetwork` wires everything together for one run and provides the
unicast steering function every scheme's point-to-point traffic uses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.params import SimParams
from repro.routing.escape import EscapeRouting
from repro.routing.reachability import ReachabilityTable
from repro.routing.updown import Phase, UpDownRouting
from repro.sim.engine import Engine
from repro.sim.fabric import Fabric
from repro.sim.host import Host
from repro.sim.worm import Deliver, Forward, SteerFn, Worm
from repro.topology.graph import NetworkTopology


@dataclass
class ChaosStats:
    """Runtime fault-injection counters (see :mod:`repro.chaos`).

    Lives on :attr:`SimNetwork.chaos` so the fault injector, the hosts'
    nack path, and the reliable-delivery layer can all bump the same
    counters without import cycles; :class:`~repro.sim.monitor.NetworkMonitor`
    folds them into its utilization report.
    """

    faults_fired: int = 0
    faults_skipped: int = 0
    worms_aborted: int = 0
    nacks: int = 0
    retries: int = 0
    duplicate_acks: int = 0
    gave_up: int = 0
    reconfigurations: int = 0
    reconfig_latency_total: float = 0.0


class SimNetwork:
    """One simulated irregular-network system instance.

    Construction computes routing tables and reachability once; many
    messages/experiments can then run on the same instance.  Instances are
    single-engine: do not share across concurrently running engines.
    """

    def __init__(
        self,
        topo: NetworkTopology,
        params: SimParams,
        engine: Engine | None = None,
    ) -> None:
        params.validate()
        self.topo = topo
        self.params = params
        self.engine = engine if engine is not None else Engine()
        self.routing = UpDownRouting.build(topo, orientation=params.routing_tree)
        self.reach = ReachabilityTable.build(self.routing)
        self.escape: EscapeRouting | None = (
            EscapeRouting(topo) if params.vc_routing == "escape" else None
        )
        """Minimal-path shortcut tables for lanes >= 1 (escape mode only)."""
        self.fabric = Fabric(self.engine, topo, params)
        self.rng = random.Random(params.route_seed)
        self.hosts = [Host(self, n) for n in range(topo.num_nodes)]
        self.trace = None
        """Assign a :class:`~repro.sim.tracelog.TraceLog` to trace every
        worm launched through the hosts."""
        self.worm_log = None
        """Assign a list and every :class:`~repro.sim.worm.Worm` launched
        through a host is appended to it (the fuzz oracles audit the hop
        trees of completed worms post-run)."""
        self.routing_epoch = 0
        """Bumped by every :meth:`reconfigure`; worms are stamped with the
        epoch they launched under and cached multicast plans are keyed by it
        (a reconfiguration therefore invalidates every cached plan)."""
        self.routing_history: list[UpDownRouting] = [self.routing]
        """Routing tables per epoch (``routing_history[epoch]``); post-run
        audits judge each worm against the orientation it was planned on."""
        self.chaos = ChaosStats()
        self.fault_listeners: list[Callable[[object], None]] = []
        """Called (in registration order, with the fired
        :class:`~repro.chaos.schedule.FaultEvent`) after the injector has
        revoked a link's channels, aborted its worms, and reconfigured."""
        self._live_worms: dict[int, Worm] = {}
        self._worm_uid = 0

    # ------------------------------------------------------------------
    # Steering
    # ------------------------------------------------------------------
    def unicast_steer(self, dest_node: int) -> SteerFn:
        """Steer function for a point-to-point packet toward ``dest_node``.

        State is the up*/down* :class:`Phase`.  At each switch the candidate
        set is every output on a minimal legal route (adaptive routing); with
        ``params.adaptive_routing`` False it is narrowed to the deterministic
        lowest-(switch, link) choice.
        """
        dest_switch = self.topo.switch_of_node(dest_node)
        deliver_ch = self.fabric.deliver[dest_node]
        routing = self.routing
        escape = self.escape
        fabric = self.fabric
        adaptive = self.params.adaptive_routing

        def steer(switch: int, state: object):
            phase: Phase = state if isinstance(state, Phase) else Phase.UP
            if switch == dest_switch:
                return [Deliver(deliver_ch)]
            hops = routing.next_hops(switch, phase, dest_switch)
            options = [
                (fabric.forward_channel(h.link, switch), h.next_phase)
                for h in hops
            ]
            if not adaptive:
                options = [
                    min(
                        options,
                        key=lambda o: (o[0].to_switch, o[0].link.link_id),
                    )
                ]
            if escape is None:
                return [Forward(options)]
            # Escape mode: minimal-path shortcuts for lanes >= 1.  The phase
            # state resets to UP after a shortcut (up-phase routes reach
            # every destination from every switch), and channels already in
            # the legal option set carry their legal next-phase instead.
            legal_uids = {o[0].uid for o in options}
            shortcuts = [
                (fabric.forward_channel(lk, switch), Phase.UP)
                for lk in escape.minimal_hops(switch, dest_switch)
                if fabric.forward_channel(lk, switch).uid not in legal_uids
            ]
            return [Forward(options, adaptive_options=shortcuts)]

        return steer

    # ------------------------------------------------------------------
    # Runtime faults (see repro.chaos)
    # ------------------------------------------------------------------
    def register_worm(self, worm: Worm) -> None:
        """Track a launched worm until it finishes or aborts.

        The registry is insertion-ordered, so the fault injector aborts a
        failed link's worms in launch order -- part of the determinism
        contract (same seed + same schedule => byte-identical traces).
        """
        uid = self._worm_uid
        self._worm_uid += 1
        self._live_worms[uid] = worm
        worm.on_retire = lambda _w, uid=uid: self._live_worms.pop(uid, None)

    def live_worms(self) -> list[Worm]:
        """In-flight worms, in launch order."""
        return list(self._live_worms.values())

    def reconfigure(self, topo: NetworkTopology) -> None:
        """Autonet-style reconfiguration onto a degraded topology.

        Recomputes the BFS/up*/down* orientation and the reachability
        strings on ``topo`` and bumps :attr:`routing_epoch`, invalidating
        every cached multicast plan.  The fabric keeps its existing
        channels (link ids are preserved by
        :func:`repro.topology.faults.remove_link`), so in-flight worms keep
        draining on the tables they launched under while new sends plan on
        the fresh ones.
        """
        self.topo = topo
        self.routing = UpDownRouting.build(
            topo, orientation=self.params.routing_tree
        )
        self.reach = ReachabilityTable.build(self.routing)
        if self.escape is not None:
            self.escape = EscapeRouting(topo)
        self.routing_epoch += 1
        self.routing_history.append(self.routing)
        self.chaos.reconfigurations += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain (or advance) the event engine.

        ``max_events`` is :meth:`Engine.run`'s safety valve against runaway
        networks (zero-delay retry loops and the like), plumbed through so
        callers of the network API can bound a run without reaching into the
        engine.
        """
        self.engine.run(until=until, max_events=max_events)

    def assert_quiescent(self) -> None:
        """Sanity check between experiments: nothing busy, nothing scheduled.

        A scheduled-but-unfired event is just as non-quiescent as a busy
        channel -- it will mutate state the moment the engine runs again --
        so the check requires ``engine.pending == 0`` too.
        """
        stuck = [c.name for c in self.fabric.all_channels() if c.busy]
        for h in self.hosts:
            if h.cpu.busy:
                stuck.append(h.cpu.name)
            if h.ni.busy:
                stuck.append(h.ni.name)
        if stuck:
            raise AssertionError(f"network not quiescent; busy: {stuck}")
        if self.engine.pending:
            raise AssertionError(
                f"network not quiescent; {self.engine.pending} pending "
                f"event(s), next at t={self.engine.next_event_time()}"
            )
