"""Assembled simulated system: topology + routing + fabric + hosts.

:class:`SimNetwork` wires everything together for one run and provides the
unicast steering function every scheme's point-to-point traffic uses.
"""

from __future__ import annotations

import random

from repro.params import SimParams
from repro.routing.reachability import ReachabilityTable
from repro.routing.updown import Phase, UpDownRouting
from repro.sim.engine import Engine
from repro.sim.fabric import Fabric
from repro.sim.host import Host
from repro.sim.worm import Deliver, Forward, SteerFn
from repro.topology.graph import NetworkTopology


class SimNetwork:
    """One simulated irregular-network system instance.

    Construction computes routing tables and reachability once; many
    messages/experiments can then run on the same instance.  Instances are
    single-engine: do not share across concurrently running engines.
    """

    def __init__(
        self,
        topo: NetworkTopology,
        params: SimParams,
        engine: Engine | None = None,
    ) -> None:
        params.validate()
        self.topo = topo
        self.params = params
        self.engine = engine if engine is not None else Engine()
        self.routing = UpDownRouting.build(topo, orientation=params.routing_tree)
        self.reach = ReachabilityTable.build(self.routing)
        self.fabric = Fabric(self.engine, topo, params)
        self.rng = random.Random(params.route_seed)
        self.hosts = [Host(self, n) for n in range(topo.num_nodes)]
        self.trace = None
        """Assign a :class:`~repro.sim.tracelog.TraceLog` to trace every
        worm launched through the hosts."""
        self.worm_log = None
        """Assign a list and every :class:`~repro.sim.worm.Worm` launched
        through a host is appended to it (the fuzz oracles audit the hop
        trees of completed worms post-run)."""

    # ------------------------------------------------------------------
    # Steering
    # ------------------------------------------------------------------
    def unicast_steer(self, dest_node: int) -> SteerFn:
        """Steer function for a point-to-point packet toward ``dest_node``.

        State is the up*/down* :class:`Phase`.  At each switch the candidate
        set is every output on a minimal legal route (adaptive routing); with
        ``params.adaptive_routing`` False it is narrowed to the deterministic
        lowest-(switch, link) choice.
        """
        dest_switch = self.topo.switch_of_node(dest_node)
        deliver_ch = self.fabric.deliver[dest_node]
        routing = self.routing
        fabric = self.fabric
        adaptive = self.params.adaptive_routing

        def steer(switch: int, state: object):
            phase: Phase = state if isinstance(state, Phase) else Phase.UP
            if switch == dest_switch:
                return [Deliver(deliver_ch)]
            hops = routing.next_hops(switch, phase, dest_switch)
            options = [
                (fabric.forward_channel(h.link, switch), h.next_phase)
                for h in hops
            ]
            if not adaptive:
                options = [
                    min(
                        options,
                        key=lambda o: (o[0].to_switch, o[0].link.link_id),
                    )
                ]
            return [Forward(options)]

        return steer

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> None:
        """Drain (or advance) the event engine."""
        self.engine.run(until=until)

    def assert_quiescent(self) -> None:
        """Sanity check between experiments: every channel and CPU idle."""
        stuck = [c.name for c in self.fabric.all_channels() if c.busy]
        for h in self.hosts:
            if h.cpu.busy:
                stuck.append(h.cpu.name)
            if h.ni.busy:
                stuck.append(h.ni.name)
        if stuck:
            raise AssertionError(f"network not quiescent; busy: {stuck}")
