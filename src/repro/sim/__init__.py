"""Discrete-event simulation core (systems S5-S8).

A small, deterministic, callback-based event engine; unit-capacity FIFO
resources and throughput (DMA) resources; the cut-through switch fabric with
worm-level flit-exact timing; and the host/network-interface model.
"""

from repro.sim.engine import Engine
from repro.sim.resources import FifoResource, ThroughputResource
from repro.sim.fabric import Channel, Fabric
from repro.sim.worm import Deliver, Forward, Worm
from repro.sim.host import Host
from repro.sim.network import SimNetwork

__all__ = [
    "Engine",
    "FifoResource",
    "ThroughputResource",
    "Channel",
    "Fabric",
    "Worm",
    "Deliver",
    "Forward",
    "Host",
    "SimNetwork",
]
