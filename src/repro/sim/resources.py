"""Contention resources: unit-capacity FIFO grants and rate-limited pipes.

Two resource shapes cover everything in the modelled system:

* :class:`FifoResource` -- one owner at a time, FIFO grant order.  Models
  host CPUs, NI processors, and (via :class:`~repro.sim.fabric.Channel`,
  which subclasses it) every physical channel in the fabric.
* :class:`ThroughputResource` -- a serial pipe moving ``rate`` flits/cycle;
  models the host I/O bus shared by inbound and outbound DMA.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.sim.engine import Engine

GrantFn = Callable[[], None]
LaneGrantFn = Callable[[int], None]


class MultiLaneResource:
    """A ``lanes``-capacity resource with deterministic lane allocation.

    Models a physical channel carved into virtual channels: each of the
    ``lanes`` grant slots is an independent full-rate lane of the channel
    (the multi-lane MIN interpretation -- lanes do not time-share bandwidth,
    so worm timing is unchanged by which lane carries it).

    Allocation is deterministic: a request scans for a free lane starting at
    a rotating pointer seeded by ``lane_seed`` (creation-order, i.e.
    lane-index, tie-break within the scan) and the pointer advances past each
    granted lane -- round-robin arbitration across lanes.  ``request(fn)``
    invokes ``fn(lane)`` synchronously when a lane is free, else queues FIFO;
    a release grants the first admissible waiter on the freed lane via a
    fresh zero-delay engine event.  With ``lanes=1`` the event sequence is
    byte-identical to the historical single-lane :class:`FifoResource`
    protocol (synchronous grant when idle, ``engine.after(0, ...)`` grant on
    release-with-queue).

    ``adaptive_only=True`` requests refuse lane 0 (the escape lane); they are
    issued by escape-mode routing only when a higher lane is known free, so
    in practice they always grant synchronously and never block on lane 0.
    """

    __slots__ = (
        "engine",
        "name",
        "lanes",
        "_owned",
        "_queue",
        "_next_lane",
        "grants",
        "releases",
        "peak_owned",
        "release_hook",
        "busy_time",
        "_granted_at",
    )

    def __init__(
        self,
        engine: Engine,
        lanes: int = 1,
        name: str = "",
        lane_seed: int = 0,
    ) -> None:
        if lanes < 1:
            raise ValueError("a channel needs at least one lane")
        self.engine = engine
        self.name = name
        self.lanes = lanes
        self._owned = [False] * lanes
        self._queue: deque[tuple[LaneGrantFn, bool]] = deque()
        self._next_lane = lane_seed % lanes
        self.grants = 0
        self.releases = 0
        self.peak_owned = 0
        """High-water mark of concurrently owned lanes (oracle food)."""
        self.release_hook: Callable[[float], None] | None = None
        """Observability: called with the release time on every release."""
        self.busy_time = 0.0
        """Accumulated lane-owned time (grant to release), summed over lanes."""
        self._granted_at = [0.0] * lanes

    def _find_free_lane(self, adaptive_only: bool) -> int | None:
        """First free admissible lane scanning from the rotating pointer."""
        for off in range(self.lanes):
            lane = (self._next_lane + off) % self.lanes
            if not self._owned[lane] and not (adaptive_only and lane == 0):
                return lane
        return None

    def _grant(self, lane: int) -> None:
        self._owned[lane] = True
        self.grants += 1
        self._granted_at[lane] = self.engine.now
        self._next_lane = (lane + 1) % self.lanes
        owned = sum(self._owned)
        if owned > self.peak_owned:
            self.peak_owned = owned

    def request(self, fn: LaneGrantFn, adaptive_only: bool = False) -> None:
        """Queue for a lane; ``fn(lane)`` fires on grant."""
        lane = self._find_free_lane(adaptive_only)
        if lane is not None:
            self._grant(lane)
            fn(lane)
        else:
            self._queue.append((fn, adaptive_only))

    def release(self, lane: int = 0) -> None:
        """Give ``lane`` up; the first admissible waiter is granted now."""
        if not self._owned[lane]:
            raise RuntimeError(f"release of idle lane {lane} of {self.name!r}")
        self.busy_time += self.engine.now - self._granted_at[lane]
        self.releases += 1
        if self.release_hook is not None:
            self.release_hook(self.engine.now)
        for i, (fn, adaptive_only) in enumerate(self._queue):
            if adaptive_only and lane == 0:
                continue
            del self._queue[i]
            self._grant(lane)
            # Fire through the engine so a grant is always a fresh event at
            # the current time (keeps callback stacks shallow/deterministic).
            self.engine.after(0, lambda fn=fn, lane=lane: fn(lane))
            return
        self._owned[lane] = False

    @property
    def busy(self) -> bool:
        """Whether any lane is currently owned."""
        return any(self._owned)

    @property
    def owned_lanes(self) -> int:
        """Number of lanes currently owned."""
        return sum(self._owned)

    @property
    def has_free_lane(self) -> bool:
        """Whether a request right now would be granted synchronously."""
        return not all(self._owned)

    @property
    def has_free_adaptive_lane(self) -> bool:
        """Whether an ``adaptive_only`` request would grant synchronously."""
        return any(not o for o in self._owned[1:])

    @property
    def queue_length(self) -> int:
        """Requesters waiting (excludes current lane owners)."""
        return len(self._queue)


class FifoResource:
    """A unit-capacity resource granted in strict request order.

    ``request(fn)`` queues ``fn``; it is invoked (at the engine's current
    time) the moment the resource becomes this requester's.  The grantee must
    eventually call :meth:`release` exactly once.
    """

    __slots__ = (
        "engine",
        "name",
        "_busy",
        "_queue",
        "grants",
        "release_hook",
        "busy_time",
        "_granted_at",
    )

    def __init__(self, engine: Engine, name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._busy = False
        self._queue: deque[GrantFn] = deque()
        self.grants = 0
        self.release_hook: Callable[[float], None] | None = None
        """Observability: called with the release time on every release."""
        self.busy_time = 0.0
        """Accumulated owned time (grant to release), for utilization."""
        self._granted_at = 0.0

    def request(self, fn: GrantFn) -> None:
        """Queue for the resource; ``fn`` fires on grant."""
        if not self._busy:
            self._busy = True
            self.grants += 1
            self._granted_at = self.engine.now
            fn()
        else:
            self._queue.append(fn)

    def release(self) -> None:
        """Give the resource up; the next queued requester is granted now."""
        if not self._busy:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        self.busy_time += self.engine.now - self._granted_at
        if self.release_hook is not None:
            self.release_hook(self.engine.now)
        if self._queue:
            fn = self._queue.popleft()
            self.grants += 1
            self._granted_at = self.engine.now
            # Fire through the engine so a grant is always a fresh event at
            # the current time (keeps callback stacks shallow/deterministic).
            self.engine.after(0, fn)
        else:
            self._busy = False

    @property
    def busy(self) -> bool:
        """Whether the resource is currently owned."""
        return self._busy

    @property
    def queue_length(self) -> int:
        """Requesters waiting (excludes the current owner)."""
        return len(self._queue)

    def hold_for(self, duration: float, then: GrantFn | None = None) -> None:
        """Convenience: request, hold ``duration`` cycles, release.

        ``then`` fires at the moment of release (after it).  Models a CPU
        executing a software overhead block.
        """

        def on_grant() -> None:
            def done() -> None:
                self.release()
                if then is not None:
                    then()

            self.engine.after(duration, done)

        self.request(on_grant)


class ThroughputResource:
    """A serial pipe with finite bandwidth (flits/cycle).

    Transfers are serviced strictly in request order, back to back: a
    transfer of ``n`` flits completes ``n / rate`` cycles after the pipe gets
    to it.  This models DMA engines on the host I/O bus, where send and
    receive transfers of one node share the same bus.
    """

    __slots__ = ("engine", "rate", "name", "_free_at", "transfers", "flits_moved")

    def __init__(self, engine: Engine, rate: float, name: str = "") -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.engine = engine
        self.rate = rate
        self.name = name
        self._free_at = 0.0
        self.transfers = 0
        self.flits_moved = 0

    def transfer(self, flits: int, fn: GrantFn) -> float:
        """Enqueue a transfer; ``fn`` fires at completion.

        Returns the completion time (also the time ``fn`` fires).
        """
        if flits < 0:
            raise ValueError("negative transfer size")
        start = max(self.engine.now, self._free_at)
        end = start + flits / self.rate
        self._free_at = end
        self.transfers += 1
        self.flits_moved += flits
        self.engine.at(end, fn)
        return end

    @property
    def backlog_cycles(self) -> float:
        """How far ahead of now the pipe is already committed."""
        return max(0.0, self._free_at - self.engine.now)
