"""A minimal deterministic discrete-event engine.

Callback-based (no coroutine machinery): events are ``(time, seq, fn)``
triples in a binary heap.  Ties in time fire in schedule order, which makes
every simulation a pure function of its inputs -- a property the test-suite
and the paper-style topology averaging both rely on.

Times are integers (cycles) by convention, though the engine itself accepts
floats (the I/O-bus DMA model produces fractional completion times).

The clock only moves forward: scheduling in the past (``at``/``after``) and
running "until" a time before ``now`` both raise ``ValueError``, and the
``max_events`` safety valve stops after firing exactly that many events.
"""

from __future__ import annotations

import heapq
from typing import Callable


class Engine:
    """Event queue with a current virtual time."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._events_fired = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to fire at absolute virtual time ``time``.

        Scheduling in the past raises ``ValueError`` -- it always indicates a
        modelling bug and silently clamping would corrupt causality.
        """
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn))

    def after(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to fire ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.at(self.now + delay, fn)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the event queue.

        Args:
            until: stop once the next event would fire after this time (the
                clock is left at ``until``).  Must not lie before ``now``:
                like :meth:`at`, running "until" the past raises
                ``ValueError`` rather than silently rewinding the clock.
            max_events: safety valve against runaway simulations; fires at
                most ``max_events`` events and raises ``RuntimeError`` if
                more remain (a deadlock in the modelled system would
                otherwise spin silently... actually a true deadlock drains
                the queue -- this guards infinite event loops such as
                zero-delay retry cycles).
        """
        if until is not None and until < self.now:
            raise ValueError(f"cannot run until {until} < now {self.now}")
        fired = 0
        while self._heap:
            time, _seq, fn = self._heap[0]
            if until is not None and time > until:
                self.now = until
                return
            if max_events is not None and fired >= max_events:
                raise RuntimeError(f"exceeded max_events={max_events}")
            heapq.heappop(self._heap)
            self.now = time
            fn()
            fired += 1
            self._events_fired += 1
        if until is not None:
            self.now = until

    def run_window(self, end: float) -> int:
        """Fire every event strictly before ``end``; leave the clock at ``end``.

        The window-exclusive counterpart of :meth:`run`: events scheduled at
        exactly ``end`` stay queued, so a caller synchronizing several engines
        (the sharded simulation's conservative time windows) can exchange
        boundary messages and process barrier-time actions *before* any
        barrier-time event fires.  Returns the number of events fired.

        Like :meth:`run`, a window ending in the past raises ``ValueError``.
        """
        if end < self.now:
            raise ValueError(f"cannot run window to {end} < now {self.now}")
        fired = 0
        while self._heap and self._heap[0][0] < end:
            time, _seq, fn = heapq.heappop(self._heap)
            self.now = time
            fn()
            fired += 1
            self._events_fired += 1
        self.now = end
        return fired

    def step(self, until: float | None = None) -> bool:
        """Fire exactly one event; returns False when the queue is empty.

        ``step`` honours the same contract as :meth:`run`: passing an
        ``until`` before ``now`` raises ``ValueError`` (the clock never
        rewinds), and when the next event lies beyond ``until`` nothing
        fires -- the clock advances to ``until`` and ``False`` is returned,
        exactly as a bounded :meth:`run` would leave it.  Window-stepped
        shard workers rely on this to neither rewind nor overshoot their
        synchronization barrier.
        """
        if until is not None and until < self.now:
            raise ValueError(f"cannot step until {until} < now {self.now}")
        if not self._heap:
            if until is not None:
                self.now = until
            return False
        time, _seq, fn = self._heap[0]
        if until is not None and time > until:
            self.now = until
            return False
        heapq.heappop(self._heap)
        self.now = time
        fn()
        self._events_fired += 1
        return True

    def next_event_time(self) -> float | None:
        """Time of the earliest scheduled event (``None`` when idle)."""
        return self._heap[0][0] if self._heap else None

    @property
    def pending(self) -> int:
        """Number of scheduled, not-yet-fired events."""
        return len(self._heap)

    @property
    def events_fired(self) -> int:
        """Total events executed since construction (for perf accounting)."""
        return self._events_fired
