"""Deterministic runtime fault schedules.

A schedule is data, not behaviour: an ordered tuple of
``FaultEvent(time, link_id)`` records.  Arming it on a network (and all the
messy consequences -- aborts, nacks, reconfiguration) is
:class:`~repro.chaos.injector.FaultInjector`'s job, which keeps schedules
trivially serializable for the fuzz corpus.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.topology.faults import schedule_faults
from repro.topology.graph import NetworkTopology


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One runtime link failure: ``link_id`` dies at simulated ``time``."""

    time: float
    link_id: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("fault time must be non-negative")
        if self.link_id < 0:
            raise ValueError("link_id must be non-negative")


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-ordered sequence of runtime link faults."""

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        times = [ev.time for ev in self.events]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("fault events must be ordered by time")

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @classmethod
    def from_pairs(cls, pairs: "list[tuple[float, int]] | tuple") -> "FaultSchedule":
        """Build from ``(time, link_id)`` pairs (sorted here for you)."""
        events = sorted(FaultEvent(t, lk) for t, lk in pairs)
        return cls(events=tuple(events))

    @classmethod
    def random(
        cls,
        topo: NetworkTopology,
        n_failures: int,
        rng: random.Random | None = None,
        window: tuple[float, float] = (0.0, 1000.0),
    ) -> "FaultSchedule":
        """Seeded random schedule whose links fail sequentially-removably
        (see :func:`repro.topology.faults.schedule_faults`)."""
        return cls.from_pairs(schedule_faults(topo, n_failures, rng, window))

    def to_pairs(self) -> list[tuple[float, int]]:
        """Plain ``(time, link_id)`` pairs (fuzz-corpus serialization)."""
        return [(ev.time, ev.link_id) for ev in self.events]
