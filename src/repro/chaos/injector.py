"""Arming fault schedules on a live network.

At each :class:`~repro.chaos.schedule.FaultEvent`'s fire time the injector:

1. revokes the link's two directional forward channels (no new traffic);
2. aborts every in-flight worm holding or awaiting those channels, in
   launch order -- each abort releases the worm's resources and propagates
   a nack to its source host;
3. performs Autonet-style reconfiguration
   (:meth:`~repro.sim.network.SimNetwork.reconfigure`): new BFS/up*/down*
   orientation on the degraded topology, new reachability strings, routing
   epoch bump (which invalidates cached multicast plans);
4. notifies ``net.fault_listeners`` after ``reconfig_latency`` cycles --
   the hook the retry layer (:class:`~repro.chaos.delivery.ReliableMulticast`)
   replans from.

A fault whose removal would disconnect the switch graph (or whose link is
already gone) is *skipped* with a trace record rather than raised: fuzzed
schedules may race each other, and a disconnected network cannot be
reconfigured around.

Every step is a deterministic function of (engine state, schedule), so the
same seed + same schedule replays to byte-identical traces.
"""

from __future__ import annotations

from repro.chaos.schedule import FaultEvent, FaultSchedule
from repro.sim.network import SimNetwork
from repro.topology import faults


class FaultInjector:
    """Arms a :class:`FaultSchedule` on a :class:`SimNetwork`.

    Args:
        net: the live network (faults act on its fabric and routing).
        schedule: the time-ordered fault events to arm.
        reconfig_latency: cycles between the fault firing and the
            reconfigured routing being announced to ``fault_listeners``
            (the Autonet reconfiguration protocol's running time); routing
            tables themselves are swapped at fire time, cost-free.
    """

    def __init__(
        self,
        net: SimNetwork,
        schedule: FaultSchedule,
        reconfig_latency: float = 0.0,
    ) -> None:
        if reconfig_latency < 0:
            raise ValueError("reconfig_latency must be non-negative")
        self.net = net
        self.schedule = schedule
        self.reconfig_latency = reconfig_latency
        self._armed = False

    def arm(self) -> None:
        """Schedule every fault event on the network's engine.

        Call before (or during) the run, once.  Arming early gives fault
        events low sequence numbers, so a fault at time T fires before
        same-time worm events scheduled later -- part of the determinism
        contract.
        """
        if self._armed:
            raise RuntimeError("fault schedule already armed")
        self._armed = True
        for ev in self.schedule:
            self.net.engine.at(ev.time, lambda ev=ev: self._fire(ev))

    # ------------------------------------------------------------------
    # Fire-time mechanics
    # ------------------------------------------------------------------
    def _trace(self, event: str, detail: str) -> None:
        if self.net.trace is not None:
            self.net.trace.emit(self.net.engine.now, event, "chaos", detail)

    def _fire(self, ev: FaultEvent) -> None:
        net = self.net
        try:
            degraded = faults.remove_link(net.topo, ev.link_id)
        except ValueError as exc:
            # Already removed by an earlier fault, or removal would
            # disconnect -- skip rather than kill the run.
            net.chaos.faults_skipped += 1
            self._trace("fault-skip", f"link {ev.link_id}: {exc}")
            return

        net.chaos.faults_fired += 1
        self._trace("fault", f"link {ev.link_id} failed")

        revoked_uids = set()
        for (link_id, _frm), ch in net.fabric.forward.items():
            if link_id == ev.link_id:
                ch.revoke()
                revoked_uids.add(ch.uid)

        # Abort victims in launch order (the registry is insertion-ordered).
        for worm in net.live_worms():
            if worm.touches(revoked_uids):
                worm.abort(f"link {ev.link_id} failed")

        net.reconfigure(degraded)
        net.chaos.reconfig_latency_total += self.reconfig_latency
        self._trace(
            "reconfig",
            f"epoch {net.routing_epoch}, "
            f"{len(degraded.links)} links remain",
        )
        self.net.engine.at(
            net.engine.now + self.reconfig_latency,
            lambda: self._notify(ev),
        )

    def _notify(self, ev: FaultEvent) -> None:
        for listener in list(self.net.fault_listeners):
            listener(ev)
