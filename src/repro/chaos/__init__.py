"""Runtime fault injection, reconfiguration, and retriable delivery.

The paper motivates irregular NOW topologies as "resistant to faults" and
amenable to Autonet-style reconfiguration; this package makes the claim
testable.  A seeded :class:`FaultSchedule` of :class:`FaultEvent`\\ s is
armed on a live :class:`~repro.sim.network.SimNetwork` via
:class:`FaultInjector`: at fire time the link's channels are revoked,
in-flight worms holding or requesting them abort (nack to the source host),
and the network reconfigures -- new BFS/up*/down* orientation, new
reachability strings, all cached multicast plans invalidated.  On top,
:class:`ReliableMulticast` retries nacked sends with backoff on the
reconfigured topology, resending only to unacked destinations, with an
exactly-once guarantee.

Determinism contract: same seed + same schedule => byte-identical traces
(pinned by the golden test in ``tests/test_chaos.py``).  See
``docs/chaos.md`` for the fault model and retry semantics.
"""

from repro.chaos.delivery import ReliableMulticast, ReliableResult
from repro.chaos.injector import FaultInjector
from repro.chaos.schedule import FaultEvent, FaultSchedule

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "FaultInjector",
    "ReliableMulticast",
    "ReliableResult",
]
