"""Retriable multicast delivery with an exactly-once guarantee.

:class:`ReliableMulticast` wraps any
:class:`~repro.multicast.base.MulticastScheme` with a timeout/retry/backoff
layer driven by fault notifications:

* **Acks.** Each attempt's per-destination host deliveries feed an ack set
  through the result's ``dest_hook``.  The first ack per destination wins;
  stragglers from superseded attempts (a copy already in a receive pipeline
  when its worm aborted) are counted and traced as duplicates, never
  re-delivered to the caller -- the exactly-once guarantee.
* **Retries.** A fault notification (fired by
  :class:`~repro.chaos.injector.FaultInjector` after reconfiguration)
  schedules a retry for every incomplete send after an exponential backoff.
  The retry *replans* on the reconfigured topology -- the scheme recomputes
  its tree/route/phases on the new routing epoch -- and resends only to
  destinations not yet acked.  Sends give up (counted, traced) after
  ``max_attempts``.
* **Determinism.** On a fault-free run this layer adds zero engine events
  and zero trace records, so wrapped runs are byte-identical to bare ones;
  with faults, every retry decision is a deterministic function of the
  schedule, preserving seed-replay byte-identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.multicast.base import MulticastScheme
from repro.sim.network import SimNetwork


@dataclass
class ReliableResult:
    """Outcome of one reliable multicast (possibly spanning retries).

    ``acked[d]`` is the time destination ``d``'s host *first* received the
    complete message; later duplicates are dropped.
    """

    source: int
    dests: tuple[int, ...]
    start_time: float
    label: str
    acked: dict[int, float] = field(default_factory=dict)
    attempts: int = 1
    complete_time: float | None = None
    gave_up: bool = False
    retry_pending: bool = False

    @property
    def complete(self) -> bool:
        """Every destination acked exactly once."""
        return self.complete_time is not None

    @property
    def latency(self) -> float:
        """Last first-ack minus send start (raises while incomplete)."""
        if self.complete_time is None:
            raise RuntimeError("reliable multicast not complete")
        return self.complete_time - self.start_time

    def unacked(self) -> tuple[int, ...]:
        """Destinations still owed the message, in original order."""
        return tuple(d for d in self.dests if d not in self.acked)


class ReliableMulticast:
    """Timeout/retry/backoff delivery on top of a multicast scheme.

    Args:
        net: the network; the layer registers itself on
            ``net.fault_listeners`` at construction.
        scheme: the underlying scheme; retries replan through its normal
            ``execute`` path, so the plan cache's routing-epoch key gives
            post-reconfiguration plans automatically.
        backoff: cycles from a fault notification to the first retry.
        backoff_factor: multiplier per subsequent attempt (exponential).
        max_attempts: total attempts (first send included) before a send
            gives up.
    """

    def __init__(
        self,
        net: SimNetwork,
        scheme: MulticastScheme,
        backoff: float = 200.0,
        backoff_factor: float = 2.0,
        max_attempts: int = 5,
    ) -> None:
        if backoff < 0:
            raise ValueError("backoff must be non-negative")
        if backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.net = net
        self.scheme = scheme
        self.backoff = backoff
        self.backoff_factor = backoff_factor
        self.max_attempts = max_attempts
        self._ops: list[tuple[ReliableResult, Callable | None]] = []
        net.fault_listeners.append(self._on_fault)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self,
        source: int,
        dests: list[int],
        on_complete: Callable[[ReliableResult], None] | None = None,
    ) -> ReliableResult:
        """Begin one reliable multicast at the engine's current time."""
        label = f"rel:{self.scheme.name}:{source}#{len(self._ops)}"
        op = ReliableResult(
            source=source,
            dests=tuple(dict.fromkeys(dests)),
            start_time=self.net.engine.now,
            label=label,
        )
        self._ops.append((op, on_complete))
        self._attempt(op, op.dests, on_complete)
        return op

    def _attempt(
        self,
        op: ReliableResult,
        targets: tuple[int, ...],
        on_complete: Callable | None,
    ) -> None:
        result = self.scheme.execute(self.net, op.source, list(targets))
        result.dest_hook = lambda dest, time: self._ack(
            op, dest, time, on_complete
        )

    def _ack(
        self,
        op: ReliableResult,
        dest: int,
        time: float,
        on_complete: Callable | None,
    ) -> None:
        if dest in op.acked:
            # A straggler from a superseded attempt: dedup (exactly-once).
            self.net.chaos.duplicate_acks += 1
            self._trace(op, "dup-ack", f"node {dest}")
            return
        op.acked[dest] = time
        if len(op.acked) == len(op.dests) and op.complete_time is None:
            op.complete_time = time
            if on_complete is not None:
                on_complete(op)

    # ------------------------------------------------------------------
    # Fault-driven retry
    # ------------------------------------------------------------------
    def _trace(self, op: ReliableResult, event: str, detail: str) -> None:
        if self.net.trace is not None:
            self.net.trace.emit(self.net.engine.now, event, op.label, detail)

    def _on_fault(self, _event: object) -> None:
        # Conservative policy: any incomplete send may have lost worms (or
        # may lose its next ones to the degraded fabric), so each schedules
        # one retry.  Completed ops and ops already awaiting a retry don't.
        for op, on_complete in self._ops:
            if op.complete or op.gave_up or op.retry_pending:
                continue
            delay = self.backoff * (
                self.backoff_factor ** (op.attempts - 1)
            )
            op.retry_pending = True
            self._trace(
                op, "retry",
                f"attempt {op.attempts + 1} in {delay:.1f} cycles",
            )
            self.net.engine.at(
                self.net.engine.now + delay,
                lambda op=op, cb=on_complete: self._retry(op, cb),
            )

    def _retry(self, op: ReliableResult, on_complete: Callable | None) -> None:
        op.retry_pending = False
        if op.complete or op.gave_up:
            return  # the earlier attempt drained after all
        if op.attempts >= self.max_attempts:
            op.gave_up = True
            self.net.chaos.gave_up += 1
            self._trace(
                op, "giveup",
                f"after {op.attempts} attempts, "
                f"{len(op.unacked())} destination(s) unacked",
            )
            return
        op.attempts += 1
        self.net.chaos.retries += 1
        pending = op.unacked()
        self._trace(
            op, "replan",
            f"epoch {self.net.routing_epoch}, "
            f"resend to {len(pending)} destination(s)",
        )
        self._attempt(op, pending, on_complete)
