"""Collective workload sweep: tail latency under open-loop deadline traffic.

Extension experiment (registry-listed, not a paper figure): the paper's
load figures drive independent fixed-degree multicasts; this sweep drives
whole *collectives* (broadcast, allreduce, barrier -- the operations the
paper's introduction motivates multicast with) as an open-loop arrival
stream with per-operation deadlines, and reports the tail (p50/p99/p999),
the deadline-miss fraction, and the saturation point per
(scheme x collective x offered rate) cell.

Axes beyond the main grid, each swept over the same rates:

* ``mlstep`` -- the bursty ML-training arrival process instead of Poisson
  (same mean rate, bunched into synchronized steps);
* ``vcs=2`` -- two virtual channels per physical channel (does blocking
  relief move the collective tail the way it moves the multicast mean?);
* ``faulted`` -- runtime link failures with retried reliable delivery
  (broadcast-only; the other collectives' control planes have no retry
  path).

Every cell's seed key excludes the scheme (the pairing rule), so all
schemes of a grid point are offered the byte-identical arrival schedule.
The y-value is p99 completion latency; saturated points report None, like
the paper-figure load sweeps.
"""

from __future__ import annotations

from repro.experiments.base import ENHANCED_SCHEMES, ExperimentResult, Series
from repro.experiments.config import Profile
from repro.experiments.runner import Cell, derive_seed, execute_cells
from repro.params import SimParams

EXP_ID = "collective-load"

COLLECTIVES = ("broadcast", "allreduce", "barrier")

QUICK_RATES = (0.0001, 0.0003, 0.0006, 0.0012)
FULL_RATES = (0.00005, 0.0001, 0.0002, 0.0004, 0.0008, 0.0012, 0.0016)
"""Offered collective-op rates (ops/cycle, whole machine).  The quick span
covers comfortably-unsaturated through clearly-saturated for every
collective at the default 32-node system."""

DEADLINE_FACTOR = 4.0
FAULT_COUNT = 2
"""Link failures injected per faulted cell (inside the admission window)."""


def _cells(
    profile: Profile,
    base: SimParams,
    rates: tuple[float, ...],
    collective: str,
    process: str,
    vcs: int,
    faults: int,
) -> list[Cell]:
    params = base if vcs == 1 else base.replace(vc_count=vcs)
    knobs = (
        ("duration", profile.load_duration),
        ("warmup", profile.load_warmup),
        ("process", process),
        ("deadline_factor", DEADLINE_FACTOR),
        ("faults", faults),
    )
    return [
        Cell(
            kind="workload",
            exp_id=EXP_ID,
            params=params,
            scheme=scheme,
            coords=(("collective", collective), ("rate", rate)),
            knobs=knobs,
            # Scheme excluded from the seed key: paired offered traffic.
            seed=derive_seed(
                profile.seed, EXP_ID, collective, rate, process, vcs, faults
            ),
        )
        for scheme in ENHANCED_SCHEMES
        for rate in rates
    ]


def _saturation_point(rates: tuple[float, ...], block: list[dict]) -> float | None:
    """Smallest offered rate that saturated (None = never saturated)."""
    for rate, v in zip(rates, block):
        if v["saturated"]:
            return rate
    return None


def _series(
    label_suffix: str,
    rates: tuple[float, ...],
    values: list[dict],
    extra_meta: dict,
) -> list[Series]:
    """One series per scheme out of a scheme-major block of cell values."""
    series = []
    for si, scheme in enumerate(ENHANCED_SCHEMES):
        block = values[si * len(rates):(si + 1) * len(rates)]
        series.append(
            Series(
                label=f"{scheme} {label_suffix}",
                x=[float(r) for r in rates],
                y=[
                    None if v["saturated"] else v["latency"]["p99"]
                    for v in block
                ],
                meta={
                    "scheme": scheme,
                    "saturation_point": _saturation_point(rates, block),
                    **extra_meta,
                    "points": [
                        {
                            "rate": rate,
                            "admitted": v["admitted"],
                            "measured": v["measured"],
                            "completed": v["completed"],
                            "miss_fraction": v["miss_fraction"],
                            "throughput": v["throughput"],
                            "saturated": v["saturated"],
                            "latency": v["latency"],
                            "baselines": v["baselines"],
                            "faults_fired": v["faults_fired"],
                            "gave_up": v["gave_up"],
                            "digest": v["digest"],
                        }
                        for rate, v in zip(rates, block)
                    ],
                },
            )
        )
    return series


def run(profile: Profile, base: SimParams | None = None) -> ExperimentResult:
    base = base or SimParams()
    rates = FULL_RATES if profile.name == "full" else QUICK_RATES

    blocks: list[tuple[str, dict, list[Cell]]] = []
    for collective in COLLECTIVES:
        blocks.append(
            (
                collective,
                {"collective": collective, "process": "poisson"},
                _cells(profile, base, rates, collective, "poisson", 1, 0),
            )
        )
    blocks.append(
        (
            "broadcast mlstep",
            {"collective": "broadcast", "process": "mlstep"},
            _cells(profile, base, rates, "broadcast", "mlstep", 1, 0),
        )
    )
    blocks.append(
        (
            "broadcast vcs=2",
            {"collective": "broadcast", "process": "poisson", "vcs": 2},
            _cells(profile, base, rates, "broadcast", "poisson", 2, 0),
        )
    )
    blocks.append(
        (
            "broadcast faulted",
            {
                "collective": "broadcast",
                "process": "poisson",
                "faults": FAULT_COUNT,
            },
            _cells(
                profile, base, rates, "broadcast", "poisson", 1, FAULT_COUNT
            ),
        )
    )

    all_cells = [c for _, _, cells in blocks for c in cells]
    values = execute_cells(all_cells)

    series: list[Series] = []
    i = 0
    for suffix, extra_meta, cells in blocks:
        block_values = values[i:i + len(cells)]
        i += len(cells)
        series.extend(_series(suffix, rates, block_values, extra_meta))

    return ExperimentResult(
        exp_id=EXP_ID,
        title=(
            "Collective workloads under open-loop deadline traffic: "
            "p99 completion latency vs offered rate"
        ),
        x_label="offered collective rate (ops/cycle)",
        y_label="p99 completion latency (cycles)",
        series=series,
    )
