"""E2 / Figure 7: effect of switch count on single-multicast latency.

Node count stays fixed (32) while the system uses 8, 16, or 32 8-port
switches.  More switches = fewer destinations per switch, so the path-based
scheme needs more worms and phases and degrades; the NI- and tree-based
schemes stay nearly flat (cut-through routing is almost distance
independent).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, single_multicast_sweep
from repro.experiments.config import Profile
from repro.params import SimParams

SWITCH_COUNTS = (8, 16, 32)


def run(profile: Profile, base: SimParams | None = None) -> ExperimentResult:
    base = base or SimParams()
    variants = {
        f"{s}sw": base.replace(num_switches=s) for s in SWITCH_COUNTS
    }
    return single_multicast_sweep(
        "fig07",
        "Effect of number of switches on single multicast latency",
        variants,
        profile,
    )
