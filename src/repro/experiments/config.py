"""Execution profiles for the experiment harness.

The paper simulates >= 1M cycles per load point over 10 random topologies; a
pure-Python reproduction scales those constants down by default.  ``QUICK``
is for tests/benchmarks (seconds per figure); ``FULL`` approaches the paper's
methodology (minutes per figure) and is what EXPERIMENTS.md numbers use.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Profile:
    """Scale knobs shared by all experiments."""

    name: str
    n_topologies: int
    trials_per_topology: int
    group_sizes: tuple[int, ...]
    loads: tuple[float, ...]
    load_duration: int
    load_warmup: int
    load_degrees: tuple[int, ...] = (4, 16)
    seed: int = 2024


QUICK = Profile(
    name="quick",
    n_topologies=2,
    trials_per_topology=2,
    group_sizes=(4, 8, 16, 28),
    loads=(0.01, 0.04, 0.08, 0.12),
    load_duration=60_000,
    load_warmup=6_000,
)

FULL = Profile(
    name="full",
    n_topologies=10,
    trials_per_topology=3,
    group_sizes=(2, 4, 8, 12, 16, 20, 24, 28, 31),
    loads=(0.01, 0.02, 0.04, 0.06, 0.09, 0.12, 0.16, 0.20),
    load_duration=400_000,
    load_warmup=40_000,
)

PROFILES = {"quick": QUICK, "full": FULL}
