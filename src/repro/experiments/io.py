"""Experiment-result export: JSON and CSV.

The text tables in :meth:`ExperimentResult.to_table` are for humans; these
exporters feed plotting scripts and downstream analysis without re-running
simulations.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib

from repro.experiments.base import ExperimentResult, Series


def result_to_dict(result: ExperimentResult) -> dict:
    """Plain-data (JSON-ready) representation of an experiment result."""
    return {
        "exp_id": result.exp_id,
        "title": result.title,
        "x_label": result.x_label,
        "y_label": result.y_label,
        "series": [
            {"label": s.label, "x": s.x, "y": s.y, "meta": s.meta}
            for s in result.series
        ],
    }


def result_from_dict(data: dict) -> ExperimentResult:
    """Inverse of :func:`result_to_dict`."""
    return ExperimentResult(
        exp_id=data["exp_id"],
        title=data["title"],
        x_label=data["x_label"],
        y_label=data["y_label"],
        series=[
            Series(
                label=s["label"],
                x=list(s["x"]),
                y=list(s["y"]),
                meta=dict(s.get("meta", {})),
            )
            for s in data["series"]
        ],
    )


def save_result_json(result: ExperimentResult, path: str | pathlib.Path) -> None:
    """Write one experiment's data to a JSON file."""
    pathlib.Path(path).write_text(
        json.dumps(result_to_dict(result), indent=2) + "\n"
    )


def load_result_json(path: str | pathlib.Path) -> ExperimentResult:
    """Read an experiment result written by :func:`save_result_json`."""
    return result_from_dict(json.loads(pathlib.Path(path).read_text()))


def result_to_csv(result: ExperimentResult) -> str:
    """Long-format CSV: one row per (series, x) point.

    Columns: exp_id, series, x, y (empty cell = saturated/missing).
    """
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(["exp_id", "series", "x", "y"])
    for s in result.series:
        for x, y in zip(s.x, s.y):
            writer.writerow([result.exp_id, s.label, x, "" if y is None else y])
    return buf.getvalue()


def save_result_csv(result: ExperimentResult, path: str | pathlib.Path) -> None:
    """Write one experiment's data to a long-format CSV file."""
    pathlib.Path(path).write_text(result_to_csv(result))
