"""Shard-scaling sweep: fig07's switch axis extended to cluster scale.

Figure 7 stops at 32 switches -- the scale a single-process simulation
sweeps comfortably.  This experiment extends the axis to 512 (quick
profile) / 1024 (full profile) switches by running each point through the
window-synchronized sharded runner (:mod:`repro.shard`), one curve per
shard count up to the execution context's ``--shards`` budget.

Latency curves across shard counts overlay exactly whenever the scenario
is free of same-cycle arbitration ties; each point's ``meta`` carries the
run's canonical trace digest plus the window-protocol costs (rounds,
boundary messages, cut size), so the scaling curve doubles as a
determinism witness and a protocol-overhead profile.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, Series
from repro.experiments.config import Profile
from repro.experiments.runner import (
    Cell,
    current_context,
    derive_seed,
    execute_cells,
)
from repro.params import SimParams

EXP_ID = "shard-scaling"

QUICK_SWITCHES = (64, 128, 256, 512)
FULL_SWITCHES = (64, 128, 256, 512, 1024)

NUM_JOBS = 32
FANOUT = 6
SPACING = 8
LINK_DELAY = 16
SWITCH_DELAY = 16
"""Wide, uniform crossing delays: lookahead ``W = 32`` cycles, the regime
that amortizes each conservative barrier over substantial window work."""


def _shard_counts(budget: int) -> tuple[int, ...]:
    counts = [1]
    while counts[-1] * 2 <= budget:
        counts.append(counts[-1] * 2)
    return tuple(counts)


def run(profile: Profile, base: SimParams | None = None) -> ExperimentResult:
    base = base or SimParams()
    switches = FULL_SWITCHES if profile.name == "full" else QUICK_SWITCHES
    shard_counts = _shard_counts(current_context().shards)
    params = base.replace(
        link_delay=LINK_DELAY, switch_delay=SWITCH_DELAY
    )
    knobs = (
        ("num_jobs", NUM_JOBS),
        ("fanout", FANOUT),
        ("spacing", SPACING),
    )
    cells = [
        Cell(
            kind="shard",
            exp_id=EXP_ID,
            params=params.replace(
                num_switches=s, num_nodes=s * 2
            ),
            scheme="static-multidest",
            coords=(("switches", s), ("shards", k)),
            knobs=knobs,
            # The scheme-independent seed pairing rule: every shard count
            # of one switch size shares the seed, so the curves are the
            # same workload executed with different partition counts.
            seed=derive_seed(profile.seed, EXP_ID, s),
        )
        for k in shard_counts
        for s in switches
    ]
    values = execute_cells(cells)
    series = []
    for i, k in enumerate(shard_counts):
        block = values[i * len(switches):(i + 1) * len(switches)]
        series.append(
            Series(
                label=f"{k} shard{'s' if k > 1 else ''}",
                x=[float(s) for s in switches],
                y=[v["mean_latency"] for v in block],
                meta={
                    "shards": k,
                    "points": [
                        {
                            "switches": s,
                            "rounds": v["rounds"],
                            "messages": v["messages"],
                            "boundary_links": v["boundary_links"],
                            "deliveries": v["deliveries"],
                            "canonical_digest": v["canonical_digest"],
                        }
                        for s, v in zip(switches, block)
                    ],
                },
            )
        )
    return ExperimentResult(
        exp_id=EXP_ID,
        title=(
            "Sharded-runner scaling: switch count vs multicast latency "
            "(fig07 axis extended to cluster scale)"
        ),
        x_label="switches",
        y_label="mean delivery latency (cycles)",
        series=series,
    )
