"""Experiment harness reproducing the paper's evaluation (system S15).

One module per figure of the paper's Section 4, plus the experiments the
paper mentions but omits for space (E7) and our own ablations (E8).  Each
experiment is a function returning an :class:`ExperimentResult`; the CLI and
the benchmark suite are thin wrappers around the registry.
"""

from repro.experiments.base import ExperimentResult, Series
from repro.experiments.config import FULL, QUICK, Profile
from repro.experiments.registry import (
    EXPERIMENTS,
    run_experiment,
    run_experiment_with_stats,
)
from repro.experiments.runner import (
    Cell,
    CellCache,
    ExecutionStats,
    derive_seed,
    execute_cells,
    execution_context,
)

__all__ = [
    "ExperimentResult",
    "Series",
    "Profile",
    "QUICK",
    "FULL",
    "EXPERIMENTS",
    "run_experiment",
    "run_experiment_with_stats",
    "Cell",
    "CellCache",
    "ExecutionStats",
    "derive_seed",
    "execute_cells",
    "execution_context",
]
