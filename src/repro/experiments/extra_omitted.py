"""E7: the experiments the paper ran but omitted for space (Section 4.2.3).

"We also performed a number of experiments to study the effect of startup
overhead at the host, system size, and packet length.  However, due to lack
of space, these results are not presented."  We regenerate all three.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, single_multicast_sweep
from repro.experiments.config import Profile
from repro.params import SimParams

HOST_OVERHEADS = (250, 1000, 4000)
SYSTEM_SIZES = ((16, 4), (32, 8), (64, 16))  # (nodes, switches)
PACKET_SIZES = (32, 128, 512)


BACKGROUND_LOADS = (0.01, 0.05, 0.1, 0.2)


def run_background_traffic(profile: Profile, base: SimParams | None = None) -> ExperimentResult:
    """Extension: multicast latency amid unicast background traffic.

    The paper's load study is multicast-only; this sweep answers how each
    scheme's 16-way multicast degrades when the network also carries
    point-to-point traffic.
    """
    import random as _random

    from repro.experiments.base import ENHANCED_SCHEMES, Series
    from repro.topology.irregular import generate_topology_family
    from repro.traffic.background import multicast_under_background

    base = base or SimParams()
    topo = generate_topology_family(base, 1)[0]
    rng = _random.Random(profile.seed)
    source = 0
    dests = rng.sample([n for n in range(base.num_nodes) if n != source], 16)
    series = []
    for scheme in ENHANCED_SCHEMES:
        ys: list[float | None] = []
        for load in BACKGROUND_LOADS:
            try:
                r = multicast_under_background(
                    topo, base, scheme, source, dests, load,
                    warmup=profile.load_warmup, seed=profile.seed,
                )
                ys.append(r.multicast_latency)
            except RuntimeError:
                ys.append(None)
        series.append(
            Series(
                label=f"bg/{scheme}",
                x=list(BACKGROUND_LOADS),
                y=ys,
                meta={"scheme": scheme},
            )
        )
    return ExperimentResult(
        exp_id="extra-background",
        title="16-way multicast latency under unicast background traffic",
        x_label="background unicast load (flits/cycle/node)",
        y_label="multicast latency (cycles)",
        series=series,
    )


def run_traffic_patterns(profile: Profile, base: SimParams | None = None) -> ExperimentResult:
    """Extension: does destination locality change the NI-vs-switch answer?

    Compares loaded latency (16-way, one mid load point per pattern) under
    uniform, clustered, hotspot, and single-switch destination draws.
    """
    from repro.experiments.base import ENHANCED_SCHEMES, Series
    from repro.topology.irregular import generate_topology_family
    from repro.traffic.load import run_load_experiment
    from repro.traffic.patterns import PATTERNS

    base = base or SimParams()
    topo = generate_topology_family(base, 1)[0]
    loads = list(profile.loads[:3])
    series = []
    for pattern in sorted(PATTERNS):
        for scheme in ENHANCED_SCHEMES:
            ys: list[float | None] = []
            for load in loads:
                point = run_load_experiment(
                    topo, base, scheme, degree=16, effective_load=load,
                    duration=profile.load_duration,
                    warmup=profile.load_warmup,
                    seed=profile.seed, pattern=pattern,
                )
                ys.append(None if point.saturated else point.mean_latency)
            series.append(
                Series(
                    label=f"{pattern}/{scheme}",
                    x=loads,
                    y=ys,
                    meta={"pattern": pattern, "scheme": scheme},
                )
            )
    return ExperimentResult(
        exp_id="extra-patterns",
        title="Destination locality patterns under 16-way multicast load",
        x_label="effective applied load (flits/cycle/node)",
        y_label="mean multicast latency (cycles)",
        series=series,
    )


FAULT_COUNTS = (0, 1, 2, 4)


def run_fault_tolerance(profile: Profile, base: SimParams | None = None) -> ExperimentResult:
    """Extension: multicast latency after link failures + reconfiguration.

    Fails k random links (network kept connected), rebuilds the routing per
    Autonet reconfiguration, and measures 16-way isolated multicast latency
    -- quantifying the paper's "resistant to faults" motivation.
    """
    import random as _random

    from repro.experiments.base import ENHANCED_SCHEMES, Series
    from repro.multicast import make_scheme
    from repro.sim.network import SimNetwork
    from repro.topology.faults import degrade
    from repro.topology.irregular import generate_topology_family

    base = base or SimParams()
    topo0 = generate_topology_family(base, 1)[0]
    rng = _random.Random(profile.seed)
    dests = rng.sample(range(1, base.num_nodes), 16)
    series = []
    for scheme in ENHANCED_SCHEMES:
        ys: list[float | None] = []
        for k in FAULT_COUNTS:
            trial_rng = _random.Random(profile.seed + k)
            try:
                topo, _failed = degrade(topo0, k, trial_rng)
            except ValueError:
                ys.append(None)
                continue
            net = SimNetwork(topo, base)
            res = make_scheme(scheme).execute(net, 0, dests)
            net.run()
            ys.append(res.latency)
        series.append(
            Series(
                label=f"faults/{scheme}",
                x=[float(k) for k in FAULT_COUNTS],
                y=ys,
                meta={"scheme": scheme},
            )
        )
    return ExperimentResult(
        exp_id="extra-faults",
        title="16-way multicast latency after link failures (reconfigured)",
        x_label="failed links",
        y_label="single multicast latency (cycles)",
        series=series,
    )


def run_regular_comparison(profile: Profile, base: SimParams | None = None) -> ExperimentResult:
    """Extension: how much does topological irregularity cost each scheme?

    Compares single-multicast latency on the default random irregular
    network against regular substrates of comparable size (16 switches, 2
    hosts each: 4x4 mesh, 4x4 torus, 4-cube).
    """
    import random as _random

    from repro.experiments.base import ENHANCED_SCHEMES, Series
    from repro.sim.network import SimNetwork
    from repro.topology.irregular import generate_irregular_topology
    from repro.topology.regular import hypercube, mesh_2d, torus_2d

    base = base or SimParams()
    p32 = base.replace(num_nodes=32, num_switches=16)
    topologies = {
        "irregular": generate_irregular_topology(p32, seed=base.topology_seed),
        "mesh4x4": mesh_2d(4, 4, hosts_per_switch=2),
        "torus4x4": torus_2d(4, 4, hosts_per_switch=2),
        "hcube4": hypercube(4, hosts_per_switch=2, ports_per_switch=8),
    }
    sizes = [s for s in profile.group_sizes if s < 32]
    series = []
    for tlabel, topo in topologies.items():
        params = p32.replace(ports_per_switch=topo.ports_per_switch)
        for scheme in ENHANCED_SCHEMES:
            from repro.multicast import make_scheme

            ys = []
            for size in sizes:
                rng = _random.Random(profile.seed)
                lats = []
                for _ in range(profile.trials_per_topology * 2):
                    src = rng.randrange(32)
                    dests = rng.sample(
                        [n for n in range(32) if n != src], size
                    )
                    net = SimNetwork(topo, params)
                    res = make_scheme(scheme).execute(net, src, dests)
                    net.run()
                    lats.append(res.latency)
                ys.append(sum(lats) / len(lats))
            series.append(
                Series(
                    label=f"{tlabel}/{scheme}",
                    x=[float(s) for s in sizes],
                    y=ys,
                    meta={"topology": tlabel, "scheme": scheme},
                )
            )
    return ExperimentResult(
        exp_id="extra-regular",
        title="Irregular vs regular topologies, single multicast latency",
        x_label="multicast set size",
        y_label="single multicast latency (cycles)",
        series=series,
    )


def run_host_overhead(profile: Profile, base: SimParams | None = None) -> ExperimentResult:
    """Effect of the host software overhead magnitude (R held at default)."""
    base = base or SimParams()
    variants = {
        f"o_h={o}": base.replace(o_host=o) for o in HOST_OVERHEADS
    }
    return single_multicast_sweep(
        "extra-hostoverhead",
        "Effect of host software overhead on single multicast latency",
        variants,
        profile,
    )


def run_system_size(profile: Profile, base: SimParams | None = None) -> ExperimentResult:
    """Effect of system size, scaling switches with nodes."""
    base = base or SimParams()
    variants = {
        f"{n}n/{s}sw": base.replace(num_nodes=n, num_switches=s)
        for n, s in SYSTEM_SIZES
    }
    return single_multicast_sweep(
        "extra-systemsize",
        "Effect of system size on single multicast latency",
        variants,
        profile,
    )


def run_packet_length(profile: Profile, base: SimParams | None = None) -> ExperimentResult:
    """Effect of packet size at a fixed 1024-flit message length."""
    base = base or SimParams()
    variants = {
        f"pkt={p}f": base.replace(packet_flits=p, message_packets=1024 // p)
        for p in PACKET_SIZES
    }
    return single_multicast_sweep(
        "extra-packetlen",
        "Effect of packet length (1024-flit messages) on multicast latency",
        variants,
        profile,
    )
