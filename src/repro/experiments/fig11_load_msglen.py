"""E6 / Figure 11: latency vs applied multicast load, varying message length.

128-flit vs 512-flit messages at 4-way and 16-way degrees.  The tree-based
scheme wins at every length; NI- and path-based become comparable as
messages lengthen, but under load the NI scheme's extra traffic (one unicast
copy per tree edge) costs it contention, especially at high degree.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, load_sweep
from repro.experiments.config import Profile
from repro.params import SimParams

MESSAGE_FLITS = (128, 512)


def run(profile: Profile, base: SimParams | None = None) -> ExperimentResult:
    base = base or SimParams()
    variants = {
        f"{flits}f": base.replace(message_packets=flits // base.packet_flits)
        for flits in MESSAGE_FLITS
    }
    return load_sweep(
        "fig11",
        "Latency under multicast load, varying message length",
        variants,
        profile,
    )
