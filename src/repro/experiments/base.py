"""Result containers and generic sweep engines for the experiments.

Both engines decompose their figure into a flat list of independent
:class:`~repro.experiments.runner.Cell` objects (one simulation call each,
with its own derived seed) and hand them to
:func:`repro.experiments.runner.execute_cells`, which consults the active
execution context for parallelism and caching.  Cell values come back in
canonical (submission) order, so the assembled :class:`ExperimentResult` is
byte-identical whether cells ran serially, on a process pool, or straight
out of the cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.config import Profile
from repro.experiments.runner import Cell, derive_seed, execute_cells
from repro.params import SimParams

SCHEME_ORDER = ("binomial", "ni", "path", "tree")
ENHANCED_SCHEMES = ("ni", "path", "tree")
"""The three schemes the paper's figures compare (binomial is the Section
3.1 baseline, included in our extended runs)."""


@dataclass
class Series:
    """One curve of a figure."""

    label: str
    x: list[float]
    y: list[float | None]
    meta: dict = field(default_factory=dict)

    def y_by_x(self) -> dict[float, float | None]:
        """``{x: y}`` lookup of this curve's points (built per call)."""
        return dict(zip(self.x, self.y))


_ABSENT = object()
"""Marks an x with no point at all (vs. None, which marks saturation)."""


@dataclass
class ExperimentResult:
    """All curves regenerating one figure (or one of our extras)."""

    exp_id: str
    title: str
    x_label: str
    y_label: str
    series: list[Series]

    def to_table(self) -> str:
        """Render the figure's data as an aligned text table.

        Series may have different x supports (e.g. a 16-node variant cannot
        host a 28-way multicast); missing cells render as '-'.
        """
        xs = sorted({x for s in self.series for x in s.x})
        # One {x: y} map per series up front: cell lookup is O(1) instead
        # of an O(n) list scan per cell (O(n^2) per column overall).
        lookups = [s.y_by_x() for s in self.series]
        # Latency figures read best as whole cycles, but fractional
        # metrics (e.g. replan fractions in [0, 1]) would all round to 0.
        finite = [y for s in self.series for y in s.y if y is not None]
        fmt = "{:.0f}" if not finite or max(abs(y) for y in finite) >= 10 \
            else "{:.3g}"
        header = [self.x_label] + [s.label for s in self.series]
        rows: list[list[str]] = []
        for x in xs:
            row = [f"{x:g}"]
            for lookup in lookups:
                v = lookup.get(x, _ABSENT)
                if v is _ABSENT:
                    row.append("-")
                else:
                    row.append("sat" if v is None else fmt.format(v))
            rows.append(row)
        widths = [
            max(len(header[c]), *(len(r[c]) for r in rows)) if rows else len(header[c])
            for c in range(len(header))
        ]
        lines = [
            f"== {self.exp_id}: {self.title} ==",
            "  ".join(h.rjust(w) for h, w in zip(header, widths)),
        ]
        for r in rows:
            lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
        lines.append(f"(y = {self.y_label})")
        return "\n".join(lines)

    def curve(self, label: str) -> Series:
        """Look a series up by exact label."""
        by_label = {s.label: s for s in self.series}
        try:
            return by_label[label]
        except KeyError:
            raise KeyError(f"no series {label!r} in {self.exp_id}") from None


def single_multicast_cells(
    exp_id: str,
    variants: dict[str, SimParams],
    profile: Profile,
    schemes: tuple[str, ...] = ENHANCED_SCHEMES,
    group_sizes: tuple[int, ...] | None = None,
) -> list[Cell]:
    """Flatten a single-multicast sweep into independent cells.

    The seed key is ``(variant, size)`` -- *not* the scheme -- so all
    schemes of one grid point share topology and draw sequences and their
    comparison stays paired, per the paper's methodology.
    """
    sizes = list(group_sizes or profile.group_sizes)
    cells: list[Cell] = []
    for vlabel, params in variants.items():
        sizes_v = [s for s in sizes if s < params.num_nodes]
        for scheme in schemes:
            for size in sizes_v:
                cells.append(
                    Cell(
                        kind="single",
                        exp_id=exp_id,
                        params=params,
                        scheme=scheme,
                        coords=(("variant", vlabel), ("size", size)),
                        knobs=(
                            ("n_topologies", profile.n_topologies),
                            ("trials_per_topology", profile.trials_per_topology),
                        ),
                        seed=derive_seed(profile.seed, exp_id, vlabel, size),
                    )
                )
    return cells


def single_multicast_sweep(
    exp_id: str,
    title: str,
    variants: dict[str, SimParams],
    profile: Profile,
    schemes: tuple[str, ...] = ENHANCED_SCHEMES,
    group_sizes: tuple[int, ...] | None = None,
) -> ExperimentResult:
    """Latency vs destination-set size, one curve per (variant, scheme).

    This is the engine behind Figures 6-8: vary one parameter across
    ``variants`` while sweeping the multicast set size on the x-axis.
    """
    cells = single_multicast_cells(
        exp_id, variants, profile, schemes=schemes, group_sizes=group_sizes
    )
    values = iter(execute_cells(cells))
    sizes = list(group_sizes or profile.group_sizes)
    series: list[Series] = []
    for vlabel, params in variants.items():
        sizes_v = [s for s in sizes if s < params.num_nodes]
        for scheme in schemes:
            ys: list[float | None] = [next(values)["mean"] for _ in sizes_v]
            series.append(
                Series(
                    label=f"{vlabel}/{scheme}",
                    x=[float(s) for s in sizes_v],
                    y=ys,
                    meta={"variant": vlabel, "scheme": scheme},
                )
            )
    return ExperimentResult(
        exp_id=exp_id,
        title=title,
        x_label="multicast set size",
        y_label="single multicast latency (cycles)",
        series=series,
    )


def load_cells(
    exp_id: str,
    variants: dict[str, SimParams],
    profile: Profile,
    schemes: tuple[str, ...] = ENHANCED_SCHEMES,
    degrees: tuple[int, ...] | None = None,
) -> list[Cell]:
    """Flatten a load sweep into independent cells (one load point each).

    Each cell regenerates its variant's topology from ``params`` inside the
    worker (deterministic and cheap next to the load simulation), so cells
    carry no unpicklable state.  Schemes share the seed of their
    ``(variant, degree, load)`` point for paired comparison.
    """
    cells: list[Cell] = []
    for vlabel, params in variants.items():
        for degree in degrees or profile.load_degrees:
            for scheme in schemes:
                for load in profile.loads:
                    cells.append(
                        Cell(
                            kind="load",
                            exp_id=exp_id,
                            params=params,
                            scheme=scheme,
                            coords=(
                                ("variant", vlabel),
                                ("degree", degree),
                                ("load", load),
                            ),
                            knobs=(
                                ("duration", profile.load_duration),
                                ("warmup", profile.load_warmup),
                            ),
                            seed=derive_seed(
                                profile.seed, exp_id, vlabel, degree, load
                            ),
                        )
                    )
    return cells


def load_sweep(
    exp_id: str,
    title: str,
    variants: dict[str, SimParams],
    profile: Profile,
    schemes: tuple[str, ...] = ENHANCED_SCHEMES,
    degrees: tuple[int, ...] | None = None,
) -> ExperimentResult:
    """Latency vs effective applied load -- the engine behind Figures 9-11.

    One curve per (variant, degree, scheme); saturated points report None.
    The paper averages load curves over fewer topologies than single-shot
    experiments (they are far more expensive); we use the first topology of
    the family per variant, which preserves curve shapes.
    """
    cells = load_cells(exp_id, variants, profile, schemes=schemes, degrees=degrees)
    values = iter(execute_cells(cells))
    series: list[Series] = []
    for vlabel, params in variants.items():
        for degree in degrees or profile.load_degrees:
            for scheme in schemes:
                ys: list[float | None] = []
                for _load in profile.loads:
                    point = next(values)
                    ys.append(
                        None if point["saturated"] else point["mean_latency"]
                    )
                series.append(
                    Series(
                        label=f"{vlabel}/{degree}-way/{scheme}",
                        x=list(profile.loads),
                        y=ys,
                        meta={
                            "variant": vlabel,
                            "degree": degree,
                            "scheme": scheme,
                        },
                    )
                )
    return ExperimentResult(
        exp_id=exp_id,
        title=title,
        x_label="effective applied load (flits/cycle/node)",
        y_label="mean multicast latency (cycles)",
        series=series,
    )
