"""Result containers and generic sweep engines for the experiments."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.config import Profile
from repro.params import SimParams
from repro.topology.irregular import generate_topology_family
from repro.traffic.load import run_load_experiment
from repro.traffic.single import average_single_multicast_latency

SCHEME_ORDER = ("binomial", "ni", "path", "tree")
ENHANCED_SCHEMES = ("ni", "path", "tree")
"""The three schemes the paper's figures compare (binomial is the Section
3.1 baseline, included in our extended runs)."""


@dataclass
class Series:
    """One curve of a figure."""

    label: str
    x: list[float]
    y: list[float | None]
    meta: dict = field(default_factory=dict)


@dataclass
class ExperimentResult:
    """All curves regenerating one figure (or one of our extras)."""

    exp_id: str
    title: str
    x_label: str
    y_label: str
    series: list[Series]

    def to_table(self) -> str:
        """Render the figure's data as an aligned text table.

        Series may have different x supports (e.g. a 16-node variant cannot
        host a 28-way multicast); missing cells render as '-'.
        """
        xs = sorted({x for s in self.series for x in s.x})
        header = [self.x_label] + [s.label for s in self.series]
        rows: list[list[str]] = []
        for x in xs:
            row = [f"{x:g}"]
            for s in self.series:
                if x in s.x:
                    v = s.y[s.x.index(x)]
                    row.append("sat" if v is None else f"{v:.0f}")
                else:
                    row.append("-")
            rows.append(row)
        widths = [
            max(len(header[c]), *(len(r[c]) for r in rows)) if rows else len(header[c])
            for c in range(len(header))
        ]
        lines = [
            f"== {self.exp_id}: {self.title} ==",
            "  ".join(h.rjust(w) for h, w in zip(header, widths)),
        ]
        for r in rows:
            lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
        lines.append(f"(y = {self.y_label})")
        return "\n".join(lines)

    def curve(self, label: str) -> Series:
        """Look a series up by exact label."""
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series {label!r} in {self.exp_id}")


def single_multicast_sweep(
    exp_id: str,
    title: str,
    variants: dict[str, SimParams],
    profile: Profile,
    schemes: tuple[str, ...] = ENHANCED_SCHEMES,
    group_sizes: tuple[int, ...] | None = None,
) -> ExperimentResult:
    """Latency vs destination-set size, one curve per (variant, scheme).

    This is the engine behind Figures 6-8: vary one parameter across
    ``variants`` while sweeping the multicast set size on the x-axis.
    """
    sizes = list(group_sizes or profile.group_sizes)
    series: list[Series] = []
    for vlabel, params in variants.items():
        sizes_v = [s for s in sizes if s < params.num_nodes]
        for scheme in schemes:
            ys: list[float | None] = []
            for size in sizes_v:
                summ = average_single_multicast_latency(
                    params,
                    scheme,
                    size,
                    n_topologies=profile.n_topologies,
                    trials_per_topology=profile.trials_per_topology,
                    seed=profile.seed,
                )
                ys.append(summ.mean)
            series.append(
                Series(
                    label=f"{vlabel}/{scheme}",
                    x=[float(s) for s in sizes_v],
                    y=ys,
                    meta={"variant": vlabel, "scheme": scheme},
                )
            )
    return ExperimentResult(
        exp_id=exp_id,
        title=title,
        x_label="multicast set size",
        y_label="single multicast latency (cycles)",
        series=series,
    )


def load_sweep(
    exp_id: str,
    title: str,
    variants: dict[str, SimParams],
    profile: Profile,
    schemes: tuple[str, ...] = ENHANCED_SCHEMES,
    degrees: tuple[int, ...] | None = None,
) -> ExperimentResult:
    """Latency vs effective applied load -- the engine behind Figures 9-11.

    One curve per (variant, degree, scheme); saturated points report None.
    The paper averages load curves over fewer topologies than single-shot
    experiments (they are far more expensive); we use the first topology of
    the family per variant, which preserves curve shapes.
    """
    series: list[Series] = []
    for vlabel, params in variants.items():
        topo = generate_topology_family(params, 1)[0]
        for degree in degrees or profile.load_degrees:
            for scheme in schemes:
                ys: list[float | None] = []
                for load in profile.loads:
                    point = run_load_experiment(
                        topo,
                        params,
                        scheme,
                        degree=degree,
                        effective_load=load,
                        duration=profile.load_duration,
                        warmup=profile.load_warmup,
                        seed=profile.seed,
                    )
                    ys.append(None if point.saturated else point.mean_latency)
                series.append(
                    Series(
                        label=f"{vlabel}/{degree}-way/{scheme}",
                        x=list(profile.loads),
                        y=ys,
                        meta={
                            "variant": vlabel,
                            "degree": degree,
                            "scheme": scheme,
                        },
                    )
                )
    return ExperimentResult(
        exp_id=exp_id,
        title=title,
        x_label="effective applied load (flits/cycle/node)",
        y_label="mean multicast latency (cycles)",
        series=series,
    )
