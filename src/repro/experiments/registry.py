"""Experiment registry: id -> runner, consumed by the CLI and benchmarks.

:func:`run_experiment` is the one entry point that applies the execution
policy: ``jobs`` fans the experiment's cells out over worker processes and
``cache_dir`` enables the two-tier on-disk cache --

* an **experiment-level** entry (the finished ``result_to_dict`` JSON,
  keyed by experiment id + full profile + schema version) that lets a warm
  re-run skip the experiment entirely, and
* the **cell-level** entries of :class:`repro.experiments.runner.CellCache`
  that make an interrupted run resumable at simulation-call granularity.

Results are byte-identical across jobs counts and cache states: cells are
independently seeded and merged canonically, and cached JSON round-trips
floats exactly.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from dataclasses import asdict
from typing import Callable

from repro.experiments import (
    ablation,
    collective_load,
    extra_omitted,
    fig06_ratio,
    fig07_switches,
    fig08_msglen,
    fig09_load_ratio,
    fig10_load_switches,
    fig11_load_msglen,
    group_churn,
    shard_scaling,
    vc_ablation,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.config import PROFILES, Profile
from repro.experiments.runner import (
    SCHEMA_VERSION,
    CellCache,
    ExecutionStats,
    execution_context,
)

EXPERIMENTS: dict[str, Callable[[Profile], ExperimentResult]] = {
    "fig06": fig06_ratio.run,
    "fig07": fig07_switches.run,
    "fig08": fig08_msglen.run,
    "fig09": fig09_load_ratio.run,
    "fig10": fig10_load_switches.run,
    "fig11": fig11_load_msglen.run,
    "extra-hostoverhead": extra_omitted.run_host_overhead,
    "extra-systemsize": extra_omitted.run_system_size,
    "extra-packetlen": extra_omitted.run_packet_length,
    "extra-background": extra_omitted.run_background_traffic,
    "extra-regular": extra_omitted.run_regular_comparison,
    "extra-faults": extra_omitted.run_fault_tolerance,
    "extra-patterns": extra_omitted.run_traffic_patterns,
    "ablation-buffer": ablation.run_buffer_size,
    "ablation-buffer-load": ablation.run_buffer_size_under_load,
    "ablation-fpfs": ablation.run_ni_policies,
    "ablation-routing": ablation.run_routing_policy,
    "ablation-orientation": ablation.run_tree_orientation,
    "ablation-pathstrategy": ablation.run_path_strategy,
    "ablation-header": ablation.run_header_capacity,
    "ablation-fixedk": ablation.run_fixed_k,
    "shard-scaling": shard_scaling.run,
    "group-churn": group_churn.run,
    "vc-ablation": vc_ablation.run,
    "collective-load": collective_load.run,
}

PAPER_FIGURES = ("fig06", "fig07", "fig08", "fig09", "fig10", "fig11")


def _resolve_profile(profile: Profile | str) -> Profile:
    if isinstance(profile, str):
        try:
            return PROFILES[profile]
        except KeyError:
            raise ValueError(
                f"unknown profile {profile!r}; choose from {sorted(PROFILES)}"
            ) from None
    return profile


def _experiment_digest(exp_id: str, profile: Profile, shards: int) -> str:
    """Content hash of a whole experiment run (id + profile + schema).

    ``shards`` is part of the identity: experiments decomposed over the
    sharded runner sweep shard counts up to that budget, so the assembled
    result depends on it (unlike ``jobs``, which never changes output).
    """
    payload = json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "exp_id": exp_id,
            "profile": asdict(profile),
            "shards": shards,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _experiment_cache_path(
    cache_dir: pathlib.Path, exp_id: str, profile: Profile, shards: int
) -> pathlib.Path:
    digest = _experiment_digest(exp_id, profile, shards)
    return (
        cache_dir
        / "experiments"
        / f"{exp_id}-{profile.name}-{digest[:16]}.json"
    )


def _load_cached_experiment(path: pathlib.Path) -> ExperimentResult | None:
    from repro.experiments.io import result_from_dict

    try:
        return result_from_dict(json.loads(path.read_text()))
    except FileNotFoundError:
        return None
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"experiment cache: discarding unreadable {path.name}: {exc}")
        return None


def _store_cached_experiment(path: pathlib.Path, result: ExperimentResult) -> None:
    from repro.experiments.io import result_to_dict

    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(result_to_dict(result), indent=2) + "\n")
    os.replace(tmp, path)


def run_experiment_with_stats(
    exp_id: str,
    profile: Profile | str = "quick",
    *,
    jobs: int = 1,
    cache_dir: str | pathlib.Path | None = None,
    shards: int = 1,
) -> tuple[ExperimentResult, ExecutionStats]:
    """Run one experiment and report what was executed vs cache-served.

    ``jobs`` sets the worker-process count for cell-decomposed experiments;
    ``cache_dir`` (None disables caching) roots both cache tiers; ``shards``
    is the per-simulation shard budget for experiments built on the sharded
    runner (and part of the cache identity, since it shapes their output).
    """
    profile = _resolve_profile(profile)
    try:
        runner = EXPERIMENTS[exp_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {exp_id!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None

    if cache_dir is None:
        with execution_context(jobs=jobs, shards=shards) as ctx:
            return runner(profile), ctx.stats

    cache_root = pathlib.Path(cache_dir)
    exp_path = _experiment_cache_path(cache_root, exp_id, profile, shards)
    cached = _load_cached_experiment(exp_path)
    if cached is not None:
        stats = ExecutionStats(experiments_cached=1)
        return cached, stats
    cell_cache = CellCache(cache_root / "cells")
    with execution_context(
        jobs=jobs, cache=cell_cache, shards=shards
    ) as ctx:
        result = runner(profile)
    _store_cached_experiment(exp_path, result)
    return result, ctx.stats


def run_experiment(
    exp_id: str,
    profile: Profile | str = "quick",
    *,
    jobs: int = 1,
    cache_dir: str | pathlib.Path | None = None,
    shards: int = 1,
) -> ExperimentResult:
    """Run one experiment by id; profile may be a name or a Profile."""
    result, _stats = run_experiment_with_stats(
        exp_id, profile, jobs=jobs, cache_dir=cache_dir, shards=shards
    )
    return result
