"""Experiment registry: id -> runner, consumed by the CLI and benchmarks."""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    ablation,
    extra_omitted,
    fig06_ratio,
    fig07_switches,
    fig08_msglen,
    fig09_load_ratio,
    fig10_load_switches,
    fig11_load_msglen,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.config import PROFILES, Profile

EXPERIMENTS: dict[str, Callable[[Profile], ExperimentResult]] = {
    "fig06": fig06_ratio.run,
    "fig07": fig07_switches.run,
    "fig08": fig08_msglen.run,
    "fig09": fig09_load_ratio.run,
    "fig10": fig10_load_switches.run,
    "fig11": fig11_load_msglen.run,
    "extra-hostoverhead": extra_omitted.run_host_overhead,
    "extra-systemsize": extra_omitted.run_system_size,
    "extra-packetlen": extra_omitted.run_packet_length,
    "extra-background": extra_omitted.run_background_traffic,
    "extra-regular": extra_omitted.run_regular_comparison,
    "extra-faults": extra_omitted.run_fault_tolerance,
    "extra-patterns": extra_omitted.run_traffic_patterns,
    "ablation-buffer": ablation.run_buffer_size,
    "ablation-buffer-load": ablation.run_buffer_size_under_load,
    "ablation-fpfs": ablation.run_ni_policies,
    "ablation-routing": ablation.run_routing_policy,
    "ablation-orientation": ablation.run_tree_orientation,
    "ablation-pathstrategy": ablation.run_path_strategy,
    "ablation-header": ablation.run_header_capacity,
    "ablation-fixedk": ablation.run_fixed_k,
}

PAPER_FIGURES = ("fig06", "fig07", "fig08", "fig09", "fig10", "fig11")


def run_experiment(exp_id: str, profile: Profile | str = "quick") -> ExperimentResult:
    """Run one experiment by id; profile may be a name or a Profile."""
    if isinstance(profile, str):
        try:
            profile = PROFILES[profile]
        except KeyError:
            raise ValueError(
                f"unknown profile {profile!r}; choose from {sorted(PROFILES)}"
            )
    try:
        runner = EXPERIMENTS[exp_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {exp_id!r}; choose from {sorted(EXPERIMENTS)}"
        )
    return runner(profile)
