"""E5 / Figure 10: latency vs applied multicast load, varying switch count.

As switches increase (nodes fixed), the path-based scheme's saturation load
falls toward the NI-based scheme's; the tree-based scheme performs almost
uniformly and saturates much later than both.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, load_sweep
from repro.experiments.config import Profile
from repro.params import SimParams

SWITCH_COUNTS = (8, 16, 32)


def run(profile: Profile, base: SimParams | None = None) -> ExperimentResult:
    base = base or SimParams()
    variants = {
        f"{s}sw": base.replace(num_switches=s) for s in SWITCH_COUNTS
    }
    return load_sweep(
        "fig10",
        "Latency under multicast load, varying number of switches",
        variants,
        profile,
    )
