"""Parameter-sensitivity (tornado) analysis.

For every numeric parameter the model depends on, vary it down/up by a
factor around the default and measure the impact on each scheme's isolated
multicast latency.  The result ranks the parameters by leverage -- which is
both a sanity check on the reconstruction (DESIGN.md's OCR'd constants) and
the quantitative version of the paper's claim that R is "the most important
of these parameters".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import SimParams
from repro.traffic.single import average_single_multicast_latency

TORNADO_PARAMS: dict[str, tuple] = {
    "o_host": (int, 0.5, 2.0),
    "ratio_r": (float, 0.5, 2.0),
    "io_bus_flits_per_cycle": (float, 0.5, 2.0),
    "packet_flits": (int, 0.5, 2.0),
    "input_buffer_flits": (int, 0.5, 2.0),
    "link_delay": (int, 1.0, 3.0),
    "routing_delay": (int, 1.0, 3.0),
}
"""parameter -> (type, low multiplier, high multiplier)."""


@dataclass(frozen=True)
class TornadoBar:
    """Sensitivity of one scheme to one parameter."""

    parameter: str
    scheme: str
    base_latency: float
    low_latency: float
    high_latency: float

    @property
    def swing(self) -> float:
        """Relative latency swing across the parameter's range."""
        return abs(self.high_latency - self.low_latency) / self.base_latency


def tornado_analysis(
    base: SimParams | None = None,
    schemes: tuple[str, ...] = ("ni", "path", "tree"),
    group_size: int = 16,
    n_topologies: int = 2,
    trials: int = 2,
    seed: int = 2024,
) -> list[TornadoBar]:
    """One :class:`TornadoBar` per (parameter, scheme), sorted by swing."""
    base = base or SimParams()

    def lat(params: SimParams, scheme: str) -> float:
        return average_single_multicast_latency(
            params, scheme, group_size,
            n_topologies=n_topologies, trials_per_topology=trials, seed=seed,
        ).mean

    bars: list[TornadoBar] = []
    base_lat = {s: lat(base, s) for s in schemes}
    for name, (cast, lo_mult, hi_mult) in TORNADO_PARAMS.items():
        default = getattr(base, name)
        lo_val = cast(default * lo_mult)
        hi_val = cast(default * hi_mult)
        if lo_val == default and hi_val == default:
            continue
        lo_params = base.replace(**{name: lo_val})
        hi_params = base.replace(**{name: hi_val})
        lo_params.validate()
        hi_params.validate()
        for scheme in schemes:
            bars.append(
                TornadoBar(
                    parameter=name,
                    scheme=scheme,
                    base_latency=base_lat[scheme],
                    low_latency=lat(lo_params, scheme),
                    high_latency=lat(hi_params, scheme),
                )
            )
    bars.sort(key=lambda b: -b.swing)
    return bars


def render_tornado(bars: list[TornadoBar], width: int = 40) -> str:
    """Text tornado chart, widest swings on top."""
    if not bars:
        return "(no sensitivity bars)"
    max_swing = max(b.swing for b in bars) or 1.0
    lines = [f"{'parameter':<24}{'scheme':<6}{'swing':>8}  impact"]
    for b in bars:
        bar = "#" * max(1, round(b.swing / max_swing * width))
        lines.append(
            f"{b.parameter:<24}{b.scheme:<6}{b.swing:>7.1%}  {bar}"
        )
    return "\n".join(lines)
