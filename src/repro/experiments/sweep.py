"""Generic cartesian parameter sweeps.

The figure modules sweep one parameter at a time (the paper's methodology);
downstream users exploring the design space want arbitrary grids.  A sweep
takes a base :class:`SimParams`, a grid of field overrides, and a metric
function, and returns one flat record per grid point -- trivially exportable
to CSV for external analysis.
"""

from __future__ import annotations

import csv
import io
import itertools
import pathlib
from dataclasses import dataclass, field
from typing import Callable

from repro.params import SimParams

MetricFn = Callable[[SimParams], dict[str, float]]


@dataclass(frozen=True)
class SweepRecord:
    """One grid point's coordinates and measured metrics."""

    coords: tuple[tuple[str, object], ...]
    metrics: dict[str, float] = field(hash=False)

    def coord(self, name: str) -> object:
        for k, v in self.coords:
            if k == name:
                return v
        raise KeyError(name)


def grid_sweep(
    base: SimParams,
    grid: dict[str, list],
    metric_fn: MetricFn,
) -> list[SweepRecord]:
    """Run ``metric_fn`` at every point of the cartesian grid.

    ``grid`` maps :class:`SimParams` field names to value lists.  Invalid
    field names fail fast (before any simulation), and every derived
    parameter set is validated.
    """
    if not grid:
        raise ValueError("empty grid")
    for name in grid:
        if not hasattr(base, name):
            raise ValueError(f"SimParams has no field {name!r}")
    names = sorted(grid)
    records: list[SweepRecord] = []
    for values in itertools.product(*(grid[n] for n in names)):
        overrides = dict(zip(names, values))
        params = base.replace(**overrides)
        params.validate()
        metrics = metric_fn(params)
        records.append(
            SweepRecord(coords=tuple(zip(names, values)), metrics=dict(metrics))
        )
    return records


def single_latency_metric(
    scheme_names: tuple[str, ...] = ("ni", "path", "tree"),
    group_size: int = 16,
    n_topologies: int = 2,
    trials: int = 2,
    seed: int = 2024,
) -> MetricFn:
    """Metric factory: mean isolated-multicast latency per scheme."""
    from repro.traffic.single import average_single_multicast_latency

    def metric(params: SimParams) -> dict[str, float]:
        out = {}
        for scheme in scheme_names:
            summ = average_single_multicast_latency(
                params,
                scheme,
                min(group_size, params.num_nodes - 1),
                n_topologies=n_topologies,
                trials_per_topology=trials,
                seed=seed,
            )
            out[f"latency_{scheme}"] = summ.mean
        return out

    return metric


def sweep_to_csv(records: list[SweepRecord]) -> str:
    """Flat CSV: coordinate columns then metric columns."""
    if not records:
        raise ValueError("no records")
    coord_names = [k for k, _v in records[0].coords]
    metric_names = sorted(records[0].metrics)
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(coord_names + metric_names)
    for r in records:
        row = [v for _k, v in r.coords]
        row += [r.metrics.get(m, "") for m in metric_names]
        writer.writerow(row)
    return buf.getvalue()


def save_sweep_csv(records: list[SweepRecord], path: str | pathlib.Path) -> None:
    """Write a sweep to a CSV file."""
    pathlib.Path(path).write_text(sweep_to_csv(records))
