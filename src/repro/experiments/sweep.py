"""Generic cartesian parameter sweeps.

The figure modules sweep one parameter at a time (the paper's methodology);
downstream users exploring the design space want arbitrary grids.  A sweep
takes a base :class:`SimParams`, a grid of field overrides, and a metric
function, and returns one flat record per grid point -- trivially exportable
to CSV for external analysis.

``grid_sweep(..., jobs=N)`` evaluates grid points on the same process-pool
executor the experiment runner uses; the metric function must then be
picklable (a module-level function or a callable instance such as the one
:func:`single_latency_metric` returns -- not a closure).
"""

from __future__ import annotations

import csv
import io
import itertools
import pathlib
from dataclasses import dataclass, field
from typing import Callable

from repro.params import SimParams

MetricFn = Callable[[SimParams], dict[str, float]]


@dataclass(frozen=True)
class SweepRecord:
    """One grid point's coordinates and measured metrics."""

    coords: tuple[tuple[str, object], ...]
    metrics: dict[str, float] = field(hash=False)

    def coord(self, name: str) -> object:
        for k, v in self.coords:
            if k == name:
                return v
        raise KeyError(name)


@dataclass(frozen=True)
class _GridPoint:
    """One picklable work item of a parallel grid sweep."""

    params: SimParams
    metric_fn: MetricFn

    def __call__(self) -> dict[str, float]:
        return self.metric_fn(self.params)


def _run_grid_point(point: _GridPoint) -> dict[str, float]:
    """Module-level trampoline so the pool can pickle the call."""
    return point()


def grid_sweep(
    base: SimParams,
    grid: dict[str, list],
    metric_fn: MetricFn,
    jobs: int = 1,
) -> list[SweepRecord]:
    """Run ``metric_fn`` at every point of the cartesian grid.

    ``grid`` maps :class:`SimParams` field names to value lists.  Invalid
    field names fail fast (before any simulation), and every derived
    parameter set is validated.  With ``jobs > 1`` the points run on a
    process pool; record order is canonical (the cartesian-product order)
    either way.
    """
    if not grid:
        raise ValueError("empty grid")
    for name in grid:
        if not hasattr(base, name):
            raise ValueError(f"SimParams has no field {name!r}")
    names = sorted(grid)
    coords_list: list[tuple[tuple[str, object], ...]] = []
    points: list[_GridPoint] = []
    for values in itertools.product(*(grid[n] for n in names)):
        overrides = dict(zip(names, values))
        params = base.replace(**overrides)
        params.validate()
        coords_list.append(tuple(zip(names, values)))
        points.append(_GridPoint(params, metric_fn))
    from repro.experiments.runner import parallel_map

    metrics_list = parallel_map(_run_grid_point, points, jobs)
    return [
        SweepRecord(coords=coords, metrics=dict(metrics))
        for coords, metrics in zip(coords_list, metrics_list)
    ]


@dataclass(frozen=True)
class SingleLatencyMetric:
    """Mean isolated-multicast latency per scheme, as a picklable callable.

    (A closure would also work serially, but could not cross the process
    boundary of ``grid_sweep(..., jobs=N)``.)
    """

    scheme_names: tuple[str, ...] = ("ni", "path", "tree")
    group_size: int = 16
    n_topologies: int = 2
    trials: int = 2
    seed: int = 2024

    def __call__(self, params: SimParams) -> dict[str, float]:
        from repro.traffic.single import average_single_multicast_latency

        out = {}
        for scheme in self.scheme_names:
            summ = average_single_multicast_latency(
                params,
                scheme,
                min(self.group_size, params.num_nodes - 1),
                n_topologies=self.n_topologies,
                trials_per_topology=self.trials,
                seed=self.seed,
            )
            out[f"latency_{scheme}"] = summ.mean
        return out


def single_latency_metric(
    scheme_names: tuple[str, ...] = ("ni", "path", "tree"),
    group_size: int = 16,
    n_topologies: int = 2,
    trials: int = 2,
    seed: int = 2024,
) -> MetricFn:
    """Metric factory: mean isolated-multicast latency per scheme."""
    return SingleLatencyMetric(
        scheme_names=tuple(scheme_names),
        group_size=group_size,
        n_topologies=n_topologies,
        trials=trials,
        seed=seed,
    )


def sweep_to_csv(records: list[SweepRecord]) -> str:
    """Flat CSV: coordinate columns then metric columns.

    Metric columns are the sorted union of metric keys across *all*
    records (heterogeneous metric dicts lose nothing); a record without a
    given metric leaves that cell empty.
    """
    if not records:
        raise ValueError("no records")
    coord_names = [k for k, _v in records[0].coords]
    metric_names = sorted({m for r in records for m in r.metrics})
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(coord_names + metric_names)
    for r in records:
        row = [v for _k, v in r.coords]
        row += [r.metrics.get(m, "") for m in metric_names]
        writer.writerow(row)
    return buf.getvalue()


def save_sweep_csv(records: list[SweepRecord], path: str | pathlib.Path) -> None:
    """Write a sweep to a CSV file."""
    pathlib.Path(path).write_text(sweep_to_csv(records))
