"""E4 / Figure 9: latency vs applied multicast load, varying R.

4-way and 16-way multicasts under increasing effective applied load, for
R in {0.5, 2 (default), 4}.  Expected: tree-based saturates latest for all
R; for R <= ~1 the NI scheme is worst, but for larger R it becomes
comparable to the tree scheme and clearly better than path-based (the paper
attributes this partly to the NI scheme spreading receive times across
recipients instead of hitting them simultaneously).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, load_sweep
from repro.experiments.config import Profile
from repro.params import SimParams

R_VALUES = (0.5, 2.0, 4.0)


def run(profile: Profile, base: SimParams | None = None) -> ExperimentResult:
    base = base or SimParams()
    variants = {f"R={r:g}": base.replace(ratio_r=r) for r in R_VALUES}
    return load_sweep(
        "fig09",
        "Latency under multicast load, varying R",
        variants,
        profile,
    )
