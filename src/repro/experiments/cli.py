"""Command-line entry point: ``repro-experiments``.

Examples::

    repro-experiments list
    repro-experiments run fig06
    repro-experiments run fig09 --profile full --json out/ --csv out/
    repro-experiments run all --profile quick
    repro-experiments run figures --jobs 4 --cache-dir .repro-cache
    repro-experiments topology --seed 7 --save topo.json

``--jobs N`` runs an experiment's independent cells on N worker processes;
``--cache-dir DIR`` makes runs resumable (crash mid-``run all``, rerun the
same command, and only missing cells execute).  The ``REPRO_CACHE_DIR``
environment variable provides the default cache directory; ``--no-cache``
forces caching off.  Output is byte-identical across jobs counts and cache
states.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import time

from repro.experiments.config import PROFILES
from repro.experiments.registry import (
    EXPERIMENTS,
    PAPER_FIGURES,
    run_experiment_with_stats,
)


def _cmd_list() -> int:
    for exp_id in EXPERIMENTS:
        marker = "*" if exp_id in PAPER_FIGURES else " "
        print(f" {marker} {exp_id}")
    print("(* = figure of the paper; others are extensions/ablations)")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.experiment == "all":
        ids = list(EXPERIMENTS)
    elif args.experiment == "figures":
        ids = list(PAPER_FIGURES)
    elif args.experiment in EXPERIMENTS:
        ids = [args.experiment]
    else:
        print(f"unknown experiment {args.experiment!r}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    cache_dir = None if args.no_cache else (args.cache_dir or None)
    for exp_id in ids:
        t0 = time.perf_counter()
        result, stats = run_experiment_with_stats(
            exp_id,
            args.profile,
            jobs=args.jobs,
            cache_dir=cache_dir,
            shards=args.shards,
        )
        print(result.to_table())
        if stats.experiments_cached:
            detail = "experiment cache hit"
        elif stats.cells_total:
            detail = (
                f"cells: {stats.cells_executed} run, "
                f"{stats.cells_cached} cached"
            )
        else:
            detail = "no cell decomposition"
        print(f"[{exp_id} took {time.perf_counter() - t0:.1f}s; {detail}]\n")
        if args.json:
            from repro.experiments.io import save_result_json

            out = pathlib.Path(args.json)
            out.mkdir(parents=True, exist_ok=True)
            save_result_json(result, out / f"{exp_id}.json")
        if args.csv:
            from repro.experiments.io import save_result_csv

            out = pathlib.Path(args.csv)
            out.mkdir(parents=True, exist_ok=True)
            save_result_csv(result, out / f"{exp_id}.csv")
    return 0


def _cmd_validate(_args: argparse.Namespace) -> int:
    """Quick model-validation pass: closed form + cross-backend agreement."""
    import random

    from repro.analysis.closedform import (
        tree_worm_latency,
        unicast_message_latency,
    )
    from repro.multicast import make_scheme
    from repro.params import SimParams
    from repro.routing.deadlock import DeadlockCycleError, verify_deadlock_free
    from repro.routing.updown import UpDownRouting
    from repro.sim.flitsim import FlitLevelFabric, unicast_route
    from repro.sim.network import SimNetwork
    from repro.sim.worm import Worm
    from repro.topology.irregular import generate_irregular_topology

    failures = 0

    def check(label: str, ok: bool) -> None:
        nonlocal failures
        print(f"  [{'PASS' if ok else 'FAIL'}] {label}")
        if not ok:
            failures += 1

    params = SimParams(adaptive_routing=False)
    for seed in range(3):
        topo = generate_irregular_topology(params, seed=seed)
        rt = UpDownRouting.build(topo)
        try:
            verify_deadlock_free(topo, rt)
            ok = True
        except DeadlockCycleError as exc:
            print(f"seed {seed}: {exc}", file=sys.stderr)
            ok = False
        check(f"seed {seed}: up*/down* CDG acyclic", ok)

        rng = random.Random(seed)
        src = rng.randrange(32)
        dst = rng.choice([n for n in range(32) if n != src])
        net = SimNetwork(topo, params)
        res = make_scheme("binomial").execute(net, src, [dst])
        net.run()
        hops = rt.distance(topo.switch_of_node(src), topo.switch_of_node(dst))
        check(
            f"seed {seed}: unicast matches closed form",
            abs(res.latency - unicast_message_latency(params, hops)) < 1e-6,
        )

        dests = rng.sample([n for n in range(32) if n != src], 8)
        tnet = SimNetwork(topo, params)
        tres = make_scheme("tree").execute(tnet, src, dests)
        tnet.run()
        check(
            f"seed {seed}: tree worm matches closed form",
            abs(tres.latency - tree_worm_latency(tnet, src, dests)) <= 2.0,
        )

        # Cross-backend: one contended pair in both simulators.
        enet = SimNetwork(topo, params)
        times: list[float] = []
        for s in (src, (src + 1) % 32):
            if s == dst:
                continue
            w = Worm(enet.engine, enet.params, enet.unicast_steer(dst),
                     on_delivered=lambda _n, t: times.append(t), rng=enet.rng)
            w.start(enet.fabric.inject[s], None)
        enet.run()
        fab = FlitLevelFabric(topo, params)
        for s in (src, (src + 1) % 32):
            if s == dst:
                continue
            fab.inject(0, unicast_route(topo, rt, s, dst))
        fab.run()
        flit_times = sorted(float(v) for v in fab.deliveries.values())
        check(
            f"seed {seed}: event and flit backends agree",
            sorted(times) == flit_times,
        )
    print(f"{'ALL CHECKS PASSED' if failures == 0 else f'{failures} FAILURES'}")
    return 0 if failures == 0 else 1


def _cmd_requirements(args: argparse.Namespace) -> int:
    from repro.analysis.requirements import render_requirements, requirements_table
    from repro.params import SimParams
    from repro.sim.network import SimNetwork
    from repro.topology.irregular import generate_irregular_topology

    params = SimParams(num_nodes=args.nodes, num_switches=args.switches)
    topo = generate_irregular_topology(params, seed=args.seed)
    net = SimNetwork(topo, params)
    print(f"architectural requirements, {args.nodes} nodes / "
          f"{args.switches} switches (paper section 3.3):")
    print(render_requirements(requirements_table(net)))
    return 0


def _cmd_tornado(args: argparse.Namespace) -> int:
    from repro.experiments.calibration import render_tornado, tornado_analysis

    bars = tornado_analysis(
        n_topologies=args.topologies, trials=2, group_size=16
    )
    print(render_tornado(bars))
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    from repro.params import SimParams
    from repro.topology.analysis import analyze
    from repro.topology.irregular import generate_irregular_topology

    params = SimParams(
        num_nodes=args.nodes,
        num_switches=args.switches,
        ports_per_switch=args.ports,
    )
    topo = generate_irregular_topology(params, seed=args.seed)
    stats = analyze(topo)
    print(f"topology seed={args.seed}: {stats.num_nodes} nodes, "
          f"{stats.num_switches} switches, {stats.num_links} links")
    print(f"  diameter {stats.diameter}, mean switch distance "
          f"{stats.mean_switch_distance:.2f}")
    print(f"  switch degree {stats.min_degree}..{stats.max_degree} "
          f"(mean {stats.mean_degree:.1f}); hosts/switch "
          f"{stats.nodes_per_switch_min}..{stats.nodes_per_switch_max}; "
          f"{stats.multi_link_pairs} multi-link pair(s)")
    if args.save:
        from repro.topology.serialization import save_topology

        save_topology(topo, args.save)
        print(f"  saved to {args.save}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation of 'Where to Provide Support for "
            "Efficient Multicasting in Irregular Networks' (ICPP'98)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")

    runp = sub.add_parser("run", help="run one experiment (or 'all'/'figures')")
    runp.add_argument("experiment", help="experiment id, 'figures', or 'all'")
    runp.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default="quick",
        help="execution scale (default: quick)",
    )
    runp.add_argument("--json", metavar="DIR", help="also write <DIR>/<exp>.json")
    runp.add_argument("--csv", metavar="DIR", help="also write <DIR>/<exp>.csv")
    runp.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for independent simulation cells (default: 1)",
    )
    runp.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help=(
            "per-simulation shard budget for experiments built on the "
            "sharded runner, e.g. shard-scaling (default: 1)"
        ),
    )
    runp.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=os.environ.get("REPRO_CACHE_DIR"),
        help=(
            "cache cell and experiment results under DIR so runs are "
            "resumable (default: $REPRO_CACHE_DIR, else no caching)"
        ),
    )
    runp.add_argument(
        "--no-cache",
        action="store_true",
        help="disable result caching even if a cache dir is configured",
    )

    repp = sub.add_parser("report", help="run experiments, write a markdown report")
    repp.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (default: the paper's figures)",
    )
    repp.add_argument("--profile", choices=sorted(PROFILES), default="quick")
    repp.add_argument("--out", default="report.md", help="output path")

    topop = sub.add_parser("topology", help="generate & inspect a topology")
    topop.add_argument("--seed", type=int, default=1)
    topop.add_argument("--nodes", type=int, default=32)
    topop.add_argument("--switches", type=int, default=8)
    topop.add_argument("--ports", type=int, default=8)
    topop.add_argument("--save", metavar="FILE", help="write topology JSON")

    sub.add_parser("validate", help="closed-form + cross-backend validation pass")

    reqp = sub.add_parser("requirements", help="section 3.3 hardware-cost table")
    reqp.add_argument("--seed", type=int, default=1)
    reqp.add_argument("--nodes", type=int, default=32)
    reqp.add_argument("--switches", type=int, default=8)

    torp = sub.add_parser("tornado", help="parameter-sensitivity analysis")
    torp.add_argument("--topologies", type=int, default=2)

    sub.add_parser(
        "conclusions",
        help="measure and judge the paper's four conclusions",
    )

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "requirements":
        return _cmd_requirements(args)
    if args.command == "tornado":
        return _cmd_tornado(args)
    if args.command == "conclusions":
        from repro.experiments.conclusions import (
            check_conclusions,
            render_conclusions,
        )

        checks = check_conclusions()
        print(render_conclusions(checks))
        return 0 if all(c.holds for c in checks) else 1
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "report":
        from repro.experiments.report import write_report

        try:
            out = write_report(
                args.out, args.experiments or None, args.profile
            )
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        print(f"wrote {out}")
        return 0
    if args.command == "topology":
        return _cmd_topology(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    raise SystemExit(main())
