"""VC ablation: the paper's load comparison with virtual channels.

The paper's NI-vs-switch verdict rests on wormhole blocking: multi-phase NI
schemes pay for every head-of-line stall of their many short worms, while
tree/path worms hold long chains of channels.  Both penalties shrink when
each physical channel carries several virtual channels (the multi-lane
wormhole MIN study, arXiv:2007.02550), so this experiment reruns the
fig09/fig10 load grids with ``vc_count`` in {1, 2, 4}: does the scheme
ranking that drives the paper's conclusion survive when VCs relieve
blocking?

Variants span the fig09 default system (8 switches) and fig10's larger
16-switch axis, crossed with the VC count; ``vc_count=1`` reproduces the
single-lane fabric bit for bit (the vcs=1 identity guarantee), so the VC=1
curves double as a cross-check against fig09/fig10.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, load_sweep
from repro.experiments.config import Profile
from repro.params import SimParams

VC_COUNTS = (1, 2, 4)
SWITCH_COUNTS = (8, 16)


def run(profile: Profile, base: SimParams | None = None) -> ExperimentResult:
    base = base or SimParams()
    variants = {
        f"S{s}/VC={v}": base.replace(num_switches=s, vc_count=v)
        for s in SWITCH_COUNTS
        for v in VC_COUNTS
    }
    return load_sweep(
        "vc-ablation",
        "Latency under multicast load, varying virtual channels",
        variants,
        profile,
    )
