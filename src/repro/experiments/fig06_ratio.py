"""E1 / Figure 6: effect of R = o_host/o_ni on single-multicast latency.

The paper fixes ``o_host`` and varies ``o_ni`` to generate R in
{0.5, 1, 2, 4}.  Expected shape: the tree-based scheme is flat-best; the
NI-based scheme overtakes the path-based scheme as R grows (interior NI
overheads shrink while every path-worm phase still pays host overheads).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, single_multicast_sweep
from repro.experiments.config import Profile
from repro.params import SimParams

R_VALUES = (0.5, 1.0, 2.0, 4.0)


def run(profile: Profile, base: SimParams | None = None) -> ExperimentResult:
    base = base or SimParams()
    variants = {f"R={r:g}": base.replace(ratio_r=r) for r in R_VALUES}
    return single_multicast_sweep(
        "fig06",
        "Effect of R = o_host/o_ni on single multicast latency",
        variants,
        profile,
    )
