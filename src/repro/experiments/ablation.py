"""E8: ablations of the design choices DESIGN.md calls out.

* input buffer size (wormhole <-> virtual cut-through regimes),
* FPFS vs store-and-forward forwarding at the smart NI,
* adaptive vs deterministic up*/down* routing,
* MDP-LG vs plain greedy worm selection,
* fixed vs auto-selected k for the k-binomial tree.
"""

from __future__ import annotations

from repro.experiments.base import (
    ExperimentResult,
    Series,
    single_multicast_sweep,
)
from repro.experiments.config import Profile
from repro.params import SimParams
from repro.traffic.single import average_single_multicast_latency

BUFFER_SIZES = (8, 64, 256)


def run_buffer_size(profile: Profile, base: SimParams | None = None) -> ExperimentResult:
    """Input-buffer size sweep (all schemes)."""
    base = base or SimParams()
    variants = {
        f"buf={b}": base.replace(input_buffer_flits=b) for b in BUFFER_SIZES
    }
    return single_multicast_sweep(
        "ablation-buffer",
        "Effect of switch input-buffer size on single multicast latency",
        variants,
        profile,
    )


def run_buffer_size_under_load(profile: Profile, base: SimParams | None = None) -> ExperimentResult:
    """Input-buffer size under multicast load -- where VCT vs wormhole shows.

    Isolated multicasts see no buffer effect (ablation-buffer); with
    contention, large buffers absorb blocked packets (virtual cut-through)
    and free upstream channels, while small buffers chain-block.
    """
    from repro.experiments.base import load_sweep

    base = base or SimParams()
    variants = {
        f"buf={b}": base.replace(input_buffer_flits=b) for b in BUFFER_SIZES
    }
    return load_sweep(
        "ablation-buffer-load",
        "Input-buffer size under multicast load (VCT vs wormhole)",
        variants,
        profile,
        schemes=("tree",),
        degrees=(16,),
    )


def run_ni_policies(profile: Profile, base: SimParams | None = None) -> ExperimentResult:
    """FPFS vs store-and-forward NI forwarding, multi-packet messages."""
    base = (base or SimParams()).replace(message_packets=4)
    variants = {
        "fpfs": base,
        "store&fwd": base.replace(ni_store_and_forward=True),
    }
    return single_multicast_sweep(
        "ablation-fpfs",
        "FPFS vs store-and-forward smart-NI forwarding (512-flit messages)",
        variants,
        profile,
        schemes=("ni",),
    )


def run_routing_policy(profile: Profile, base: SimParams | None = None) -> ExperimentResult:
    """Adaptive vs deterministic minimal up*/down* routing."""
    base = base or SimParams()
    variants = {
        "adaptive": base,
        "deterministic": base.replace(adaptive_routing=False),
    }
    return single_multicast_sweep(
        "ablation-routing",
        "Adaptive vs deterministic routing, single multicast latency",
        variants,
        profile,
    )


def run_tree_orientation(profile: Profile, base: SimParams | None = None) -> ExperimentResult:
    """BFS (Autonet) vs DFS-preorder link orientation."""
    base = base or SimParams()
    variants = {
        "bfs": base,
        "dfs": base.replace(routing_tree="dfs"),
    }
    return single_multicast_sweep(
        "ablation-orientation",
        "BFS vs DFS up*/down* link orientation, single multicast latency",
        variants,
        profile,
    )


def run_path_strategy(profile: Profile, base: SimParams | None = None) -> ExperimentResult:
    """MDP-LG vs plain greedy path-worm selection."""
    base = base or SimParams()
    series = []
    for label, strategy in (("lg", "lg"), ("greedy", "greedy")):
        ys = []
        sizes = [s for s in profile.group_sizes if s < base.num_nodes]
        for size in sizes:
            summ = average_single_multicast_latency(
                base,
                "path",
                size,
                n_topologies=profile.n_topologies,
                trials_per_topology=profile.trials_per_topology,
                seed=profile.seed,
                strategy=strategy,
            )
            ys.append(summ.mean)
        series.append(
            Series(label=f"path/{label}", x=[float(s) for s in sizes], y=ys)
        )
    return ExperimentResult(
        exp_id="ablation-pathstrategy",
        title="MDP-LG vs greedy path-worm selection",
        x_label="multicast set size",
        y_label="single multicast latency (cycles)",
        series=series,
    )


def run_header_capacity(profile: Profile, base: SimParams | None = None) -> ExperimentResult:
    """Header-capacity-limited tree worms (Section 3.3 cost concern)."""
    base = base or SimParams()
    series = []
    sizes = [s for s in profile.group_sizes if s < base.num_nodes]
    for label, cap in (("unlimited", None), ("cap=8", 8), ("cap=4", 4)):
        ys = []
        for size in sizes:
            summ = average_single_multicast_latency(
                base,
                "tree",
                size,
                n_topologies=profile.n_topologies,
                trials_per_topology=profile.trials_per_topology,
                seed=profile.seed,
                max_header_dests=cap,
            )
            ys.append(summ.mean)
        series.append(
            Series(label=f"tree/{label}", x=[float(s) for s in sizes], y=ys)
        )
    return ExperimentResult(
        exp_id="ablation-header",
        title="Tree-worm header capacity: unlimited vs chunked headers",
        x_label="multicast set size",
        y_label="single multicast latency (cycles)",
        series=series,
    )


def run_fixed_k(profile: Profile, base: SimParams | None = None) -> ExperimentResult:
    """Forcing the k-binomial fan-out vs the analytic auto-selection."""
    base = base or SimParams()
    series = []
    sizes = [s for s in profile.group_sizes if s < base.num_nodes]
    for label, kw in (
        ("auto", {}),
        ("k=1", {"fixed_k": 1}),
        ("k=2", {"fixed_k": 2}),
        ("k=4", {"fixed_k": 4}),
        ("k=8", {"fixed_k": 8}),
    ):
        ys = []
        for size in sizes:
            summ = average_single_multicast_latency(
                base,
                "ni",
                size,
                n_topologies=profile.n_topologies,
                trials_per_topology=profile.trials_per_topology,
                seed=profile.seed,
                **kw,
            )
            ys.append(summ.mean)
        series.append(
            Series(label=f"ni/{label}", x=[float(s) for s in sizes], y=ys)
        )
    return ExperimentResult(
        exp_id="ablation-fixedk",
        title="k-binomial fan-out: auto-selected vs fixed k",
        x_label="multicast set size",
        y_label="single multicast latency (cycles)",
        series=series,
    )
