"""Parallel, cached, resumable execution of experiment *cells*.

The figure engines in :mod:`repro.experiments.base` are grids of independent
simulation calls: one :func:`~repro.traffic.single.average_single_multicast_latency`
per (variant, scheme, group size) and one
:func:`~repro.traffic.load.run_load_experiment` per (variant, degree, scheme,
load).  This module gives each such call a first-class identity -- a
:class:`Cell` -- and provides the machinery the whole experiment layer shares:

* **Deterministic per-cell seeds.**  :func:`derive_seed` hashes
  ``(profile.seed, exp_id, draw coordinates)`` with SHA-256, so every cell
  owns an independent, platform-stable random stream.  The *scheme* is
  deliberately excluded from the seed key: the paper's methodology pairs
  scheme comparisons on identical topology/draw sequences, and schemes
  sharing one cell seed preserves that pairing.
* **A content-addressed on-disk cache.**  :class:`CellCache` keys each cell
  by a stable hash of its full descriptor (schema version, sim parameters,
  scheme, coordinates, profile knobs, seed) and stores one atomically
  written JSON file per cell, so an interrupted ``run all`` resumes from
  the completed cells and a parameter change invalidates exactly the cells
  it affects.
* **A process-pool executor.**  :func:`execute_cells` fans pending cells out
  over ``jobs`` worker processes and merges values back in submission
  order.  Cells are seeded independently and merged canonically, so the
  parallel result is byte-identical to the serial one (the determinism
  contract DESIGN.md documents).

The active execution policy travels through a :class:`contextvars.ContextVar`
(:func:`execution_context`) so the two dozen registered experiment runners
keep their ``run(profile)`` signatures.
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import json
import os
import pathlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Callable, Iterator

from repro.params import SimParams

SCHEMA_VERSION = 1
"""Bump to invalidate every cached cell when the simulation model changes."""

_SEED_SPACE = 2**31
"""Derived seeds live in [0, 2**31); comfortably inside Python's int seeds."""


def _canonical_json(data: object) -> str:
    """Stable, whitespace-free JSON used for hashing descriptors."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def derive_seed(profile_seed: int, exp_id: str, *key: object) -> int:
    """Deterministic per-cell seed from ``(profile.seed, exp_id, cell key)``.

    SHA-256 based (never :func:`hash`, which is salted per process), so the
    same coordinates yield the same seed on every platform and every run.
    """
    payload = _canonical_json([profile_seed, exp_id, list(key)])
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_SPACE


@dataclass(frozen=True)
class Cell:
    """One independent simulation call of an experiment grid.

    A cell is pure data (picklable, hashable content) so it can cross a
    process boundary and serve as its own cache key.
    """

    kind: str
    """Cell family: ``"single"`` (isolated-multicast latency average) or
    ``"load"`` (one open-loop load point)."""

    exp_id: str
    params: SimParams
    scheme: str
    coords: tuple[tuple[str, object], ...]
    """Grid coordinates, e.g. ``(("variant", "R=2"), ("size", 16))`` --
    the cell's position in the figure, used in the cache key."""

    knobs: tuple[tuple[str, object], ...]
    """Profile knobs that shape this cell's simulation (topology count,
    durations, ...); part of the cache key so profile changes invalidate."""

    seed: int
    scheme_kw: tuple[tuple[str, object], ...] = ()

    def descriptor(self) -> dict:
        """Plain-data identity of the cell; the input to the cache hash."""
        return {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "exp_id": self.exp_id,
            "params": asdict(self.params),
            "scheme": self.scheme,
            "coords": [list(kv) for kv in self.coords],
            "knobs": [list(kv) for kv in self.knobs],
            "seed": self.seed,
            "scheme_kw": [list(kv) for kv in self.scheme_kw],
        }

    def digest(self) -> str:
        """Content hash naming this cell in the cache."""
        payload = _canonical_json(self.descriptor())
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def knob(self, name: str) -> object:
        for k, v in self.knobs:
            if k == name:
                return v
        raise KeyError(name)

    def coord(self, name: str) -> object:
        for k, v in self.coords:
            if k == name:
                return v
        raise KeyError(name)


def run_cell(cell: Cell) -> dict:
    """Execute one cell and return its plain-data (JSON-able) value.

    Module-level so a :class:`ProcessPoolExecutor` can pickle it; every
    random stream inside is seeded from ``cell.seed``, so the result is a
    pure function of the cell descriptor.
    """
    if cell.kind == "single":
        from repro.traffic.single import average_single_multicast_latency

        summ = average_single_multicast_latency(
            cell.params,
            cell.scheme,
            int(cell.coord("size")),
            n_topologies=int(cell.knob("n_topologies")),
            trials_per_topology=int(cell.knob("trials_per_topology")),
            seed=cell.seed,
            **dict(cell.scheme_kw),
        )
        return {"mean": summ.mean, "p95": summ.p95, "count": summ.count}
    if cell.kind == "load":
        from repro.topology.irregular import generate_topology_family
        from repro.traffic.load import run_load_experiment

        topo = generate_topology_family(cell.params, 1)[0]
        point = run_load_experiment(
            topo,
            cell.params,
            cell.scheme,
            degree=int(cell.coord("degree")),
            effective_load=float(cell.coord("load")),
            duration=int(cell.knob("duration")),
            warmup=int(cell.knob("warmup")),
            seed=cell.seed,
            **dict(cell.scheme_kw),
        )
        return {
            "mean_latency": point.mean_latency,
            "p95_latency": point.p95_latency,
            "issued": point.issued,
            "completed": point.completed,
            "warmup_ops": point.warmup_ops,
            "saturated": point.saturated,
        }
    if cell.kind == "shard":
        from repro.shard import ShardSimulation, seeded_scenario

        # One window-synchronized sharded run of a seeded scenario.  The
        # shard count is a *coordinate* (part of the cache key): at cluster
        # scale, same-cycle arbitration ties make the shard axis part of a
        # run's identity, not a transparent execution detail the way
        # ``jobs`` is (docs/sharding.md).  The inline backend is used --
        # these cells already run inside the runner's process pool, and
        # inline and process backends are digest-identical by contract.
        scen = seeded_scenario(
            int(cell.coord("switches")),
            int(cell.knob("num_jobs")),
            cell.seed,
            packet_flits=cell.params.packet_flits,
            fanout=int(cell.knob("fanout")),
            spacing=int(cell.knob("spacing")),
            link_delay=cell.params.link_delay,
            switch_delay=cell.params.switch_delay,
        )
        res = ShardSimulation(scen, int(cell.coord("shards"))).run()
        starts = {gid: start for gid, (start, _s, _d) in enumerate(scen.jobs)}
        latencies = [
            t - starts[gid] for (gid, _node), t in res.deliveries.items()
        ]
        return {
            "mean_latency": sum(latencies) / len(latencies),
            "deliveries": len(res.deliveries),
            "rounds": res.rounds,
            "messages": res.messages,
            "boundary_links": len(res.plan.boundary_links),
            "canonical_digest": res.canonical,
        }
    if cell.kind == "workload":
        from repro.workloads import run_workload_cell

        # One open-loop collective workload point.  The seed key excludes
        # the scheme (pairing rule), so every scheme is offered the
        # byte-identical arrival schedule.  Workload cells are single-shard
        # by design -- collectives complete through host-level callbacks
        # that cannot cross shard windows -- so the ``--shards`` budget is
        # deliberately ignored here and results are byte-identical at any
        # shard setting (docs/workloads.md).
        return run_workload_cell(
            cell.params,
            cell.scheme,
            seed=cell.seed,
            collective=str(cell.coord("collective")),
            rate=float(cell.coord("rate")),
            duration=float(cell.knob("duration")),
            warmup=float(cell.knob("warmup")),
            process=str(cell.knob("process")),
            deadline_factor=float(cell.knob("deadline_factor")),
            fault_count=int(cell.knob("faults")),
            scheme_kw=dict(cell.scheme_kw),
        )
    if cell.kind == "churn":
        from repro.groups import run_paired_churn

        # One paired churn run: a patched (graft/prune) dynamic group and a
        # replan-every-change twin driven through one seeded membership
        # stream.  The seed key excludes the scheme (the pairing rule), so
        # every scheme sees the identical topology and churn decisions.
        report = run_paired_churn(
            cell.params,
            cell.scheme,
            seed=cell.seed,
            steps=int(cell.knob("steps")),
            group_size=int(cell.coord("size")),
            churn_rate=float(cell.coord("rate")),
            quality_bound=float(cell.knob("quality_bound")),
            table_capacity=cell.knob("table_capacity"),
            table_policy=str(cell.knob("table_policy")),
            scheme_kw=dict(cell.scheme_kw),
        )
        value = report.to_value()
        value["digest"] = report.digest()
        return value
    raise ValueError(f"unknown cell kind {cell.kind!r}")


_MISS = object()
"""Cache-miss sentinel (cached values may legitimately be None-bearing)."""


class CellCache:
    """Content-addressed store of cell values: one JSON file per cell.

    Writes are atomic (temp file + :func:`os.replace`), so a crash mid-write
    never leaves a half-written value behind -- the resume contract.  A
    corrupt or unreadable entry is treated as a miss and recomputed.
    """

    def __init__(self, root: str | pathlib.Path) -> None:
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, digest: str) -> pathlib.Path:
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, cell: Cell) -> object:
        """The cached value, or the module-level ``_MISS`` sentinel."""
        path = self._path(cell.digest())
        try:
            data = json.loads(path.read_text())
            value = data["value"]
        except FileNotFoundError:
            self.misses += 1
            return _MISS
        except (OSError, ValueError, KeyError, TypeError) as exc:
            # Corrupt entry: drop it loudly and recompute the cell.
            print(f"cell cache: discarding unreadable {path.name}: {exc}")
            with contextlib.suppress(OSError):
                path.unlink()
            self.misses += 1
            return _MISS
        self.hits += 1
        return value

    def put(self, cell: Cell, value: object) -> None:
        digest = cell.digest()
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        # No sort_keys: the value must round-trip with its key order intact
        # so a cache hit is indistinguishable from a fresh computation.
        payload = json.dumps({"cell": cell.descriptor(), "value": value}, indent=1)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(payload + "\n")
        os.replace(tmp, path)


@dataclass
class ExecutionStats:
    """What a run actually did -- executed vs served from cache."""

    cells_executed: int = 0
    cells_cached: int = 0
    experiments_cached: int = 0

    @property
    def cells_total(self) -> int:
        return self.cells_executed + self.cells_cached


@dataclass
class ExecutionContext:
    """Execution policy the sweep engines consult (jobs + cache + stats)."""

    jobs: int = 1
    cache: CellCache | None = None
    stats: ExecutionStats = field(default_factory=ExecutionStats)
    shards: int = 1
    """Per-simulation shard budget (``--shards N``): experiments that
    decompose single runs over the sharded runner sweep shard counts up to
    this bound.  Unlike ``jobs`` (which never changes results), the shard
    axis is part of each cell's identity -- see ``kind == "shard"``."""


_CONTEXT: contextvars.ContextVar[ExecutionContext] = contextvars.ContextVar(
    "repro_execution_context", default=ExecutionContext()
)


def current_context() -> ExecutionContext:
    """The active execution policy (serial and uncached by default)."""
    return _CONTEXT.get()


@contextlib.contextmanager
def execution_context(
    jobs: int = 1, cache: CellCache | None = None, shards: int = 1
) -> Iterator[ExecutionContext]:
    """Install an execution policy for the duration of a ``with`` block."""
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    ctx = ExecutionContext(jobs=jobs, cache=cache, shards=shards)
    token = _CONTEXT.set(ctx)
    try:
        yield ctx
    finally:
        _CONTEXT.reset(token)


def parallel_map(fn: Callable, items: list, jobs: int) -> list:
    """``[fn(x) for x in items]`` over a process pool, order preserved.

    ``fn`` and every item must be picklable.  With ``jobs <= 1`` (or a
    trivially small batch) no pool is spawned; a worker exception propagates
    to the caller either way, so failures stay loud.
    """
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        return list(pool.map(fn, items))


def execute_cells(cells: list[Cell]) -> list[dict]:
    """Resolve every cell (cache first, then compute) in canonical order.

    The returned list is index-aligned with ``cells`` regardless of how
    many worker processes computed them or which values came from cache --
    the merge step that makes parallel output byte-identical to serial.
    """
    ctx = current_context()
    values: list = [_MISS] * len(cells)
    pending: list[int] = []
    for i, cell in enumerate(cells):
        hit = ctx.cache.get(cell) if ctx.cache is not None else _MISS
        if hit is _MISS:
            pending.append(i)
        else:
            values[i] = hit
    ctx.stats.cells_cached += len(cells) - len(pending)
    computed = parallel_map(run_cell, [cells[i] for i in pending], ctx.jobs)
    for i, value in zip(pending, computed):
        values[i] = value
        if ctx.cache is not None:
            ctx.cache.put(cells[i], value)
    ctx.stats.cells_executed += len(pending)
    return values
