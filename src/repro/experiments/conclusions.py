"""Automated check of the paper's four conclusions.

Runs the minimal set of measurements that support each conclusion of the
paper's Section 5 and reports, per conclusion, the measured evidence and a
HOLDS / FAILS verdict -- the repository's executable abstract.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import SimParams
from repro.traffic.load import run_load_experiment
from repro.traffic.single import average_single_multicast_latency
from repro.topology.irregular import generate_topology_family


@dataclass(frozen=True)
class ConclusionCheck:
    """One conclusion's verdict with its supporting evidence."""

    claim: str
    evidence: str
    holds: bool


def check_conclusions(
    params: SimParams | None = None,
    n_topologies: int = 2,
    trials: int = 2,
    load_duration: int = 60_000,
    seed: int = 2024,
) -> list[ConclusionCheck]:
    """Measure and judge all four conclusions; see the paper's Section 5."""
    base = params or SimParams()

    def lat(p: SimParams, scheme: str, size: int = 16, **kw) -> float:
        return average_single_multicast_latency(
            p, scheme, size, n_topologies=n_topologies,
            trials_per_topology=trials, seed=seed, **kw
        ).mean

    checks: list[ConclusionCheck] = []

    # 1. Tree-based performs best (across R, switches, lengths).
    worst_margin = float("inf")
    for variant in (
        base,
        base.replace(ratio_r=0.5),
        base.replace(ratio_r=4.0),
        base.replace(num_switches=16),
        base.replace(message_packets=4),
    ):
        t = lat(variant, "tree")
        others = min(lat(variant, "ni"), lat(variant, "path"))
        worst_margin = min(worst_margin, others / t)
    checks.append(
        ConclusionCheck(
            claim="tree-based single-worm multicast performs best",
            evidence=f"next-best scheme >= {worst_margin:.2f}x tree latency "
                     "across R/switch/length variants",
            holds=worst_margin > 1.0,
        )
    )

    # 2. R is pivotal: path wins at R=0.5, NI wins at R=4.
    path_low = lat(base.replace(ratio_r=0.5), "path")
    ni_low = lat(base.replace(ratio_r=0.5), "ni")
    path_high = lat(base.replace(ratio_r=4.0), "path")
    ni_high = lat(base.replace(ratio_r=4.0), "ni")
    checks.append(
        ConclusionCheck(
            claim="NI-vs-path ranking flips with R (crossover near R=2)",
            evidence=f"R=0.5: ni/path={ni_low / path_low:.2f}; "
                     f"R=4: ni/path={ni_high / path_high:.2f}",
            holds=ni_low > path_low and ni_high < path_high,
        )
    )

    # 3. Under load, tree saturates last (mid-load latency lowest).
    topo = generate_topology_family(base, 1)[0]
    mid = {}
    for scheme in ("ni", "path", "tree"):
        p = run_load_experiment(
            topo, base, scheme, degree=16, effective_load=0.08,
            duration=load_duration, warmup=load_duration // 10, seed=seed,
        )
        mid[scheme] = float("inf") if p.saturated or p.mean_latency is None \
            else p.mean_latency
    checks.append(
        ConclusionCheck(
            claim="under multicast load the tree scheme degrades least",
            evidence=f"16-way @0.08: tree={mid['tree']:.0f}, "
                     f"ni={mid['ni']:.0f}, path={mid['path']:.0f}",
            holds=mid["tree"] <= min(mid["ni"], mid["path"]),
        )
    )

    # 4. NI support is a worthwhile first step over the software baseline.
    soft = lat(base, "binomial")
    ni = lat(base, "ni")
    checks.append(
        ConclusionCheck(
            claim="NI support alone beats the software binomial baseline",
            evidence=f"binomial/ni latency ratio = {soft / ni:.2f}x",
            holds=ni < soft,
        )
    )
    return checks


def render_conclusions(checks: list[ConclusionCheck]) -> str:
    """Text report of the executable abstract."""
    lines = []
    for i, c in enumerate(checks, 1):
        verdict = "HOLDS" if c.holds else "FAILS"
        lines.append(f"{i}. [{verdict}] {c.claim}")
        lines.append(f"      {c.evidence}")
    return "\n".join(lines)
