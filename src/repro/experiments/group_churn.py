"""Group-churn sweep: incremental repair vs replan under membership churn.

The paper's experiments fix each multicast's destination set for the whole
run; this sweep asks what the NI-vs-switch comparison looks like when the
*group itself* is the moving part.  Each cell drives one seeded join/leave
stream (churn rate x group size) through a paired run
(:func:`repro.groups.churn.run_paired_churn`): a patched group that
grafts/prunes its plan and a twin that replans on every change.  The
pairing is exact -- both sides share the topology, the stream, and the
network -- so the reported replan fraction and patched-vs-fresh cost
ratio are measured, not sampled.

One curve per (scheme, group size), replan fraction over churn rate.
Per-point ``meta`` carries the delivery-identity verdict, the legality
verify count, the cost ratios, the switch multicast-table stats (charged
to switch-based schemes only), and the run's replayable digest -- the
acceptance surface for the repair layer's <=20%-replans contract.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, Series
from repro.experiments.config import Profile
from repro.experiments.runner import Cell, derive_seed, execute_cells
from repro.params import SimParams

EXP_ID = "group-churn"

SCHEMES = ("ni", "tree", "path")
RATES = (0.25, 0.5, 1.0)
QUICK_SIZES = (4, 8)
FULL_SIZES = (4, 8, 16)
QUICK_STEPS = 40
FULL_STEPS = 120

QUALITY_BOUND = 1.5
TABLE_CAPACITY = 8
TABLE_POLICY = "lru"


def run(profile: Profile, base: SimParams | None = None) -> ExperimentResult:
    base = base or SimParams()
    full = profile.name == "full"
    sizes = FULL_SIZES if full else QUICK_SIZES
    steps = FULL_STEPS if full else QUICK_STEPS
    knobs = (
        ("steps", steps),
        ("quality_bound", QUALITY_BOUND),
        ("table_capacity", TABLE_CAPACITY),
        ("table_policy", TABLE_POLICY),
    )
    cells = [
        Cell(
            kind="churn",
            exp_id=EXP_ID,
            params=base,
            scheme=scheme,
            coords=(("size", size), ("rate", rate)),
            knobs=knobs,
            # Scheme excluded from the seed key (the pairing rule): every
            # scheme repairs through the identical topology + churn stream.
            seed=derive_seed(profile.seed, EXP_ID, size, rate),
        )
        for scheme in SCHEMES
        for size in sizes
        for rate in RATES
    ]
    values = execute_cells(cells)
    series = []
    i = 0
    for scheme in SCHEMES:
        for size in sizes:
            block = values[i:i + len(RATES)]
            i += len(RATES)
            series.append(
                Series(
                    label=f"{scheme} size={size}",
                    x=[float(r) for r in RATES],
                    y=[v["patched"]["replan_fraction"] for v in block],
                    meta={
                        "scheme": scheme,
                        "size": size,
                        "points": [
                            {
                                "rate": rate,
                                "events": v["events"],
                                "delivery_identical": v["delivery_identical"],
                                "verify_failures": v["verify_failures"],
                                "patched": v["patched"],
                                "twin_replans": v["twin_replans"],
                                "max_cost_ratio": v["max_cost_ratio"],
                                "mean_cost_ratio": v["mean_cost_ratio"],
                                "tables": v.get("tables"),
                                "digest": v["digest"],
                            }
                            for rate, v in zip(RATES, block)
                        ],
                    },
                )
            )
    return ExperimentResult(
        exp_id=EXP_ID,
        title=(
            "Dynamic-group churn: replan fraction under incremental repair "
            "(patched vs replan-every-change, paired by seed)"
        ),
        x_label="churn rate (events/step)",
        y_label="replan fraction of membership changes",
        series=series,
    )
