"""E3 / Figure 8: effect of message length on single-multicast latency.

Messages longer than one 128-flit packet are split into packets.  Under the
path-based scheme a phase ends only when the *whole* message has reached an
intermediate destination's host; under FPFS the NI forwards each packet the
moment it arrives, so the NI-based scheme gains with message length and
overtakes the path-based scheme at a few hundred flits.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, single_multicast_sweep
from repro.experiments.config import Profile
from repro.params import SimParams

MESSAGE_FLITS = (128, 256, 512, 1024)


def run(profile: Profile, base: SimParams | None = None) -> ExperimentResult:
    base = base or SimParams()
    variants = {
        f"{flits}f": base.replace(message_packets=flits // base.packet_flits)
        for flits in MESSAGE_FLITS
    }
    return single_multicast_sweep(
        "fig08",
        "Effect of message length on single multicast latency",
        variants,
        profile,
    )
