"""Markdown report generation for experiment runs.

``repro-experiments report`` runs a set of experiments and writes a single
self-contained markdown document: per-experiment data tables plus ASCII
charts, with the run's profile and parameter provenance recorded -- the
artifact you attach to a reproduction claim.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass

from repro.experiments.base import ExperimentResult
from repro.experiments.config import PROFILES, Profile
from repro.experiments.registry import EXPERIMENTS, PAPER_FIGURES
from repro.params import DEFAULT_PARAMS


@dataclass(frozen=True)
class ReportSection:
    """One experiment's rendered contribution to the report."""

    exp_id: str
    result: ExperimentResult
    elapsed_s: float


def run_report_sections(
    exp_ids: list[str], profile: Profile
) -> list[ReportSection]:
    """Run the named experiments, timing each."""
    sections = []
    for exp_id in exp_ids:
        if exp_id not in EXPERIMENTS:
            raise ValueError(f"unknown experiment {exp_id!r}")
        t0 = time.perf_counter()
        result = EXPERIMENTS[exp_id](profile)
        sections.append(ReportSection(exp_id, result, time.perf_counter() - t0))
    return sections


def _chart_block(result: ExperimentResult) -> str:
    """Chart the result if its series share an x grid; else note why not."""
    from repro.visual.ascii import ascii_xy_chart

    xs = result.series[0].x if result.series else []
    plottable = [s for s in result.series if s.x == xs]
    if len(plottable) < 2 or len(plottable) > 12:
        return ""
    try:
        chart = ascii_xy_chart(plottable, height=12)
    except ValueError:
        return ""
    return f"\n```\n{chart}\n```\n"


def render_report(
    sections: list[ReportSection], profile: Profile
) -> str:
    """Assemble the markdown document."""
    p = DEFAULT_PARAMS
    lines = [
        "# Reproduction report",
        "",
        "Paper: *Where to Provide Support for Efficient Multicasting in "
        "Irregular Networks: Network Interface or Switch?* (ICPP 1998).",
        "",
        f"Profile: **{profile.name}** "
        f"({profile.n_topologies} topologies x "
        f"{profile.trials_per_topology} draws; load windows "
        f"{profile.load_duration} cycles).",
        "",
        f"Default parameters: {p.num_nodes} nodes / {p.num_switches} "
        f"switches x {p.ports_per_switch} ports; o_host={p.o_host}, "
        f"R={p.ratio_r:g}, packet={p.packet_flits} flits, I/O bus "
        f"{p.io_bus_flits_per_cycle} flits/cycle.",
        "",
    ]
    for sec in sections:
        marker = " (paper figure)" if sec.exp_id in PAPER_FIGURES else ""
        lines.append(f"## {sec.exp_id}{marker}: {sec.result.title}")
        lines.append("")
        lines.append("```")
        lines.append(sec.result.to_table())
        lines.append("```")
        chart = _chart_block(sec.result)
        if chart:
            lines.append(chart)
        lines.append(f"_(regenerated in {sec.elapsed_s:.1f}s)_")
        lines.append("")
    return "\n".join(lines)


def write_report(
    path: str | pathlib.Path,
    exp_ids: list[str] | None = None,
    profile: Profile | str = "quick",
) -> pathlib.Path:
    """Run experiments and write the markdown report; returns the path."""
    if isinstance(profile, str):
        profile = PROFILES[profile]
    ids = exp_ids if exp_ids is not None else list(PAPER_FIGURES)
    sections = run_report_sections(ids, profile)
    out = pathlib.Path(path)
    out.write_text(render_report(sections, profile))
    return out
