"""MPI-flavoured facade over the simulated collectives.

The paper motivates multicast by "the inclusion of several primitives for
collective communication in the Message Passing Interface (MPI) standard";
this module closes the loop by exposing the simulated system through
MPI-style names, so a user can ask directly "what does MPI_Bcast cost on
this network with NI-based vs switch-based multicast support?".

All calls *start* the collective and return its
:class:`~repro.collectives.CollectiveResult`; run the network
(``comm.run()``) to completion to read latencies.  One communicator spans
every node of the network (sub-communicators are just
:class:`~repro.collectives.groups.MulticastGroup` instances).
"""

from __future__ import annotations

from repro.collectives import (
    CollectiveResult,
    allreduce,
    barrier,
    broadcast,
    gather_to_root,
    reduce_to_root,
    scatter_from_root,
)
from repro.collectives.groups import GroupManager
from repro.sim.network import SimNetwork


class Communicator:
    """All-node communicator bound to one simulated network."""

    def __init__(self, net: SimNetwork, multicast_scheme: str = "tree",
                 **scheme_kw) -> None:
        self.net = net
        self.multicast_scheme = multicast_scheme
        self.scheme_kw = scheme_kw
        self.groups = GroupManager(net, default_scheme=multicast_scheme)

    @property
    def size(self) -> int:
        """Number of ranks (= nodes)."""
        return self.net.topo.num_nodes

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise ValueError(f"root {root} out of range")

    # ------------------------------------------------------------------
    # Collectives (MPI names)
    # ------------------------------------------------------------------
    def bcast(self, root: int = 0) -> CollectiveResult:
        """MPI_Bcast: one-to-all broadcast via the configured multicast."""
        self._check_root(root)
        return broadcast(
            self.net, root, self.multicast_scheme, **self.scheme_kw
        )

    def barrier(self, root: int = 0) -> CollectiveResult:
        """MPI_Barrier: gather tokens at the root, multicast the release."""
        self._check_root(root)
        return barrier(self.net, root, self.multicast_scheme, **self.scheme_kw)

    def reduce(self, root: int = 0) -> CollectiveResult:
        """MPI_Reduce: combining binomial gather tree to the root."""
        self._check_root(root)
        return reduce_to_root(self.net, root)

    def allreduce(self, root: int = 0) -> CollectiveResult:
        """MPI_Allreduce: reduce then broadcast."""
        self._check_root(root)
        return allreduce(
            self.net, root, self.multicast_scheme, **self.scheme_kw
        )

    def gather(self, root: int = 0) -> CollectiveResult:
        """MPI_Gather: direct (non-combining) all-to-one."""
        self._check_root(root)
        return gather_to_root(self.net, root)

    def scatter(self, root: int = 0) -> CollectiveResult:
        """MPI_Scatter: personalised one-to-all (root-serialised)."""
        self._check_root(root)
        return scatter_from_root(self.net, root)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Drain the event engine (complete all started collectives)."""
        self.net.run()

    def time(self, op_name: str, root: int = 0) -> float:
        """Start one collective, run to completion, return its latency."""
        op = getattr(self, op_name, None)
        if op is None or op_name.startswith("_") or op_name in ("run", "time"):
            raise ValueError(f"unknown collective {op_name!r}")
        result = op(root)
        self.run()
        return result.latency
