"""Source discovery: collecting, parsing, naming, and scoping files.

The engine hands rules pre-parsed files.  Two pieces of derived metadata
matter to rules:

* the **module name** (``repro.sim.engine``) -- used by the import-cycle
  rule to resolve ``from repro.experiments import fig06_ratio`` to the
  submodule rather than to the package ``__init__``;
* the **scope** -- the sub-package under ``repro`` a file belongs to
  (``sim``, ``routing``, ...), which gates the determinism rules.  Files
  outside any recognisable package (test fixtures, loose scripts) get scope
  ``None``, which means *every* rule applies.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass

from repro.lint.registry import SIM_SCOPES


@dataclass(frozen=True)
class ParsedFile:
    """One syntactically valid python file ready for rule visits."""

    path: str
    module: str
    scope: str | None
    tree: ast.Module
    source: str


def collect_py_files(paths: list[pathlib.Path]) -> list[pathlib.Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: dict[pathlib.Path, None] = {}
    for p in paths:
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                seen.setdefault(f.resolve(), None)
        elif p.suffix == ".py":
            seen.setdefault(p.resolve(), None)
        else:
            raise FileNotFoundError(f"not a python file or directory: {p}")
    return sorted(seen)


def module_name(path: pathlib.Path, roots: list[pathlib.Path]) -> str:
    """Dotted module name of ``path``.

    Files under a ``repro`` package directory are named from it
    (``repro.sim.engine``); other files are named relative to the scan root
    they came from, so fixture trees get consistent resolvable names too.
    """
    parts = path.with_suffix("").parts
    if "repro" in parts:
        i = len(parts) - 1 - parts[::-1].index("repro")
        dotted = parts[i:]
    else:
        dotted = parts[-1:]
        for root in roots:
            try:
                rel = path.with_suffix("").resolve().relative_to(root.resolve())
            except ValueError:
                continue
            dotted = rel.parts if rel.parts else dotted
            break
    if dotted and dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


def scope_of(path: pathlib.Path) -> str | None:
    """Sub-package of ``repro`` the file lives in, or None if unknown.

    ``""`` (directly inside ``repro/``) is a real scope: top-level modules
    like ``params.py`` are not simulation logic.  Directories *named* like a
    simulation package (``sim/``, ``routing/``...) count even outside a
    ``repro`` tree, so planted-violation fixtures land in scope.
    """
    parts = path.parts
    if "repro" in parts:
        i = len(parts) - 1 - parts[::-1].index("repro")
        rest = parts[i + 1:]
        return rest[0] if len(rest) > 1 else ""
    for part in parts[:-1]:
        if part in SIM_SCOPES:
            return part
    return None


def parse_file(
    path: pathlib.Path, roots: list[pathlib.Path]
) -> ParsedFile:
    """Parse one file (raises SyntaxError for the engine to report)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return ParsedFile(
        path=str(path),
        module=module_name(path, roots),
        scope=scope_of(path),
        tree=tree,
        source=source,
    )
