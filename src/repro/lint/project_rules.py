"""Whole-project rules: checks that need every scanned file at once."""

from __future__ import annotations

import ast

from repro.lint.findings import Finding, Severity
from repro.lint.registry import rule
from repro.lint.sources import ParsedFile


def _module_level_imports(tree: ast.Module) -> list[tuple[int, str, str | None]]:
    """(line, module, imported-name) for top-level runtime imports.

    Only direct module-body statements count: imports inside functions are
    deliberate cycle breakers, and imports under ``if`` guards (e.g.
    ``TYPE_CHECKING``) do not execute as part of the import graph we model.
    """
    out: list[tuple[int, str, str | None]] = []
    for node in tree.body:
        if isinstance(node, ast.Import):
            for a in node.names:
                out.append((node.lineno, a.name, None))
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for a in node.names:
                out.append((node.lineno, node.module, a.name))
    return out


def _resolve_deps(
    pf: ParsedFile, modules: dict[str, ParsedFile]
) -> dict[str, int]:
    """Scanned modules this file imports at module level -> import line.

    ``from pkg import name`` resolves to the submodule ``pkg.name`` when that
    submodule was scanned (importing a sibling through the package is not a
    dependency on everything the package ``__init__`` pulls in); otherwise it
    is a dependency on ``pkg`` itself.
    """
    deps: dict[str, int] = {}
    for line, mod, name in _module_level_imports(pf.tree):
        target = None
        if name is not None and f"{mod}.{name}" in modules:
            target = f"{mod}.{name}"
        elif mod in modules:
            target = mod
        if target is not None and target != pf.module:
            deps.setdefault(target, line)
    return deps


@rule(
    "import-cycle",
    kind="project",
    description="module-level import cycles across repro.* modules are banned",
    rationale=(
        "An import cycle forces import-order-dependent initialisation -- "
        "the code-level analogue of the routing cycles the CDG check "
        "forbids -- and breaks the layering (topology -> routing -> sim -> "
        "schemes -> experiments) the architecture relies on."
    ),
    severity=Severity.ERROR,
)
def check_import_cycles(files: dict[str, ParsedFile]) -> list[Finding]:
    modules = {pf.module: pf for pf in files.values()}
    deps = {m: _resolve_deps(pf, modules) for m, pf in modules.items()}

    # Tarjan SCC: every SCC with >1 module (or a self-edge) is one finding.
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    sccs: list[list[str]] = []

    def strongconnect(m: str) -> None:
        index[m] = low[m] = counter[0]
        counter[0] += 1
        stack.append(m)
        on_stack.add(m)
        for d in deps[m]:
            if d not in index:
                strongconnect(d)
                low[m] = min(low[m], low[d])
            elif d in on_stack:
                low[m] = min(low[m], index[d])
        if low[m] == index[m]:
            scc = []
            while True:
                n = stack.pop()
                on_stack.discard(n)
                scc.append(n)
                if n == m:
                    break
            sccs.append(scc)

    for m in sorted(deps):
        if m not in index:
            strongconnect(m)

    findings: list[Finding] = []
    for scc in sccs:
        if len(scc) < 2:
            continue
        members = sorted(scc)
        anchor = modules[members[0]]
        in_cycle = [d for d in deps[members[0]] if d in scc]
        line = deps[members[0]][in_cycle[0]] if in_cycle else 1
        findings.append(Finding(
            rule="import-cycle",
            severity=Severity.ERROR,
            path=anchor.path,
            line=line,
            col=0,
            message=(
                "module-level import cycle: " + " <-> ".join(members)
                + "; break it with a function-local import or by moving "
                "the shared definition down a layer"
            ),
        ))
    return findings
