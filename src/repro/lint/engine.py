"""Lint engine: orchestrates rules over files and model contexts.

Importing this module registers every built-in rule (the rule modules
register themselves on import).  :func:`run_lint` is the single entry point
the CLI and the tests share.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

# Importing the rule modules populates the registry.  The analyze bridge
# (repro.analyze.rules) also registers whole-program analyzers as lint
# rules, but is imported lazily in run_lint(): repro.analyze itself imports
# this package, so an eager import here would be circular.
import repro.lint.code_rules  # noqa: F401
import repro.lint.project_rules  # noqa: F401
from repro.lint.findings import Finding, Severity
from repro.lint.registry import CODE_RULES, PROJECT_RULES, rule_applies
from repro.lint.sources import ParsedFile, collect_py_files, parse_file
from repro.lint.suppress import (
    is_suppressed,
    parse_suppressions,
    statement_anchors,
)


class LintUsageError(Exception):
    """A bad input (e.g. an unloadable topology file), not a lint finding."""


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    contexts_checked: int = 0
    suppressed: int = 0

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0


def _run_code_rules(
    files: dict[str, ParsedFile], result: LintResult
) -> None:
    for pf in files.values():
        suppressions = parse_suppressions(pf.source)
        anchors = statement_anchors(pf.tree)
        for r in CODE_RULES.values():
            if not rule_applies(r, pf.scope):
                continue
            for finding in r.check(pf.tree, pf.path, pf.scope):
                if is_suppressed(
                    suppressions, finding.rule, finding.line, anchors
                ):
                    result.suppressed += 1
                else:
                    result.findings.append(finding)


def _run_project_rules(
    files: dict[str, ParsedFile], result: LintResult
) -> None:
    by_path_suppressions = {
        pf.path: parse_suppressions(pf.source) for pf in files.values()
    }
    by_path_anchors = {
        pf.path: statement_anchors(pf.tree) for pf in files.values()
    }
    for r in PROJECT_RULES.values():
        for finding in r.check(files):
            supp = by_path_suppressions.get(finding.path, {})
            if is_suppressed(
                supp, finding.rule, finding.line,
                by_path_anchors.get(finding.path),
            ):
                result.suppressed += 1
            else:
                result.findings.append(finding)


def run_lint(
    paths: list[pathlib.Path],
    *,
    run_model: bool = True,
    model_seeds: tuple[int, ...] = (1, 2, 3),
    topology_files: list[pathlib.Path] | None = None,
) -> LintResult:
    """Run every applicable rule; returns findings sorted by location.

    ``paths`` are files/directories for the code and project rules.  Model
    rules run over irregular topologies generated at ``model_seeds`` under
    the default parameters, plus any explicitly supplied topology JSON
    files.  Model imports stay lazy so source-only linting never pulls in
    the simulator.
    """
    # Registers the whole-program analyzer rules (taint, partition safety)
    # so one lint invocation runs both passes; see the module docstring for
    # why this import cannot be top-level.
    import repro.analyze.rules  # noqa: F401

    result = LintResult()
    files: dict[str, ParsedFile] = {}
    for path in collect_py_files(paths):
        try:
            pf = parse_file(path, roots=paths)
        except SyntaxError as exc:
            result.findings.append(Finding(
                rule="parse-error",
                severity=Severity.ERROR,
                path=str(path),
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"file does not parse: {exc.msg}",
            ))
            continue
        files[pf.path] = pf
    result.files_scanned = len(files)

    _run_code_rules(files, result)
    _run_project_rules(files, result)

    if run_model:
        from repro.lint.model_rules import context_from_topology, default_contexts
        from repro.lint.registry import MODEL_RULES

        contexts = default_contexts(model_seeds) if model_seeds else []
        for tf in topology_files or []:
            from repro.params import SimParams
            from repro.topology.serialization import load_topology

            try:
                topo = load_topology(tf)
            except (OSError, ValueError, KeyError, TypeError) as exc:
                raise LintUsageError(
                    f"cannot load topology {tf}: {exc}"
                ) from exc
            params = SimParams(
                num_nodes=topo.num_nodes,
                num_switches=topo.num_switches,
                ports_per_switch=topo.ports_per_switch,
            )
            contexts.append(context_from_topology(topo, params, tf.name))
        for ctx in contexts:
            for r in MODEL_RULES.values():
                result.findings.extend(r.check(ctx))
        result.contexts_checked = len(contexts)

    result.findings.sort(key=Finding.sort_key)
    return result
