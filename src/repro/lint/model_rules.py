"""Model rules: static verification of a topology + routing instance.

Where the code rules guard *how the simulator is written*, these guard
*what it simulates*: the structural invariants the paper's correctness
argument rests on.  Each rule receives a :class:`ModelContext` (topology,
up*/down* routing, reachability table, parameters) and returns findings
anchored to a synthetic ``<model:LABEL>`` path.

The rules, and the claim in the paper each one makes checkable:

* ``multicast-cdg-cycle`` -- "the directed links do not form loops": the
  channel dependency graph, *extended* with tree-worm replication branch
  sets and path-worm forking (all legal continuations, ordered branch
  acquisition), is acyclic.
* ``cdg-negative-control`` -- the checker itself detects the deadlock that
  unrestricted minimal routing seeds on cyclic topologies (a silent
  always-pass checker is worse than none).
* ``reachability-superset`` -- every down port's reachability bit string
  covers at least the BFS-tree descendants behind it (Section 3.2.3).
* ``path-plan-legality`` -- every MDP-LG plan decomposes into legal
  up*-prefix/down*-suffix worms covering each destination exactly once
  (Sections 3.2.4, 4.2.3).
* ``header-capacity`` -- the tree scheme's N-bit destination header fits
  the packet the parameters describe (Section 3.3's hardware-cost concern).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.lint.findings import Finding, Severity
from repro.lint.registry import rule
from repro.params import SimParams
from repro.routing.deadlock import (
    build_multicast_cdg,
    build_unrestricted_cdg,
    find_cycle,
)
from repro.routing.reachability import ReachabilityTable
from repro.routing.updown import UpDownRouting
from repro.topology.graph import NetworkTopology

FLIT_BITS = 8
"""The paper's 1-byte flits."""


@dataclass(frozen=True)
class ModelContext:
    """One loaded system instance for the model rules to verify."""

    label: str
    params: SimParams
    topo: NetworkTopology
    routing: UpDownRouting
    reach: ReachabilityTable

    @property
    def path(self) -> str:
        return f"<model:{self.label}>"


class _PlanView:
    """The (topo, routing) slice of SimNetwork that planners consult --
    enough to plan multicasts without building engine/fabric/hosts."""

    def __init__(self, ctx: ModelContext) -> None:
        self.topo = ctx.topo
        self.routing = ctx.routing


def context_from_topology(
    topo: NetworkTopology, params: SimParams, label: str
) -> ModelContext:
    """Build routing + reachability for a topology and wrap as a context."""
    routing = UpDownRouting.build(topo, orientation=params.routing_tree)
    return ModelContext(
        label=label,
        params=params,
        topo=topo,
        routing=routing,
        reach=ReachabilityTable.build(routing),
    )


def default_contexts(seeds: tuple[int, ...] = (1, 2, 3)) -> list[ModelContext]:
    """The shipped default: the paper's 32-node system at several seeds."""
    from repro.topology.irregular import generate_irregular_topology

    params = SimParams()
    return [
        context_from_topology(
            generate_irregular_topology(params, seed=s), params, f"seed{s}"
        )
        for s in seeds
    ]


def _model_finding(ctx: ModelContext, rule_id: str, message: str) -> Finding:
    return Finding(
        rule=rule_id,
        severity=Severity.ERROR,
        path=ctx.path,
        line=0,
        col=0,
        message=message,
    )


# ----------------------------------------------------------------------
# Extended CDG acyclicity
# ----------------------------------------------------------------------
@rule(
    "multicast-cdg-cycle",
    kind="model",
    description=(
        "the channel dependency graph extended with multicast replication "
        "and forking dependencies must be acyclic"
    ),
    rationale=(
        "Up*/down* unicast deadlock freedom does not automatically extend "
        "to worms that hold several branch channels at once; this check "
        "covers the replication dependencies tree and path worms add."
    ),
)
def check_multicast_cdg(ctx: ModelContext) -> list[Finding]:
    cycle = find_cycle(build_multicast_cdg(ctx.topo, ctx.routing))
    if cycle is None:
        return []
    return [_model_finding(
        ctx, "multicast-cdg-cycle",
        "multicast-extended channel dependency graph has a cycle: "
        + " -> ".join(map(str, cycle)),
    )]


@rule(
    "cdg-negative-control",
    kind="model",
    description=(
        "the cycle detector must flag unrestricted minimal routing on "
        "cyclic topologies (checker self-test)"
    ),
    rationale=(
        "A deadlock checker that cannot reproduce the known-bad case "
        "proves nothing when it passes; the unrestricted relation is the "
        "deadlock the up*/down* rule exists to prevent."
    ),
)
def check_cdg_negative_control(ctx: ModelContext) -> list[Finding]:
    spanning_edges = ctx.topo.num_switches - 1
    if len(ctx.topo.links) <= spanning_edges:
        return []  # tree topology: no cycle to seed, control does not apply
    if find_cycle(build_unrestricted_cdg(ctx.topo)) is not None:
        return []
    return [_model_finding(
        ctx, "cdg-negative-control",
        "cycle detector failed to flag unrestricted minimal routing on a "
        "cyclic topology -- the deadlock check is not actually checking",
    )]


# ----------------------------------------------------------------------
# Reachability strings vs. the BFS tree
# ----------------------------------------------------------------------
def _subtree_nodes(ctx: ModelContext) -> dict[int, set[int]]:
    """Nodes attached to each switch's BFS-tree subtree (inclusive)."""
    tree = ctx.routing.tree
    out: dict[int, set[int]] = {
        s: set(ctx.topo.nodes_on_switch(s))
        for s in range(ctx.topo.num_switches)
    }
    order = sorted(range(ctx.topo.num_switches),
                   key=lambda s: tree.level[s], reverse=True)
    for s in order:
        if tree.parent[s] >= 0:
            out[tree.parent[s]] |= out[s]
    return out


@rule(
    "reachability-superset",
    kind="model",
    description=(
        "every down port's reachability string must cover the BFS-tree "
        "descendants behind it"
    ),
    rationale=(
        "The tree scheme replicates a worm only onto down ports whose "
        "reachability string intersects the header; a string missing a "
        "descendant silently drops that destination (Section 3.2.3)."
    ),
)
def check_reachability_superset(ctx: ModelContext) -> list[Finding]:
    findings: list[Finding] = []
    subtree = _subtree_nodes(ctx)
    tree = ctx.routing.tree
    links_by_id = {lk.link_id: lk for lk in ctx.topo.links}
    for s in range(ctx.topo.num_switches):
        missing = subtree[s] - ctx.reach.down_reach(s)
        if missing:
            findings.append(_model_finding(
                ctx, "reachability-superset",
                f"switch {s}: down-reachability misses BFS descendants "
                f"{sorted(missing)}",
            ))
        parent = tree.parent[s]
        if parent < 0:
            continue
        link = links_by_id[tree.parent_link[s]]
        if ctx.routing.is_up_traversal(link, parent):
            findings.append(_model_finding(
                ctx, "reachability-superset",
                f"BFS tree link {link.link_id} (switch {parent} -> child "
                f"{s}) is oriented up -- the orientation contradicts the "
                "spanning tree",
            ))
            continue
        port_missing = subtree[s] - ctx.reach.port_reach(parent, link)
        if port_missing:
            findings.append(_model_finding(
                ctx, "reachability-superset",
                f"switch {parent} down port on link {link.link_id}: "
                f"reachability string misses subtree nodes "
                f"{sorted(port_missing)}",
            ))
    return findings


# ----------------------------------------------------------------------
# Path-worm plan legality
# ----------------------------------------------------------------------
@rule(
    "path-plan-legality",
    kind="model",
    description=(
        "MDP-LG multicast plans must decompose into legal up*/down* worms "
        "covering each destination exactly once"
    ),
    rationale=(
        "A path worm that goes up after down, or a phase schedule that "
        "skips or duplicates a destination, voids both the deadlock "
        "argument and the latency comparison of Figures 6-11."
    ),
)
def check_path_plan_legality(ctx: ModelContext) -> list[Finding]:
    from repro.multicast.pathworm import plan_path_worms, verify_plan

    findings: list[Finding] = []
    view = _PlanView(ctx)
    rng = random.Random(0xC0FFEE)
    n = ctx.topo.num_nodes
    sizes = [k for k in (4, 8, n // 2) if 0 < k < n]
    for source in (0, n // 2):
        for k in sizes:
            dests = rng.sample([d for d in range(n) if d != source], k)
            for strategy in ("lg", "greedy"):
                plan = plan_path_worms(view, source, dests, strategy=strategy)
                for problem in verify_plan(
                    ctx.topo, ctx.routing, source, dests, plan
                ):
                    findings.append(_model_finding(
                        ctx, "path-plan-legality",
                        f"plan(src={source}, |D|={k}, {strategy}): {problem}",
                    ))
    return findings


# ----------------------------------------------------------------------
# Header capacity
# ----------------------------------------------------------------------
@rule(
    "header-capacity",
    kind="model",
    description=(
        "the tree scheme's bit-string destination header must fit the "
        "configured packet"
    ),
    rationale=(
        "Section 3.3: the bit-string header carries one bit per node plus "
        "a source id; with 1-byte flits it must leave at least one payload "
        "flit in the packet, or the encoding the scheme assumes cannot "
        "exist in hardware."
    ),
)
def check_header_capacity(ctx: ModelContext) -> list[Finding]:
    p = ctx.params
    node_id_bits = max(1, math.ceil(math.log2(p.num_nodes)))
    header_bits = p.num_nodes + node_id_bits
    header_flits = math.ceil(header_bits / FLIT_BITS)
    if header_flits < p.packet_flits:
        return []
    return [_model_finding(
        ctx, "header-capacity",
        f"bit-string header needs {header_flits} flits "
        f"({p.num_nodes} destination bits + {node_id_bits} source-id bits "
        f"at {FLIT_BITS} bits/flit) but packets are only "
        f"{p.packet_flits} flits -- no room for payload",
    )]
