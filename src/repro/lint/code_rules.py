"""Per-file AST rules: the simulator-determinism and hygiene checks.

Each rule is a function ``(tree, path, scope) -> list[Finding]`` registered
with :func:`repro.lint.registry.rule`.  The determinism rules are scoped to
the simulation packages (:data:`~repro.lint.registry.SIM_SCOPES`): the
figures of the paper are only reproducible if every source of randomness in
``sim``/``routing``/``multicast``/``traffic`` is a seeded ``random.Random``
threaded explicitly, and no simulated quantity ever reads the host clock.
"""

from __future__ import annotations

import ast
import re

from repro.lint.findings import Finding, Severity
from repro.lint.registry import SIM_SCOPES, rule

# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------


def _dotted(node: ast.AST) -> str | None:
    """Render an attribute/name chain like ``datetime.datetime.now``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _random_aliases(tree: ast.Module) -> tuple[set[str], dict[str, str]]:
    """Names bound to the ``random`` module / names imported from it."""
    module_aliases: set[str] = set()
    member_names: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                if a.name == "random":
                    module_aliases.add(a.asname or a.name)
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            for a in node.names:
                member_names[a.asname or a.name] = a.name
    return module_aliases, member_names


def _finding(rule_id: str, path: str, node: ast.AST, message: str,
             severity: Severity = Severity.ERROR) -> Finding:
    return Finding(
        rule=rule_id,
        severity=severity,
        path=path,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
        message=message,
    )


# ----------------------------------------------------------------------
# unseeded-random
# ----------------------------------------------------------------------
@rule(
    "unseeded-random",
    kind="code",
    description=(
        "module-level random.* calls and unseeded random.Random() are "
        "banned in simulation code; thread a seeded rng instead"
    ),
    rationale=(
        "Figures 6-11 are averages over seeded topology and traffic draws; "
        "any draw from the process-global RNG (or an unseeded Random) makes "
        "a run irreproducible and invalidates cross-scheme comparisons."
    ),
    scopes=SIM_SCOPES,
)
def check_unseeded_random(tree: ast.Module, path: str, scope: str | None):
    findings = []
    module_aliases, member_names = _random_aliases(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        target: str | None = None
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in module_aliases
        ):
            target = func.attr
        elif isinstance(func, ast.Name) and func.id in member_names:
            target = member_names[func.id]
        if target is None:
            continue
        if target == "Random":
            if not node.args and not node.keywords:
                findings.append(_finding(
                    "unseeded-random", path, node,
                    "random.Random() without a seed; pass an explicit seed "
                    "so the simulation stream is reproducible",
                ))
        elif target == "SystemRandom":
            findings.append(_finding(
                "unseeded-random", path, node,
                "random.SystemRandom() is inherently non-reproducible; "
                "use a seeded random.Random",
            ))
        else:
            findings.append(_finding(
                "unseeded-random", path, node,
                f"random.{target}() draws from the process-global RNG; "
                "thread a seeded random.Random through the call chain",
            ))
    return findings


# ----------------------------------------------------------------------
# wall-clock
# ----------------------------------------------------------------------
_WALL_SUFFIXES = (
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "date.today",
)


@rule(
    "wall-clock",
    kind="code",
    description=(
        "time.time()/datetime.now() wall-clock reads are banned; use "
        "time.perf_counter() for timing and the engine clock for sim time"
    ),
    rationale=(
        "Simulated latency is measured in switch cycles; a wall-clock read "
        "leaking into model code couples results to host speed, and even "
        "report timing should use the monotonic perf_counter (time.time() "
        "can step backwards under NTP adjustment)."
    ),
    scopes=None,
)
def check_wall_clock(tree: ast.Module, path: str, scope: str | None):
    findings = []
    imported_wall: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for a in node.names:
                if a.name in ("time", "time_ns"):
                    imported_wall.add(a.asname or a.name)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _dotted(node.func)
        hit = name is not None and (
            name in imported_wall
            or any(
                name == suffix or name.endswith("." + suffix)
                for suffix in _WALL_SUFFIXES
            )
        )
        if hit:
            findings.append(_finding(
                "wall-clock", path, node,
                f"wall-clock read {name}(); use time.perf_counter() for "
                "elapsed-time measurement or the simulation engine clock "
                "for model time",
            ))
    return findings


# ----------------------------------------------------------------------
# blanket-except
# ----------------------------------------------------------------------
_LOGGING_ATTRS = {
    "debug", "info", "warning", "error", "exception", "critical", "log",
    "print_exc", "print_exception",
}


def _handler_surfaces_error(handler: ast.ExceptHandler) -> bool:
    """Does the handler body re-raise, log, or print the failure?"""
    for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "print":
                return True
            if isinstance(func, ast.Attribute) and func.attr in _LOGGING_ATTRS:
                return True
    return False


def _names_in_except_type(expr: ast.AST | None) -> list[str]:
    if expr is None:
        return []
    exprs = expr.elts if isinstance(expr, ast.Tuple) else [expr]
    out = []
    for e in exprs:
        name = _dotted(e)
        if name is not None:
            out.append(name.rsplit(".", 1)[-1])
    return out


@rule(
    "blanket-except",
    kind="code",
    description=(
        "bare except / except Exception must re-raise, log, or print; "
        "silent swallows hide broken invariants"
    ),
    rationale=(
        "A swallowed exception can silently turn a deadlock-check or "
        "routing failure into a wrong data point; the paper's conclusions "
        "ride on every run either completing correctly or failing loudly."
    ),
    scopes=None,
)
def check_blanket_except(tree: ast.Module, path: str, scope: str | None):
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        names = _names_in_except_type(node.type)
        blanket = node.type is None or any(
            n in ("Exception", "BaseException") for n in names
        )
        if blanket and not _handler_surfaces_error(node):
            what = "bare except:" if node.type is None else f"except {'/'.join(names)}"
            findings.append(_finding(
                "blanket-except", path, node,
                f"{what} swallows the error silently; narrow the exception "
                "type, or re-raise / log / print the failure",
            ))
    return findings


# ----------------------------------------------------------------------
# float-time-eq
# ----------------------------------------------------------------------
_TIMEISH = re.compile(
    r"(?:^|_)(t|t0|t1|t2|time|times|timestamp|timestamps|now|clock|"
    r"latency|latencies|arrival|arrivals|elapsed|deadline)(?:_|$)"
)


def _timeish_operand(node: ast.AST) -> str | None:
    """Identifier of a timestamp-like operand, if this expression is one."""
    if isinstance(node, ast.Name):
        ident = node.id
    elif isinstance(node, ast.Attribute):
        ident = node.attr
    elif isinstance(node, ast.Call):
        name = _dotted(node.func)
        if name is not None and name.rsplit(".", 1)[-1] in (
            "now", "perf_counter", "monotonic"
        ):
            return name
        return None
    else:
        return None
    return ident if _TIMEISH.search(ident.lower()) else None


@rule(
    "float-time-eq",
    kind="code",
    description=(
        "== / != on simulated timestamps is banned; compare with a "
        "tolerance or use event ordering"
    ),
    rationale=(
        "Simulated completion times are floats (I/O-bus transfers divide by "
        "2.66 flits/cycle); exact equality silently flips with summation "
        "order, which is exactly the class of nondeterminism the CDG and "
        "timing invariants are meant to exclude."
    ),
    scopes=SIM_SCOPES,
)
def check_float_time_eq(tree: ast.Module, path: str, scope: str | None):
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        for operand in [node.left, *node.comparators]:
            ident = _timeish_operand(operand)
            if ident is not None:
                findings.append(_finding(
                    "float-time-eq", path, node,
                    f"equality comparison on timestamp-like value "
                    f"{ident!r}; use an explicit tolerance "
                    "(abs(a - b) < eps) or compare event order",
                ))
                break
    return findings


# ----------------------------------------------------------------------
# mutable-default
# ----------------------------------------------------------------------
_MUTABLE_CTORS = {"list", "dict", "set", "defaultdict", "OrderedDict", "deque"}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        return name is not None and name.rsplit(".", 1)[-1] in _MUTABLE_CTORS
    return False


@rule(
    "mutable-default",
    kind="code",
    description="mutable default argument values are banned (use None)",
    rationale=(
        "A mutable default is shared across calls: state from one simulated "
        "message leaks into the next, the classic source of "
        "order-dependent, irreproducible results."
    ),
    scopes=None,
)
def check_mutable_default(tree: ast.Module, path: str, scope: str | None):
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                findings.append(_finding(
                    "mutable-default", path, default,
                    f"mutable default argument in {node.name}(); default to "
                    "None and create the object inside the function",
                ))
    return findings
