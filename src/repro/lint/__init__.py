"""Static analysis for simulator determinism and up*/down* model invariants.

Two rule families, one engine:

* **code rules** (AST): seeded-randomness, wall-clock, blanket-except,
  float-timestamp-equality, mutable-default, import-cycle checks over the
  simulation packages -- the hazards that silently break reproducibility of
  the paper's figures;
* **model rules** (semantic): extended channel-dependency-graph acyclicity,
  reachability-string/BFS-tree consistency, path-plan up*/down* legality,
  and header-capacity checks over generated or saved topologies -- the
  invariants the paper's correctness argument names.

Run ``python -m repro.lint src/repro`` (or the ``repro-lint`` script);
suppress a finding in place with ``# lint: disable=<rule-id>``.
"""

from repro.lint.engine import LintResult, run_lint
from repro.lint.findings import Finding, Severity
from repro.lint.registry import all_rules

__all__ = ["Finding", "LintResult", "Severity", "all_rules", "run_lint"]
