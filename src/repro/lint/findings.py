"""Finding and severity types shared by every lint rule."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How a finding affects the exit status.

    ``ERROR`` findings fail the run; ``WARNING`` findings are reported but
    do not change the exit code.
    """

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    ``path`` is the file the finding anchors to; model-rule findings use the
    synthetic path ``<model:LABEL>`` naming the topology context instead, with
    line 0.
    """

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity.value}: {self.message}"
        )

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
