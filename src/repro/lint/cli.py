"""Command-line entry point: ``repro-lint`` / ``python -m repro.lint``.

Examples::

    repro-lint src/repro
    repro-lint src/repro --json
    repro-lint src/repro --no-model
    repro-lint src/repro --topology topo.json --model-seeds 1,2,3,4
    repro-lint --list-rules

Exit status: 0 when no error-severity findings, 1 when there are findings,
2 on usage errors.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.lint.engine import LintUsageError, run_lint
from repro.lint.report import render_json, render_rule_list, render_text


def _parse_seeds(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(s) for s in text.split(",") if s.strip())
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"seeds must be comma-separated integers: {text!r}"
        ) from exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static analysis for simulator determinism and up*/down* "
            "model invariants."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON report"
    )
    parser.add_argument(
        "--no-model",
        action="store_true",
        help="skip the topology/routing model rules (code rules only)",
    )
    parser.add_argument(
        "--model-seeds",
        type=_parse_seeds,
        default=(1, 2, 3),
        metavar="S1,S2,...",
        help="topology seeds the model rules verify (default: 1,2,3)",
    )
    parser.add_argument(
        "--topology",
        action="append",
        default=[],
        metavar="FILE",
        help="also run model rules on a saved topology JSON (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe every rule and its rationale, then exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rule_list())
        return 0

    paths = [pathlib.Path(p) for p in args.paths]
    if not paths:
        default = pathlib.Path("src/repro")
        if not default.is_dir():
            print(
                "no paths given and ./src/repro does not exist",
                file=sys.stderr,
            )
            return 2
        paths = [default]
    for p in paths:
        if not p.exists():
            print(f"no such file or directory: {p}", file=sys.stderr)
            return 2

    try:
        result = run_lint(
            paths,
            run_model=not args.no_model,
            model_seeds=args.model_seeds,
            topology_files=[pathlib.Path(t) for t in args.topology],
        )
    except (FileNotFoundError, LintUsageError) as exc:
        print(str(exc), file=sys.stderr)
        return 2

    print(render_json(result) if args.json else render_text(result))
    return result.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
