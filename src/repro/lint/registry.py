"""Rule registry: every lint rule declares itself here.

Three rule kinds exist, distinguished by what they inspect:

* ``code`` rules visit one file's AST at a time (the determinism rules);
* ``project`` rules see every scanned file at once (import cycles);
* ``model`` rules inspect a loaded topology + routing rather than source
  text (the paper's structural invariants).

Registration happens at import time of the rule modules; the engine imports
them and iterates the registry, so adding a rule is one decorated function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.lint.findings import Severity

SIM_SCOPES = frozenset(
    {"sim", "routing", "multicast", "traffic", "fuzz", "chaos", "shard",
     "groups", "workloads"}
)
"""Sub-packages of ``repro`` that constitute simulation logic: the scope of
the determinism-critical rules (seeded randomness, no wall clock, no float
timestamp equality)."""


@dataclass(frozen=True)
class Rule:
    """Metadata + implementation of one lint rule."""

    rule_id: str
    kind: str
    """``code`` | ``project`` | ``model``."""

    severity: Severity
    description: str
    rationale: str
    """Why the rule exists, tied to the paper's invariants."""

    scopes: frozenset[str] | None
    """Sub-packages the rule applies to (None = everywhere).  A file whose
    scope cannot be determined (e.g. a loose fixture file) gets every rule."""

    check: Callable
    """code: (tree, path, scope) -> list[Finding];
    project: (files: dict[str, ParsedFile]) -> list[Finding];
    model: (ctx: ModelContext) -> list[Finding]."""


CODE_RULES: dict[str, Rule] = {}
PROJECT_RULES: dict[str, Rule] = {}
MODEL_RULES: dict[str, Rule] = {}

_KIND_TABLE = {"code": CODE_RULES, "project": PROJECT_RULES, "model": MODEL_RULES}


def rule(
    rule_id: str,
    kind: str,
    description: str,
    rationale: str,
    severity: Severity = Severity.ERROR,
    scopes: frozenset[str] | None = None,
) -> Callable:
    """Decorator registering a check function as a lint rule."""
    table = _KIND_TABLE[kind]

    def wrap(fn: Callable) -> Callable:
        if rule_id in all_rules():
            raise ValueError(f"duplicate rule id {rule_id!r}")
        table[rule_id] = Rule(
            rule_id=rule_id,
            kind=kind,
            severity=severity,
            description=description,
            rationale=rationale,
            scopes=scopes,
            check=fn,
        )
        return fn

    return wrap


def all_rules() -> dict[str, Rule]:
    """Every registered rule by id (rule modules must be imported first)."""
    out: dict[str, Rule] = {}
    for table in _KIND_TABLE.values():
        out.update(table)
    return out


def rule_applies(r: Rule, scope: str | None) -> bool:
    """Scope filter: unknown scopes get every rule (fixtures, loose files)."""
    return r.scopes is None or scope is None or scope in r.scopes
