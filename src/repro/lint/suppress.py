"""Per-line lint suppressions: ``# lint: disable=<rule>[,<rule>...]``.

A finding is suppressed when the line it anchors to carries a disable
comment naming its rule id (or ``all``).  Suppressions are deliberately
line-scoped -- a file- or block-scoped escape hatch would make it too easy
to turn a rule off wholesale and lose the invariant it guards.
"""

from __future__ import annotations

import re

_DISABLE_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\-\s]+)")


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the rule ids disabled on that line."""
    out: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _DISABLE_RE.search(line)
        if m:
            rules = frozenset(
                r.strip() for r in m.group(1).split(",") if r.strip()
            )
            if rules:
                out[lineno] = rules
    return out


def is_suppressed(
    suppressions: dict[int, frozenset[str]], rule_id: str, line: int
) -> bool:
    """Whether ``rule_id`` is disabled on ``line``."""
    rules = suppressions.get(line)
    return rules is not None and (rule_id in rules or "all" in rules)
