"""Per-line lint suppressions: ``# lint: disable=<rule>[,<rule>] [-- why]``.

A finding is suppressed when a disable comment naming its rule id (or
``all``) sits on the line the finding anchors to **or** on the first
physical line of the statement containing that line.  The second form is
what makes multi-line statements suppressible: a rule may anchor its
finding to the inner line holding the offending expression, while the
natural home for the comment is the statement's opening line.

Suppressions stay statement-scoped -- a file- or block-scoped escape hatch
would make it too easy to turn a rule off wholesale and lose the invariant
it guards.

An optional justification follows the rule list after `` -- ``::

    full_key = (id(net), epoch, key)  # lint: disable=identity-in-sim -- key dies with net

The analyzer front door (``repro-analyze``) *requires* the justification
for its own rules; bare suppressions of analyze rules are themselves
findings (``unjustified-suppression``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

_DISABLE_RE = re.compile(r"#\s*lint:\s*disable=(.*)$")


@dataclass(frozen=True)
class Suppression:
    """One disable comment: the rules it silences and its justification."""

    rules: frozenset[str]
    justification: str | None


def _parse_payload(payload: str) -> Suppression | None:
    head, sep, why = payload.partition(" -- ")
    rules = frozenset(r.strip() for r in head.split(",") if r.strip())
    if not rules:
        return None
    return Suppression(
        rules=rules,
        justification=why.strip() if sep and why.strip() else None,
    )


def parse_suppression_comments(source: str) -> dict[int, Suppression]:
    """Map 1-based line numbers to the full suppression on that line."""
    out: dict[int, Suppression] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _DISABLE_RE.search(line)
        if m:
            supp = _parse_payload(m.group(1))
            if supp is not None:
                out[lineno] = supp
    return out


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the rule ids disabled on that line."""
    return {
        lineno: supp.rules
        for lineno, supp in parse_suppression_comments(source).items()
    }


def statement_anchors(tree: ast.Module) -> dict[int, int]:
    """Map every physical line to the first line of its innermost statement.

    "Innermost" is the covering statement with the greatest first line, so a
    line inside a function body maps to its own statement, not to the whole
    ``def``.
    """
    anchors: dict[int, int] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        end = getattr(node, "end_lineno", None) or node.lineno
        for line in range(node.lineno, end + 1):
            prev = anchors.get(line)
            if prev is None or node.lineno > prev:
                anchors[line] = node.lineno
    return anchors


def is_suppressed(
    suppressions: dict[int, frozenset[str]],
    rule_id: str,
    line: int,
    anchors: dict[int, int] | None = None,
) -> bool:
    """Whether ``rule_id`` is disabled on ``line``.

    With ``anchors`` (from :func:`statement_anchors`), a disable comment on
    the first line of the statement containing ``line`` also counts.
    """
    candidates = [line]
    if anchors is not None:
        first = anchors.get(line)
        if first is not None and first != line:
            candidates.append(first)
    for cand in candidates:
        rules = suppressions.get(cand)
        if rules is not None and (rule_id in rules or "all" in rules):
            return True
    return False
