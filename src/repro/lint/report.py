"""Rendering lint results for humans and for machines (``--json``)."""

from __future__ import annotations

import json

from repro.lint.engine import LintResult
from repro.lint.findings import Severity
from repro.lint.registry import all_rules


def render_text(result: LintResult) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [f.render() for f in result.findings]
    n_err = len(result.errors)
    n_warn = len(result.findings) - n_err
    summary = (
        f"{result.files_scanned} file(s), "
        f"{result.contexts_checked} model context(s): "
        f"{n_err} error(s), {n_warn} warning(s)"
    )
    if result.suppressed:
        summary += f", {result.suppressed} suppressed"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Stable machine-readable report for CI consumption."""
    payload = {
        "version": 1,
        "files_scanned": result.files_scanned,
        "contexts_checked": result.contexts_checked,
        "suppressed": result.suppressed,
        "counts": {
            "error": len(result.errors),
            "warning": sum(
                1 for f in result.findings if f.severity is Severity.WARNING
            ),
        },
        "findings": [f.to_json() for f in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_list() -> str:
    """``--list-rules``: id, kind, scope, and the paper-tied rationale."""
    import repro.analyze.rules  # noqa: F401  (registers the analyzer rules)
    import repro.lint.model_rules  # noqa: F401  (registers the model rules)

    blocks = []
    for rule_id, r in sorted(all_rules().items()):
        scope = "all code" if r.scopes is None else "/".join(sorted(r.scopes))
        if r.kind == "model":
            scope = "topology+routing"
        blocks.append(
            f"{rule_id} [{r.kind}, {r.severity.value}, scope: {scope}]\n"
            f"  {r.description}\n"
            f"  why: {r.rationale}"
        )
    return "\n\n".join(blocks)
