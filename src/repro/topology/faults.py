"""Link-fault injection and reconfiguration support.

The paper motivates irregular topologies by exactly this: "using such
topologies allows easy addition and deletion of nodes ... making the overall
environment more amenable to network reconfigurations and resistant to
faults."  Autonet reconfigures by recomputing its spanning tree when links
fail.

Two fault models live in this library:

* **Static** (this module): links are failed *before* a run --
  :func:`degrade` picks removable links, and reconfiguration is simply
  building a new :class:`~repro.sim.network.SimNetwork` on the degraded
  topology (routing tables, reachability strings, and all multicast plans
  follow).
* **Runtime** (:mod:`repro.chaos`): links fail *mid-run* on a seeded
  schedule (drawn here by :func:`schedule_faults`); in-flight worms abort
  with a nack, the live network reconfigures in place via
  :meth:`~repro.sim.network.SimNetwork.reconfigure`, and a retry layer
  redelivers exactly-once on the new orientation.

The same static-vs-runtime split applies to multicast *destinations*:
the experiments above multicast to destination sets fixed for the whole
run, while :mod:`repro.groups` lets membership churn mid-run (joins and
leaves patch the installed plan in place).  The two axes compose -- a
runtime fault bumps the routing epoch, which invalidates a dynamic
group's patched plan but never its membership.
"""

from __future__ import annotations

import random

from repro.topology.graph import NetworkTopology


def remove_link(topo: NetworkTopology, link_id: int) -> NetworkTopology:
    """A copy of the topology with one switch-switch link failed.

    The freed ports stay open (as after a physical cable failure).  Raises
    ``ValueError`` for unknown ids or when removal would disconnect the
    switch graph (a disconnected network cannot be reconfigured around).
    """
    links = [lk for lk in topo.links if lk.link_id != link_id]
    if len(links) == len(topo.links):
        raise ValueError(f"no link with id {link_id}")
    degraded = NetworkTopology(
        num_switches=topo.num_switches,
        ports_per_switch=topo.ports_per_switch,
        node_attachment=list(topo.node_attachment),
        links=links,
    )
    if not degraded.is_connected():
        raise ValueError(
            f"removing link {link_id} disconnects the network"
        )
    return degraded


def removable_links(topo: NetworkTopology) -> list[int]:
    """Ids of links whose individual failure keeps the network connected."""
    out = []
    for lk in topo.links:
        try:
            remove_link(topo, lk.link_id)
        except ValueError:
            continue
        out.append(lk.link_id)
    return out


def degrade(
    topo: NetworkTopology,
    n_failures: int,
    rng: random.Random | None = None,
) -> tuple[NetworkTopology, list[int]]:
    """Fail ``n_failures`` random links, keeping the network connected.

    Returns the degraded topology and the failed link ids (in failure
    order).  Raises ``ValueError`` if the topology cannot absorb that many
    failures without disconnecting.
    """
    if n_failures < 0:
        raise ValueError("n_failures must be non-negative")
    rng = rng or random.Random(0)
    current = topo
    failed: list[int] = []
    for _ in range(n_failures):
        candidates = removable_links(current)
        if not candidates:
            raise ValueError(
                f"cannot fail {n_failures} links without disconnecting "
                f"(stuck after {len(failed)})"
            )
        victim = rng.choice(candidates)
        current = remove_link(current, victim)
        failed.append(victim)
    return current, failed


def schedule_faults(
    topo: NetworkTopology,
    n_failures: int,
    rng: random.Random | None = None,
    window: tuple[float, float] = (0.0, 1000.0),
) -> list[tuple[float, int]]:
    """Draw a seeded runtime fault schedule: ``(fire_time, link_id)`` pairs.

    Links are chosen like :func:`degrade` -- each one keeps the
    *sequentially* degraded network connected -- so the whole schedule can
    be absorbed by Autonet-style reconfiguration.  Fire times are uniform
    in ``window`` and returned sorted ascending (ties keep draw order).
    Deterministic for a given ``rng`` state; arm the result on a live
    network with :class:`repro.chaos.FaultInjector`.
    """
    if n_failures < 0:
        raise ValueError("n_failures must be non-negative")
    lo, hi = window
    if hi < lo:
        raise ValueError("window must be (low, high) with low <= high")
    rng = rng or random.Random(0)
    current = topo
    victims: list[int] = []
    for _ in range(n_failures):
        candidates = removable_links(current)
        if not candidates:
            raise ValueError(
                f"cannot schedule {n_failures} runtime faults without "
                f"disconnecting (stuck after {len(victims)})"
            )
        victim = rng.choice(candidates)
        current = remove_link(current, victim)
        victims.append(victim)
    # Sorted fire times are paired with victims in draw order, so the links
    # fail in exactly the sequence whose connectivity was just validated.
    times = sorted(rng.uniform(lo, hi) for _ in victims)
    return list(zip(times, victims))
