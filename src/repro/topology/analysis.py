"""Topology metrics: structural properties of generated irregular networks.

Used by the topology explorer example, by experiment sanity checks, and by
tests that assert the generator produces networks comparable to the paper's
("our method for generating different irregular topologies...").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.topology.graph import NetworkTopology


@dataclass(frozen=True)
class TopologyStats:
    """Structural summary of one irregular network."""

    num_switches: int
    num_nodes: int
    num_links: int
    diameter: int
    mean_switch_distance: float
    min_degree: int
    max_degree: int
    mean_degree: float
    nodes_per_switch_min: int
    nodes_per_switch_max: int
    multi_link_pairs: int
    """Switch pairs joined by more than one physical link."""


def switch_distances(topo: NetworkTopology, src: int) -> list[int]:
    """Unweighted switch-graph BFS distances from ``src`` (-1 unreachable)."""
    dist = [-1] * topo.num_switches
    dist[src] = 0
    q: deque[int] = deque([src])
    while q:
        s = q.popleft()
        for nb in topo.neighbors(s):
            if dist[nb] == -1:
                dist[nb] = dist[s] + 1
                q.append(nb)
    return dist


def analyze(topo: NetworkTopology) -> TopologyStats:
    """Compute a :class:`TopologyStats` for a connected topology.

    Raises:
        ValueError: if the switch graph is disconnected (distances would be
            meaningless).
    """
    if not topo.is_connected():
        raise ValueError("topology is disconnected")
    all_d: list[int] = []
    diameter = 0
    for s in range(topo.num_switches):
        d = switch_distances(topo, s)
        diameter = max(diameter, max(d))
        all_d.extend(x for i, x in enumerate(d) if i != s)
    degrees = [topo.degree(s) for s in range(topo.num_switches)]
    per_switch = [len(topo.nodes_on_switch(s)) for s in range(topo.num_switches)]
    pair_counts: dict[tuple[int, int], int] = {}
    for lk in topo.links:
        key = tuple(sorted((lk.a.switch, lk.b.switch)))
        pair_counts[key] = pair_counts.get(key, 0) + 1
    mean_dist = sum(all_d) / len(all_d) if all_d else 0.0
    return TopologyStats(
        num_switches=topo.num_switches,
        num_nodes=topo.num_nodes,
        num_links=len(topo.links),
        diameter=diameter,
        mean_switch_distance=mean_dist,
        min_degree=min(degrees) if degrees else 0,
        max_degree=max(degrees) if degrees else 0,
        mean_degree=sum(degrees) / len(degrees) if degrees else 0.0,
        nodes_per_switch_min=min(per_switch) if per_switch else 0,
        nodes_per_switch_max=max(per_switch) if per_switch else 0,
        multi_link_pairs=sum(1 for c in pair_counts.values() if c > 1),
    )
