"""Static description of an irregular switch-based network.

A :class:`NetworkTopology` is a pure data object: switches with ports, hosts
attached to ports, and bidirectional switch-switch links.  Routing and
simulation layers are built on top of it and never mutate it.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class PortRef:
    """A (switch, port) coordinate on the interconnect."""

    switch: int
    port: int


@dataclass(frozen=True)
class SwitchLink:
    """A bidirectional physical link between two switch ports.

    ``link_id`` is unique; multiple links may join the same switch pair
    (the paper explicitly allows multi-links).
    """

    link_id: int
    a: PortRef
    b: PortRef

    def other_end(self, switch: int) -> PortRef:
        """Return the endpoint of this link that is *not* on ``switch``.

        For a (degenerate, disallowed) self-link this would be ambiguous, so
        construction forbids self-links.
        """
        if self.a.switch == switch:
            return self.b
        if self.b.switch == switch:
            return self.a
        raise ValueError(f"switch {switch} is not an endpoint of link {self.link_id}")

    def end_on(self, switch: int) -> PortRef:
        """Return the endpoint of this link that *is* on ``switch``."""
        if self.a.switch == switch:
            return self.a
        if self.b.switch == switch:
            return self.b
        raise ValueError(f"switch {switch} is not an endpoint of link {self.link_id}")


@dataclass
class NetworkTopology:
    """An irregular network: switches, host attachments, switch links.

    Attributes:
        num_switches: switches are numbered ``0..num_switches-1``.
        ports_per_switch: every switch has this many ports, ``0..P-1``.
        node_attachment: ``node_attachment[n]`` is the :class:`PortRef` that
            host ``n`` hangs off; hosts are numbered ``0..num_nodes-1``.
        links: all switch-switch links.
    """

    num_switches: int
    ports_per_switch: int
    node_attachment: list[PortRef]
    links: list[SwitchLink]
    _adj: dict[int, list[SwitchLink]] = field(default_factory=dict, repr=False)
    _nodes_on: dict[int, list[int]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._adj = {s: [] for s in range(self.num_switches)}
        self._nodes_on = {s: [] for s in range(self.num_switches)}
        used: set[PortRef] = set()
        for link in self.links:
            if link.a.switch == link.b.switch:
                raise ValueError(f"self-link on switch {link.a.switch}")
            for end in (link.a, link.b):
                self._check_port(end)
                if end in used:
                    raise ValueError(f"port {end} used twice")
                used.add(end)
            self._adj[link.a.switch].append(link)
            self._adj[link.b.switch].append(link)
        for node, attach in enumerate(self.node_attachment):
            self._check_port(attach)
            if attach in used:
                raise ValueError(f"port {attach} used twice (node {node})")
            used.add(attach)
            self._nodes_on[attach.switch].append(node)

    def _check_port(self, ref: PortRef) -> None:
        if not (0 <= ref.switch < self.num_switches):
            raise ValueError(f"switch {ref.switch} out of range")
        if not (0 <= ref.port < self.ports_per_switch):
            raise ValueError(f"port {ref.port} out of range on switch {ref.switch}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of hosts attached to the network."""
        return len(self.node_attachment)

    def switch_of_node(self, node: int) -> int:
        """The switch a host hangs off."""
        return self.node_attachment[node].switch

    def nodes_on_switch(self, switch: int) -> list[int]:
        """Hosts directly attached to ``switch`` (ascending node id)."""
        return list(self._nodes_on[switch])

    def links_of(self, switch: int) -> list[SwitchLink]:
        """All switch-switch links with one end on ``switch``."""
        return list(self._adj[switch])

    def neighbors(self, switch: int) -> list[int]:
        """Neighbouring switches, ascending and de-duplicated."""
        return sorted({lk.other_end(switch).switch for lk in self._adj[switch]})

    def degree(self, switch: int) -> int:
        """Number of switch-switch links on ``switch`` (multi-links count)."""
        return len(self._adj[switch])

    def free_ports(self, switch: int) -> int:
        """Ports of ``switch`` not wired to a host or another switch."""
        return self.ports_per_switch - self.degree(switch) - len(self._nodes_on[switch])

    def is_connected(self) -> bool:
        """True when every switch is reachable from switch 0."""
        if self.num_switches == 0:
            return True
        seen = {0}
        stack = [0]
        while stack:
            s = stack.pop()
            for nb in self.neighbors(s):
                if nb not in seen:
                    seen.add(nb)
                    stack.append(nb)
        return len(seen) == self.num_switches

    def to_networkx(self):
        """Export the switch graph as a ``networkx.MultiGraph``.

        Switch ``s`` becomes node ``("sw", s)`` and host ``n`` becomes
        ``("host", n)``; link ids are kept as edge keys.
        """
        import networkx as nx

        g = nx.MultiGraph()
        for s in range(self.num_switches):
            g.add_node(("sw", s))
        for lk in self.links:
            g.add_edge(("sw", lk.a.switch), ("sw", lk.b.switch), key=lk.link_id)
        for n, attach in enumerate(self.node_attachment):
            g.add_node(("host", n))
            g.add_edge(("host", n), ("sw", attach.switch), key=f"host-{n}")
        return g
