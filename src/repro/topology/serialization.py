"""Topology save/load as JSON (reproducibility artifacts).

The paper's results are averaged over a family of random topologies; being
able to pin the exact networks a result came from -- and reload them later
or on another machine -- is what makes a simulation study auditable.
"""

from __future__ import annotations

import json
import pathlib

from repro.topology.graph import NetworkTopology, PortRef, SwitchLink

FORMAT_VERSION = 1


def topology_to_dict(topo: NetworkTopology) -> dict:
    """Plain-data representation of a topology (JSON-ready)."""
    return {
        "format": FORMAT_VERSION,
        "num_switches": topo.num_switches,
        "ports_per_switch": topo.ports_per_switch,
        "nodes": [
            {"node": n, "switch": p.switch, "port": p.port}
            for n, p in enumerate(topo.node_attachment)
        ],
        "links": [
            {
                "id": lk.link_id,
                "a": {"switch": lk.a.switch, "port": lk.a.port},
                "b": {"switch": lk.b.switch, "port": lk.b.port},
            }
            for lk in topo.links
        ],
    }


def topology_from_dict(data: dict) -> NetworkTopology:
    """Inverse of :func:`topology_to_dict`.

    Raises:
        ValueError: on unknown format versions or malformed node lists.
    """
    if data.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported topology format {data.get('format')!r}")
    nodes = sorted(data["nodes"], key=lambda d: d["node"])
    if [d["node"] for d in nodes] != list(range(len(nodes))):
        raise ValueError("node ids must be dense 0..N-1")
    return NetworkTopology(
        num_switches=data["num_switches"],
        ports_per_switch=data["ports_per_switch"],
        node_attachment=[PortRef(d["switch"], d["port"]) for d in nodes],
        links=[
            SwitchLink(
                d["id"],
                PortRef(d["a"]["switch"], d["a"]["port"]),
                PortRef(d["b"]["switch"], d["b"]["port"]),
            )
            for d in data["links"]
        ],
    )


def save_topology(topo: NetworkTopology, path: str | pathlib.Path) -> None:
    """Write a topology to a JSON file."""
    pathlib.Path(path).write_text(
        json.dumps(topology_to_dict(topo), indent=2) + "\n"
    )


def load_topology(path: str | pathlib.Path) -> NetworkTopology:
    """Read a topology from a JSON file written by :func:`save_topology`."""
    return topology_from_dict(json.loads(pathlib.Path(path).read_text()))
