"""Irregular switch-based network topologies (DESIGN.md system S1).

The paper's system model: a set of switches, each with a fixed number of
ports; some ports attach processing nodes (hosts), some connect to other
switches via bidirectional links (multi-links allowed), some stay open.  The
only guarantee is that the network is connected.
"""

from repro.topology.graph import NetworkTopology, PortRef, SwitchLink
from repro.topology.irregular import generate_irregular_topology

__all__ = [
    "NetworkTopology",
    "PortRef",
    "SwitchLink",
    "generate_irregular_topology",
]
