"""Random irregular topology generation.

The paper generates "different irregular topologies" with a fixed number of
switches and ports per switch and averages results over them (their method is
described in Kesavan et al., HPCA'98).  We follow the same recipe:

1. scatter the hosts across switches uniformly at random (bounded by free
   ports, and leaving every switch at least one port for connectivity);
2. connect the switches with a uniformly random spanning tree (guaranteeing
   connectivity, as the paper requires);
3. spend remaining ports on random extra switch-switch links -- multi-links
   between the same switch pair are allowed, self-links are not -- until the
   requested link budget or port exhaustion.

The generator is fully deterministic in its seed.
"""

from __future__ import annotations

import random

from repro.params import SimParams
from repro.topology.graph import NetworkTopology, PortRef, SwitchLink


def generate_irregular_topology(
    params: SimParams,
    seed: int | None = None,
    extra_link_fraction: float = 0.5,
) -> NetworkTopology:
    """Generate a random connected irregular topology.

    Args:
        params: system dimensions (switch count, port count, node count).
        seed: RNG seed; defaults to ``params.topology_seed``.
        extra_link_fraction: after the spanning tree, this fraction of the
            remaining free port *pairs* is consumed by random extra links
            (0.0 keeps a pure tree, 1.0 wires every spare port it can).

    Returns:
        A connected :class:`NetworkTopology`.

    Raises:
        ValueError: if the dimensions cannot host all nodes while staying
            connected (delegates to :meth:`SimParams.validate`).
    """
    params.validate()
    if not 0.0 <= extra_link_fraction <= 1.0:
        raise ValueError("extra_link_fraction must be within [0, 1]")
    rng = random.Random(params.topology_seed if seed is None else seed)
    S, P, N = params.num_switches, params.ports_per_switch, params.num_nodes

    # Ports are handed out from 0 upward on each switch; port numbering is
    # immaterial to behaviour (routing is by link identity), so a simple
    # next-free counter suffices.
    next_port = [0] * S

    def take_port(switch: int) -> PortRef:
        ref = PortRef(switch, next_port[switch])
        next_port[switch] += 1
        if ref.port >= P:
            raise AssertionError("internal port budget violation")
        return ref

    # --- 1. host placement -------------------------------------------------
    # Every switch must keep >=1 port for the spanning tree (>=2 for interior
    # switches, but the tree construction below checks as it goes).
    tree_ports_needed = [0] * S
    # A uniformly random spanning tree over switches (random Prufer-free
    # construction: random permutation + attach each new switch to a random
    # already-connected one).
    order = list(range(S))
    rng.shuffle(order)
    tree_edges: list[tuple[int, int]] = []
    for i in range(1, S):
        parent = order[rng.randrange(i)]
        if tree_ports_needed[parent] >= P:
            # The uniform draw landed on a switch whose ports the tree has
            # already exhausted (likely once S*P is large: random-attachment
            # trees grow log-degree hubs).  Redraw uniformly among the
            # connected switches that still have a free port; the extra
            # draw only happens where the unguarded choice used to blow the
            # port budget at materialisation time, so every previously
            # valid seed reproduces its topology bit-for-bit.
            open_parents = [
                order[j] for j in range(i)
                if tree_ports_needed[order[j]] < P
            ]
            if not open_parents:
                raise ValueError(
                    "cannot build spanning tree: port budget exhausted"
                )
            parent = open_parents[rng.randrange(len(open_parents))]
        tree_edges.append((parent, order[i]))
        tree_ports_needed[parent] += 1
        tree_ports_needed[order[i]] += 1

    host_of: list[int] = []
    host_count = [0] * S
    for _ in range(N):
        candidates = [
            s
            for s in range(S)
            if host_count[s] + tree_ports_needed[s] < P
        ]
        if not candidates:
            raise ValueError("cannot place all hosts: port budget exhausted")
        s = rng.choice(candidates)
        host_count[s] += 1
        host_of.append(s)

    # --- 2. spanning tree links --------------------------------------------
    links: list[SwitchLink] = []
    used_ports = [host_count[s] for s in range(S)]

    def link_budget(s: int) -> int:
        return P - used_ports[s]

    link_id = 0
    for a, b in tree_edges:
        links.append(SwitchLink(link_id, PortRef(a, -1), PortRef(b, -1)))
        used_ports[a] += 1
        used_ports[b] += 1
        link_id += 1

    # --- 3. extra random links ----------------------------------------------
    if S > 1:
        spare_pairs = sum(max(0, link_budget(s)) for s in range(S)) // 2
        target_extra = int(round(spare_pairs * extra_link_fraction))
        attempts = 0
        added = 0
        while added < target_extra and attempts < 50 * (target_extra + 1):
            attempts += 1
            open_switches = [s for s in range(S) if link_budget(s) > 0]
            if len(open_switches) < 2:
                break
            a, b = rng.sample(open_switches, 2)
            links.append(SwitchLink(link_id, PortRef(a, -1), PortRef(b, -1)))
            used_ports[a] += 1
            used_ports[b] += 1
            link_id += 1
            added += 1

    # --- materialise port numbers -------------------------------------------
    # Hosts take the low ports, then links, mirroring Figure 1 of the paper
    # where each switch mixes host ports and switch ports.
    node_attachment: list[PortRef] = []
    for s in host_of:
        node_attachment.append(take_port(s))
    final_links: list[SwitchLink] = []
    for lk in links:
        final_links.append(
            SwitchLink(lk.link_id, take_port(lk.a.switch), take_port(lk.b.switch))
        )

    topo = NetworkTopology(
        num_switches=S,
        ports_per_switch=P,
        node_attachment=node_attachment,
        links=final_links,
    )
    if not topo.is_connected():
        raise AssertionError("generator produced a disconnected topology")
    return topo


def generate_topology_family(
    params: SimParams, count: int, base_seed: int | None = None
) -> list[NetworkTopology]:
    """Generate ``count`` distinct-seed topologies for averaging experiments.

    The paper averages every reported number over several random topologies;
    this helper produces the family deterministically from ``base_seed``.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    base = params.topology_seed if base_seed is None else base_seed
    return [
        generate_irregular_topology(params, seed=base + 1000 * i)
        for i in range(count)
    ]
