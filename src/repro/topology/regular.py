"""Canonical regular topologies (validation and comparison substrates).

The paper's subject is *irregular* networks, but up*/down* routing and all
four multicast schemes are topology-agnostic; regular structures are
invaluable as validation substrates (hand-checkable distances and
reachability) and for comparing "how much does irregularity cost".  Each
builder returns an ordinary :class:`NetworkTopology` with
``hosts_per_switch`` hosts on every switch.

Node numbering everywhere: node ``s * hosts_per_switch + i`` is host ``i``
of switch ``s``.
"""

from __future__ import annotations

from repro.topology.graph import NetworkTopology, PortRef, SwitchLink


class _Builder:
    """Port-cursor bookkeeping shared by all regular builders."""

    def __init__(self, num_switches: int, hosts_per_switch: int, ports: int) -> None:
        if hosts_per_switch < 0:
            raise ValueError("hosts_per_switch must be non-negative")
        self.num_switches = num_switches
        self.ports = ports
        self.cursor = [hosts_per_switch] * num_switches
        self.links: list[SwitchLink] = []
        self.attach = [
            PortRef(s, i)
            for s in range(num_switches)
            for i in range(hosts_per_switch)
        ]

    def link(self, a: int, b: int) -> None:
        pa = PortRef(a, self.cursor[a])
        self.cursor[a] += 1
        pb = PortRef(b, self.cursor[b])
        self.cursor[b] += 1
        if max(self.cursor[a], self.cursor[b]) > self.ports:
            raise ValueError(
                f"ports_per_switch={self.ports} too small for this topology"
            )
        self.links.append(SwitchLink(len(self.links), pa, pb))

    def build(self) -> NetworkTopology:
        topo = NetworkTopology(
            self.num_switches, self.ports, self.attach, self.links
        )
        if not topo.is_connected():
            raise AssertionError("regular builder produced disconnected graph")
        return topo


def mesh_2d(rows: int, cols: int, hosts_per_switch: int = 1,
            ports_per_switch: int = 8) -> NetworkTopology:
    """rows x cols 2D mesh of switches."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise ValueError("mesh needs at least 2 switches")
    b = _Builder(rows * cols, hosts_per_switch, ports_per_switch)
    sid = lambda r, c: r * cols + c
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                b.link(sid(r, c), sid(r, c + 1))
            if r + 1 < rows:
                b.link(sid(r, c), sid(r + 1, c))
    return b.build()


def torus_2d(rows: int, cols: int, hosts_per_switch: int = 1,
             ports_per_switch: int = 8) -> NetworkTopology:
    """rows x cols 2D torus (wrap-around mesh); needs rows,cols >= 3 to
    avoid duplicate edges collapsing into multi-links unexpectedly."""
    if rows < 3 or cols < 3:
        raise ValueError("torus needs rows, cols >= 3")
    b = _Builder(rows * cols, hosts_per_switch, ports_per_switch)
    sid = lambda r, c: r * cols + c
    for r in range(rows):
        for c in range(cols):
            b.link(sid(r, c), sid(r, (c + 1) % cols))
            b.link(sid(r, c), sid((r + 1) % rows, c))
    return b.build()


def hypercube(dimension: int, hosts_per_switch: int = 1,
              ports_per_switch: int | None = None) -> NetworkTopology:
    """Binary d-cube of switches (2^d switches, d links each)."""
    if dimension < 1:
        raise ValueError("dimension must be >= 1")
    n = 1 << dimension
    ports = ports_per_switch or (dimension + hosts_per_switch)
    b = _Builder(n, hosts_per_switch, ports)
    for s in range(n):
        for d in range(dimension):
            t = s ^ (1 << d)
            if t > s:
                b.link(s, t)
    return b.build()


def ring(n_switches: int, hosts_per_switch: int = 1,
         ports_per_switch: int = 8) -> NetworkTopology:
    """Cycle of switches (n >= 3)."""
    if n_switches < 3:
        raise ValueError("ring needs at least 3 switches")
    b = _Builder(n_switches, hosts_per_switch, ports_per_switch)
    for s in range(n_switches):
        b.link(s, (s + 1) % n_switches)
    return b.build()


def fully_connected(n_switches: int, hosts_per_switch: int = 1,
                    ports_per_switch: int | None = None) -> NetworkTopology:
    """Complete graph of switches (every pair directly linked)."""
    if n_switches < 2:
        raise ValueError("need at least 2 switches")
    ports = ports_per_switch or (n_switches - 1 + hosts_per_switch)
    b = _Builder(n_switches, hosts_per_switch, ports)
    for a in range(n_switches):
        for c in range(a + 1, n_switches):
            b.link(a, c)
    return b.build()


REGULAR_BUILDERS = {
    "mesh": mesh_2d,
    "torus": torus_2d,
    "hypercube": hypercube,
    "ring": ring,
    "clique": fully_connected,
}
"""Registry used by examples and the comparison experiment."""
