"""Terminal rendering: ASCII charts and topology diagrams."""

from repro.visual.ascii import ascii_xy_chart, render_experiment
from repro.visual.timeline import occupancy_intervals, render_timeline
from repro.visual.topology_art import render_topology

__all__ = [
    "ascii_xy_chart",
    "render_experiment",
    "render_topology",
    "render_timeline",
    "occupancy_intervals",
]
