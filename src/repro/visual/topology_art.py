"""Terminal rendering of an irregular topology as a levelled diagram.

Switches are laid out by BFS level (the routing structure that actually
matters under up*/down*), with their attached hosts listed beside them and
links annotated up/down -- a quick way to eyeball why a particular worm
route or reachability string looks the way it does.
"""

from __future__ import annotations

from repro.routing.updown import UpDownRouting
from repro.topology.graph import NetworkTopology


def render_topology(
    topo: NetworkTopology, routing: UpDownRouting | None = None
) -> str:
    """Multi-line description of the topology, grouped by BFS level."""
    rt = routing if routing is not None else UpDownRouting.build(topo)
    by_level: dict[int, list[int]] = {}
    for s in range(topo.num_switches):
        by_level.setdefault(rt.tree.level[s], []).append(s)

    lines = [
        f"irregular network: {topo.num_switches} switches x "
        f"{topo.ports_per_switch} ports, {topo.num_nodes} hosts, "
        f"{len(topo.links)} links (root sw{rt.tree.root})"
    ]
    for level in sorted(by_level):
        lines.append(f"level {level}:")
        for s in sorted(by_level[level]):
            hosts = topo.nodes_on_switch(s)
            host_txt = (
                "hosts " + ",".join(map(str, hosts)) if hosts else "no hosts"
            )
            ups = sorted(
                lk.other_end(s).switch for lk in rt.up_links_of(s)
            )
            downs = sorted(
                lk.other_end(s).switch for lk in rt.down_links_of(s)
            )
            parts = [f"  sw{s} ({host_txt})"]
            if ups:
                parts.append("up->" + ",".join(f"sw{u}" for u in ups))
            if downs:
                parts.append("down->" + ",".join(f"sw{d}" for d in downs))
            lines.append(" ".join(parts))
    return "\n".join(lines)
