"""Channel-occupancy timelines from trace logs.

Turns a :class:`~repro.sim.tracelog.TraceLog` into a Gantt-style ASCII
view: one row per channel, one glyph per worm, bars spanning grant-to-
release.  The fastest way to see where a worm stalled and who it waited for.
"""

from __future__ import annotations

import string

from repro.sim.tracelog import TraceLog

GLYPHS = string.ascii_lowercase + string.ascii_uppercase + string.digits


def occupancy_intervals(
    trace: TraceLog,
) -> list[tuple[str, str, float, float]]:
    """(channel, worm, grant_time, release_time) per channel occupancy.

    Grants without a matching release (still in flight when the trace was
    read) are dropped.
    """
    open_grants: dict[tuple[str, str], float] = {}
    intervals: list[tuple[str, str, float, float]] = []
    for rec in trace.records():
        key = (rec.detail, rec.worm)
        if rec.event == "grant":
            open_grants[key] = rec.time
        elif rec.event == "release":
            start = open_grants.pop(key, None)
            if start is not None:
                intervals.append((rec.detail, rec.worm, start, rec.time))
    return intervals


def render_timeline(
    trace: TraceLog,
    width: int = 72,
    channel_filter: str | None = None,
) -> str:
    """ASCII occupancy chart.

    Args:
        width: columns of the time axis.
        channel_filter: keep only channels whose name contains this.
    """
    intervals = occupancy_intervals(trace)
    if channel_filter is not None:
        intervals = [iv for iv in intervals if channel_filter in iv[0]]
    if not intervals:
        return "(no completed channel occupancies in trace)"
    t0 = min(iv[2] for iv in intervals)
    t1 = max(iv[3] for iv in intervals)
    span = (t1 - t0) or 1.0
    worms = sorted({iv[1] for iv in intervals})
    glyph = {w: GLYPHS[i % len(GLYPHS)] for i, w in enumerate(worms)}
    channels = sorted({iv[0] for iv in intervals})
    name_w = max(len(c) for c in channels)

    lines = [f"time {t0:.0f} .. {t1:.0f} ({span:.0f} cycles)"]
    for ch in channels:
        row = [" "] * width
        for c, w, s, e in intervals:
            if c != ch:
                continue
            a = int((s - t0) / span * (width - 1))
            b = max(a, int((e - t0) / span * (width - 1)))
            for col in range(a, b + 1):
                row[col] = glyph[w]
        lines.append(f"{ch.rjust(name_w)} |{''.join(row)}|")
    legend = "  ".join(f"{glyph[w]}={w}" for w in worms[: len(GLYPHS)])
    lines.append(legend)
    return "\n".join(lines)
