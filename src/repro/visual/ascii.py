"""ASCII x-y charts for experiment results (no plotting dependencies).

The examples and the CLI render latency curves directly in the terminal;
``None`` y-values (saturated load points) are drawn as ``^`` pinned to the
chart's top edge.
"""

from __future__ import annotations

import string

from repro.experiments.base import ExperimentResult, Series

GLYPHS = string.ascii_lowercase
SATURATED = "^"


def ascii_xy_chart(
    series: list[Series],
    height: int = 16,
    col_width: int = 7,
    y_format: str = "{:>9.0f}",
) -> str:
    """Render curves sharing an x grid as a fixed-height ASCII chart.

    Each series gets a letter glyph (legend appended below).  All series
    must share the same x vector; y values may be None (saturated).

    Raises:
        ValueError: on empty input, mismatched x vectors, or when no
            measurable point exists at all.
    """
    if not series:
        raise ValueError("no series to plot")
    xs = series[0].x
    if any(s.x != xs for s in series):
        raise ValueError("all series must share the same x vector")
    if len(series) > len(GLYPHS):
        raise ValueError(f"at most {len(GLYPHS)} series supported")
    ys = [y for s in series for y in s.y if y is not None]
    if not ys:
        raise ValueError("no measurable points to plot")
    y_max, y_min = max(ys), min(ys)
    span = (y_max - y_min) or 1.0

    width = len(xs) * col_width
    grid = [[" "] * width for _ in range(height)]
    for si, s in enumerate(series):
        glyph = GLYPHS[si]
        for i, y in enumerate(s.y):
            col = i * col_width + col_width // 2
            if y is None:
                grid[0][col] = SATURATED
                continue
            frac = (y - y_min) / span
            row = height - 1 - round(frac * (height - 1))
            grid[row][col] = glyph

    margin = len(y_format.format(0))
    lines = [y_format.format(y_max) + " |" + "".join(grid[0])]
    for r in range(1, height - 1):
        lines.append(" " * margin + " |" + "".join(grid[r]))
    lines.append(y_format.format(y_min) + " |" + "".join(grid[-1]))
    lines.append(
        " " * (margin + 2)
        + "".join(f"{x:^{col_width}g}" for x in xs)
    )
    legend = "  ".join(
        f"{GLYPHS[si]}={s.label}" for si, s in enumerate(series)
    )
    lines.append(legend)
    if any(y is None for s in series for y in s.y):
        lines.append(f"({SATURATED} = saturated)")
    return "\n".join(lines)


def render_experiment(
    result: ExperimentResult,
    select: str | None = None,
    height: int = 16,
) -> str:
    """Chart an experiment's curves, optionally filtered by substring.

    ``select`` keeps only series whose label contains the substring (e.g.
    ``"16-way"``); series with differing x supports are dropped with a note.
    """
    chosen = [
        s for s in result.series if select is None or select in s.label
    ]
    if not chosen:
        raise ValueError(f"no series match {select!r}")
    xs = chosen[0].x
    plottable = [s for s in chosen if s.x == xs]
    note = ""
    if len(plottable) < len(chosen):
        skipped = [s.label for s in chosen if s.x != xs]
        note = f"\n(skipped mismatched-x series: {', '.join(skipped)})"
    header = f"{result.title}\n(y = {result.y_label}, x = {result.x_label})\n"
    return header + ascii_xy_chart(plottable, height=height) + note
