"""Sharded parallel simulation with conservative time-window sync.

Partitions the switch graph across workers (each a full
:class:`~repro.sim.network.SimNetwork` replica simulating only its own
channels), synchronizes them with Chandy-Misra-style conservative windows,
and merges the per-shard traces into a digest byte-comparable with the
single-process run.  See docs/sharding.md for the protocol and its
lookahead proof.
"""

from repro.shard.coordinator import ShardRunResult, ShardSimulation
from repro.shard.merge import canonical_digest, merge_traces
from repro.shard.partition import ShardPlan, partition_switches
from repro.shard.scenario import (
    Job,
    ShardScenario,
    run_serial,
    seeded_scenario,
    smoke_scenario,
)
from repro.shard.worker import ShardReport, ShardWorker

__all__ = [
    "Job",
    "ShardPlan",
    "ShardReport",
    "ShardRunResult",
    "ShardScenario",
    "ShardSimulation",
    "ShardWorker",
    "canonical_digest",
    "merge_traces",
    "partition_switches",
    "run_serial",
    "seeded_scenario",
    "smoke_scenario",
]
