"""Process-parallel backend for the sharded runner.

:class:`ProcShardSimulation` drives the exact window protocol of
:class:`~repro.shard.coordinator.ShardSimulation` -- it *is* that class,
with the transport primitives overridden -- but each
:class:`~repro.shard.worker.ShardWorker` lives in its own OS process and
is commanded over a :func:`multiprocessing.Pipe`.  Every broadcast
primitive is **pipelined**: the command is written to all workers first,
then all replies are gathered, so the windows (where the simulation work
happens) execute concurrently across cores.  Because the child workers
are byte-for-byte the inline ones and the coordinator logic is shared,
the merged trace of a process-parallel run is identical to the inline
run's -- the determinism suite's contract carries over unchanged.

The coordinator keeps one extra rule the inline backend does not need:
worker processes are a resource.  Use the class as a context manager (or
call :meth:`close`); :meth:`run` shuts the pool down on completion and on
error.
"""

from __future__ import annotations

import multiprocessing as mp
from multiprocessing.connection import Connection

from repro.shard.coordinator import ShardSimulation
from repro.shard.scenario import ShardScenario
from repro.shard.worker import ShardWorker


def _worker_main(
    conn: Connection, shard_id: int, scenario: ShardScenario, plan
) -> None:
    """Child process body: build the shard worker, serve commands."""
    worker = ShardWorker(shard_id, scenario, plan)
    while True:
        cmd, args = conn.recv()
        if cmd == "stop":
            conn.send(("ok", None))
            conn.close()
            return
        try:
            result = getattr(worker, cmd)(*args)
        except Exception as exc:  # pragma: no cover - protocol safety
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
            raise
        conn.send(("ok", result))


class _Remote:
    """One worker process plus its command pipe."""

    def __init__(
        self,
        ctx,
        shard_id: int,
        scenario: ShardScenario,
        plan,
    ) -> None:
        self.conn, child = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main,
            args=(child, shard_id, scenario, plan),
            daemon=True,
        )
        self.process.start()
        child.close()

    def post(self, cmd: str, *args) -> None:
        self.conn.send((cmd, args))

    def reply(self):
        status, value = self.conn.recv()
        if status != "ok":  # pragma: no cover - protocol safety
            raise RuntimeError(f"shard worker failed: {value}")
        return value

    def call(self, cmd: str, *args):
        self.post(cmd, *args)
        return self.reply()


class ProcShardSimulation(ShardSimulation):
    """The window protocol over a pool of per-shard worker processes."""

    def _make_workers(self) -> list:
        ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() \
            else mp.get_context()
        self._remotes = [
            _Remote(ctx, shard, self.scenario, self.plan)
            for shard in range(self.num_shards)
        ]
        self._closed = False
        return []  # all access goes through the transport primitives

    # ------------------------------------------------------------------
    # Pipelined transport primitives
    # ------------------------------------------------------------------
    def _broadcast(self, cmd: str, *args) -> list:
        for remote in self._remotes:
            remote.post(cmd, *args)
        return [remote.reply() for remote in self._remotes]

    def _sync_everywhere(
        self, by_target: dict[int, list]
    ) -> list[float | None]:
        for i, remote in enumerate(self._remotes):
            remote.post("sync", by_target.get(i, []))
        return [remote.reply() for remote in self._remotes]

    def _advance_everywhere(self, barrier: float | None) -> list:
        envelopes = []
        for batch in self._broadcast("advance", barrier):
            envelopes.extend(batch)
        return envelopes

    def _prepare_fault_everywhere(self, link_id: int) -> list:
        return self._broadcast("prepare_fault", link_id)

    def _skip_fault_everywhere(self, link_id: int, reason: str) -> None:
        self._broadcast("skip_fault", link_id, reason)

    def _commit_fault_everywhere(
        self, link_id: int, victims: list[int]
    ) -> None:
        self._broadcast("commit_fault", link_id, victims)

    def _reports(self) -> list:
        return self._broadcast("report")

    def _pending_outboxes(self) -> int:
        # The coordinator always syncs before collecting, so any leftover
        # envelope is still sitting in a worker outbox; a fresh drain is an
        # equivalent emptiness check.
        return sum(len(batch) for batch in self._broadcast("drain_outbox"))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def run(self):
        try:
            return super().run()
        finally:
            self.close()

    def close(self) -> None:
        if getattr(self, "_closed", True):
            return
        self._closed = True
        for remote in self._remotes:
            try:
                remote.call("stop")
            except (EOFError, BrokenPipeError, OSError):
                pass
            remote.conn.close()
        for remote in self._remotes:
            remote.process.join(timeout=10)
            if remote.process.is_alive():  # pragma: no cover - safety
                remote.process.terminate()

    def __enter__(self) -> "ProcShardSimulation":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
