"""Conservative time-window coordination of shard workers.

:class:`ShardSimulation` drives N :class:`~repro.shard.worker.ShardWorker`
replicas through Chandy-Misra-style conservative windows:

1. **Exchange.**  Boundary envelopes produced in the previous window are
   routed and applied at the current barrier (all workers' clocks agree).
2. **Barrier.**  The next barrier is ``min_i(ne_i) + W`` -- the earliest
   pending event anywhere plus the lookahead ``W`` (the minimum delay any
   cross-shard influence is padded by; see
   :meth:`~repro.shard.partition.ShardPlan.lookahead` and the proof in
   docs/sharding.md) -- clipped to the next statically-known fault time.
3. **Window.**  Every worker fires its events *strictly before* the
   barrier (:meth:`Engine.run_window` is end-exclusive), so barrier-time
   state -- fault processing, message effects -- is applied before any
   barrier-time event, exactly as the serial injector's early-armed fault
   events fire before same-time worm events.
4. **Faults.**  Faults scheduled exactly at the barrier run as a
   replicated two-phase transaction: every worker names its local victims,
   the coordinator unions them in launch order, and every worker commits
   the same mutation (worker 0 emitting the trace records).

With no boundary links (or one shard) the lookahead is infinite and the
loop degenerates to "run everything between fault times" -- the serial
algorithm with extra steps, and provably message-free.

The coordinator is backend-agnostic in protocol but this class runs the
workers *inline* (one process, N engines).  The process-parallel backend
(`repro.shard.procpool`) drives the identical protocol over pipes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.chaos.schedule import FaultSchedule
from repro.shard.merge import canonical_digest, merge_traces
from repro.shard.partition import ShardPlan, partition_switches
from repro.shard.scenario import ShardScenario
from repro.shard.worker import ShardWorker
from repro.sim.tracelog import TraceLog


@dataclass
class ShardRunResult:
    """Outcome of a sharded run, merged back to single-run shape."""

    deliveries: dict[tuple[int, int], float]
    trace: TraceLog
    plan: ShardPlan
    rounds: int
    messages: int
    events_per_shard: tuple[int, ...]

    @property
    def digest(self) -> str:
        """Raw merged-trace digest: records in (time, phase, shard, seq)
        order.  Byte-identical to the serial trace digest at one shard (and
        whenever serial emits no interleaved same-time records from
        different shards); partition-ordered otherwise."""
        return self.trace.digest()

    @property
    def canonical(self) -> str:
        """Content-canonical digest -- always byte-identical to
        :func:`~repro.shard.merge.canonical_digest` of the serial trace
        (see docs/sharding.md on trace ordering)."""
        return canonical_digest(self.trace.records())


class ShardSimulation:
    """Run one :class:`ShardScenario` across ``num_shards`` workers."""

    def __init__(
        self,
        scenario: ShardScenario,
        num_shards: int,
        partition_seed: int = 0,
    ) -> None:
        self.scenario = scenario
        self.num_shards = num_shards
        self.plan = partition_switches(
            scenario.topo, num_shards, seed=partition_seed
        )
        self.workers = self._make_workers()

    def _make_workers(self) -> list[ShardWorker]:
        return [
            ShardWorker(shard, self.scenario, self.plan)
            for shard in range(self.num_shards)
        ]

    # ------------------------------------------------------------------
    # Protocol loop
    # ------------------------------------------------------------------
    def run(self) -> ShardRunResult:
        lookahead = self.plan.lookahead(self.scenario.params)
        faults = list(
            FaultSchedule.from_pairs(list(self.scenario.fault_pairs))
        )
        fault_i = 0
        rounds = 0
        messages = 0
        pending: list = []  # envelopes drained at the previous advance
        while True:
            by_target: dict[int, list] = {}
            for env in pending:
                by_target.setdefault(env.target, []).append(env)
            messages += len(pending)
            next_events = self._sync_everywhere(by_target)
            earliest = min(
                (t for t in next_events if t is not None), default=None
            )
            next_fault = (
                faults[fault_i].time if fault_i < len(faults) else None
            )
            if earliest is None and next_fault is None:
                break
            rounds += 1
            barrier = self._barrier(lookahead, earliest, next_fault)
            # barrier None: infinite lookahead with no faults left -- the
            # shards are causally independent from here on, drain fully.
            pending = self._advance_everywhere(barrier)
            if barrier is not None:
                while (
                    fault_i < len(faults)
                    and faults[fault_i].time == barrier  # lint: disable=float-time-eq -- barrier is clipped to exactly this float by _barrier's min()
                ):
                    self._process_fault(faults[fault_i].link_id)
                    fault_i += 1
        return self._collect(rounds, messages)

    # ------------------------------------------------------------------
    # Transport primitives (overridden by the process-pool backend)
    # ------------------------------------------------------------------
    def _sync_everywhere(
        self, by_target: dict[int, list]
    ) -> list[float | None]:
        return [
            w.sync(by_target.get(i, []))
            for i, w in enumerate(self.workers)
        ]

    def _advance_everywhere(self, barrier: float | None) -> list:
        envelopes = []
        for worker in self.workers:
            envelopes.extend(worker.advance(barrier))
        return envelopes

    def _prepare_fault_everywhere(self, link_id: int) -> list:
        return [w.prepare_fault(link_id) for w in self.workers]

    def _skip_fault_everywhere(self, link_id: int, reason: str) -> None:
        for worker in self.workers:
            worker.skip_fault(link_id, reason)

    def _commit_fault_everywhere(
        self, link_id: int, victims: list[int]
    ) -> None:
        for worker in self.workers:
            worker.commit_fault(link_id, victims)

    def _reports(self) -> list:
        return [w.report() for w in self.workers]

    def _pending_outboxes(self) -> int:
        return sum(len(w.outbox) for w in self.workers)

    @staticmethod
    def _barrier(
        lookahead: float,
        earliest: float | None,
        next_fault: float | None,
    ) -> float | None:
        """Next synchronization point, or None for an unbounded drain."""
        if math.isinf(lookahead):
            return next_fault
        barrier = (
            earliest + lookahead if earliest is not None else next_fault
        )
        if next_fault is not None:
            barrier = min(barrier, next_fault)
        return barrier

    def _process_fault(self, link_id: int) -> None:
        """Two-phase replicated fault at the current barrier time."""
        verdicts = self._prepare_fault_everywhere(link_id)
        if verdicts[0][0] == "skip":
            assert all(v[0] == "skip" for v in verdicts), (
                "workers disagree on fault validity -- replicas diverged"
            )
            self._skip_fault_everywhere(link_id, verdicts[0][1])
            return
        assert all(v[0] == "ok" for v in verdicts), (
            "workers disagree on fault validity -- replicas diverged"
        )
        victims = sorted({gid for _ok, gids in verdicts for gid in gids})
        self._commit_fault_everywhere(link_id, victims)

    def _collect(self, rounds: int, messages: int) -> ShardRunResult:
        reports = self._reports()
        leftovers = self._pending_outboxes()
        if leftovers:  # pragma: no cover - protocol safety
            raise RuntimeError(
                f"{leftovers} boundary message(s) were never delivered"
            )
        deliveries: dict[tuple[int, int], float] = {}
        for rep in reports:
            deliveries.update(rep.deliveries)
        return ShardRunResult(
            deliveries=deliveries,
            trace=merge_traces(reports),
            plan=self.plan,
            rounds=rounds,
            messages=messages,
            events_per_shard=tuple(rep.events_fired for rep in reports),
        )
