"""One shard's runtime: a partition-scoped event loop over the full fabric.

A :class:`ShardWorker` owns a complete :class:`~repro.sim.network.SimNetwork`
-- topology, routing tables, fabric -- built identically on every worker
(same params, same seeds), of which it *simulates* only the channels owned
by its partition.  Building the full fabric everywhere costs memory
proportional to the network, not to the partition, but buys the property
everything else rests on: channel uids, names, delays and route ids are
identical across workers, so boundary messages can name hops by plain
integers and every worker resolves them to the same objects.

The worker exposes the window protocol the coordinator drives:

* :meth:`run_window` / :meth:`run_all` -- advance the local engine;
* :meth:`drain_outbox` / :meth:`apply_envelopes` -- barrier message exchange;
* :meth:`prepare_fault` / :meth:`skip_fault` / :meth:`commit_fault` -- the
  replicated fault transaction (every worker mutates its own replica of the
  topology and fabric identically; only worker 0 emits the trace records);
* :meth:`report` -- deliveries, trace records and counters for the merge.

Worker 0 is the *trace leader* for fault processing: fault-phase records
("fault", the per-victim "abort"s, "reconfig", "fault-skip") are emitted
once, on worker 0, whatever shards the victims live on, and their positions
are remembered so the trace merge can order them before every same-time
worm record (mirroring the serial injector's early-armed, low-sequence
fault events).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.shard.messages import AbortMsg, Envelope, ExpandMsg, GrantFact
from repro.shard.partition import ShardPlan
from repro.shard.scenario import ShardScenario
from repro.shard.worm_part import PartWorm
from repro.sim.network import SimNetwork
from repro.sim.tracelog import TraceLog, TraceRecord
from repro.topology import faults as topo_faults

_TRACE_CAPACITY = 1 << 20
"""Per-worker trace ring size.  The merge needs every retained record, so
workers trace with plenty of headroom; the digest itself is streaming and
survives eviction regardless."""


@dataclass
class ShardReport:
    """Everything the coordinator needs from one worker after the run."""

    shard_id: int
    deliveries: dict[tuple[int, int], float]
    records: list[TraceRecord]
    fault_indices: list[int]
    events_fired: int
    messages_sent: int
    dropped_records: int = field(default=0)


class ShardWorker:
    """One partition's simulation state plus its boundary protocol."""

    def __init__(
        self,
        shard_id: int,
        scenario: ShardScenario,
        plan: ShardPlan,
    ) -> None:
        self.shard_id = shard_id
        self.scenario = scenario
        self.plan = plan
        self.net = SimNetwork(scenario.topo, scenario.params)
        self.net.trace = TraceLog(capacity=_TRACE_CAPACITY)
        self.deliveries: dict[tuple[int, int], float] = {}
        self.outbox: list[Envelope] = []
        self.fault_indices: list[int] = []
        self._seq = 0
        self._messages_sent = 0
        self._parts: dict[int, PartWorm] = {}
        self._live: dict[int, PartWorm] = {}
        self._build_worms()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_worms(self) -> None:
        """Instantiate this shard's part of every participating worm.

        Every worker plans the same static routes on its own (identical)
        epoch-0 routing tables; a worm is kept only where it owns hops.
        Locally-rooted worms are launched exactly as the serial reference
        does: time-zero jobs inject immediately (low event sequence
        numbers), later jobs via a scheduled launch event.
        """
        routes = self.scenario.plan_routes(self.net.routing)
        for gid, ((start, src, _dsts), route) in enumerate(
            zip(self.scenario.jobs, routes)
        ):
            part = PartWorm(self, gid, route, src)
            if not part.is_participant(self.shard_id):
                continue
            self._parts[gid] = part
            self._live[gid] = part
            part.on_retire = lambda _w, gid=gid: self._live.pop(gid, None)
            if part.root_is_local():
                if start == 0:
                    part.launch()
                else:
                    self.net.engine.at(start, part.launch)

    # ------------------------------------------------------------------
    # PartWorm callbacks
    # ------------------------------------------------------------------
    def record_delivery(self, gid: int, node: int, time: float) -> None:
        self.deliveries[(gid, node)] = time

    def _post(self, target: int, time: float, payload) -> None:
        self.outbox.append(
            Envelope(target, time, self.shard_id, self._seq, payload)
        )
        self._seq += 1
        self._messages_sent += 1

    def broadcast_grant(self, worm: PartWorm, route_id: int, h: float) -> None:
        for shard in sorted(worm._participants):
            if shard != self.shard_id:
                self._post(shard, h, GrantFact(worm.gid, route_id, h))

    def send_expand(
        self, worm: PartWorm, route_id: int, when: float, owner: int
    ) -> None:
        self._post(owner, when, ExpandMsg(worm.gid, route_id, when))

    def broadcast_abort(self, worm: PartWorm, reason: str) -> None:
        now = self.net.engine.now
        for shard in sorted(worm._participants):
            if shard != self.shard_id:
                self._post(shard, now, AbortMsg(worm.gid, reason, now))

    # ------------------------------------------------------------------
    # Window protocol
    # ------------------------------------------------------------------
    def next_event_time(self) -> float | None:
        return self.net.engine.next_event_time()

    def sync(self, envelopes: list[Envelope]) -> float | None:
        """Barrier half-step: fold boundary messages in, report readiness.

        Fused so remote transports pay one round trip per barrier for
        message application *and* the next-event poll the coordinator needs
        to place the following window.
        """
        if envelopes:
            self.apply_envelopes(envelopes)
        return self.next_event_time()

    def advance(self, barrier: float | None) -> list[Envelope]:
        """Window half-step: run up to ``barrier`` (None = drain fully),
        handing back the boundary messages the window produced."""
        if barrier is None:
            self.run_all()
        else:
            self.run_window(barrier)
        return self.drain_outbox()

    def run_window(self, end: float) -> int:
        return self.net.engine.run_window(end)

    def run_all(self) -> None:
        """Drain the engine completely (infinite-lookahead fast path)."""
        self.net.engine.run()

    def drain_outbox(self) -> list[Envelope]:
        out, self.outbox = self.outbox, []
        return out

    def apply_envelopes(self, envelopes: list[Envelope]) -> None:
        """Fold a barrier's boundary messages into local state.

        Applied in the canonical ``(time, origin, seq)`` order.  Grant
        facts and aborts take effect immediately (their downstream events
        all target at or after the barrier -- the lookahead invariant);
        expand messages become ordinary engine events at their decode time,
        which the conservative barrier guarantees has not yet been run.
        """
        engine = self.net.engine
        for env in sorted(
            envelopes, key=lambda e: (e.time, e.origin, e.seq)
        ):
            part = self._parts.get(env.payload.worm)
            if part is None:  # pragma: no cover - protocol safety
                raise RuntimeError(
                    f"shard {self.shard_id} received a message for worm "
                    f"{env.payload.worm} it does not participate in"
                )
            msg = env.payload
            if isinstance(msg, GrantFact):
                part.apply_grant_fact(msg.route_id, msg.h)
            elif isinstance(msg, ExpandMsg):
                hop = part._by_route_id[msg.route_id]
                engine.at(msg.time, lambda p=part, h=hop: p.expand_local(h))
            elif isinstance(msg, AbortMsg):
                part.apply_remote_abort(msg.reason)
            else:  # pragma: no cover - type guard
                raise TypeError(f"unknown boundary message {msg!r}")

    # ------------------------------------------------------------------
    # Replicated fault transaction
    # ------------------------------------------------------------------
    def _lead_trace(self, event: str, worm: str, detail: str) -> None:
        """Worker 0 emits a fault-phase record and remembers its position."""
        if self.shard_id == 0:
            self.fault_indices.append(len(self.net.trace))
            self.net.trace.emit(self.net.engine.now, event, worm, detail)

    def prepare_fault(self, link_id: int) -> tuple[str, object]:
        """Phase 1: validate the removal and name the local victims.

        Pure (no state change); every worker computes the same verdict from
        its identical topology replica.  Returns ``("skip", reason)`` when
        the removal would disconnect the graph (or the link is already
        gone), else ``("ok", victim_gids)`` -- the launch-ordered ids of
        live worms holding or awaiting the link's channels *on this shard*.
        """
        try:
            topo_faults.remove_link(self.net.topo, link_id)
        except ValueError as exc:
            return ("skip", str(exc))
        uids = {
            ch.uid
            for (lid, _frm), ch in self.net.fabric.forward.items()
            if lid == link_id
        }
        victims = [
            gid
            for gid, part in sorted(self._live.items())
            if part.touches_local(uids)
        ]
        return ("ok", victims)

    def skip_fault(self, link_id: int, reason: str) -> None:
        self.net.chaos.faults_skipped += 1
        self._lead_trace("fault-skip", "chaos", f"link {link_id}: {reason}")

    def commit_fault(self, link_id: int, victims: list[int]) -> None:
        """Phase 2: the replicated equivalent of the serial injector's fire.

        ``victims`` is the coordinator's launch-ordered union of every
        worker's :meth:`prepare_fault` answer, so the abort records (worker
        0) and the abort bookkeeping (wherever each victim holds hops) agree
        with the serial abort order.  The topology/routing mutation runs on
        every worker -- each holds a full replica.
        """
        net = self.net
        degraded = topo_faults.remove_link(net.topo, link_id)
        net.chaos.faults_fired += 1
        self._lead_trace("fault", "chaos", f"link {link_id} failed")
        for (lid, _frm), ch in net.fabric.forward.items():
            if lid == link_id:
                ch.revoke()
        reason = f"link {link_id} failed"
        for gid in victims:
            self._lead_trace("abort", f"w{gid}", reason)
            part = self._parts.get(gid)
            if part is not None:
                part.apply_remote_abort(reason)
        net.reconfigure(degraded)
        net.chaos.reconfig_latency_total += self.scenario.reconfig_latency
        self._lead_trace(
            "reconfig",
            "chaos",
            f"epoch {net.routing_epoch}, {len(degraded.links)} links remain",
        )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def report(self) -> ShardReport:
        return ShardReport(
            shard_id=self.shard_id,
            deliveries=dict(self.deliveries),
            records=self.net.trace.records(),
            fault_indices=list(self.fault_indices),
            events_fired=self.net.engine.events_fired,
            messages_sent=self._messages_sent,
            dropped_records=self.net.trace.dropped,
        )
