"""Deterministic partitioning of the switch graph for sharded simulation.

A :class:`ShardPlan` assigns every switch of an irregular topology to one of
``num_shards`` worker processes.  Two properties matter:

* **Determinism.**  The plan is a pure function of (topology, shard count,
  seed): the BFS root is a seeded draw, neighbor expansion is sorted, and
  the refinement pass visits switches in a fixed order.  The same inputs
  always yield the same plan, which the byte-identical-trace contract of
  the sharded runner depends on.
* **Small cut.**  Every link whose endpoints land in different shards is a
  *boundary link*: worms crossing it become inter-worker messages, and the
  conservative synchronization window (the *lookahead*) is the minimum
  crossing latency of these links.  Fewer boundary links means fewer
  messages per window; the band partition is therefore refined by a greedy
  Kernighan-Lin-style pass that moves border switches between adjacent
  shards while it strictly reduces the cut and keeps the shard sizes
  balanced.

The partitioner never splits a *node* from its switch: hosts, their
injection/delivery channels, and all per-host resources live in the shard
of the switch they attach to.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.params import SimParams
from repro.topology.graph import NetworkTopology

_REFINE_PASSES = 4
"""Upper bound on greedy refinement sweeps (each sweep is O(links))."""


@dataclass(frozen=True)
class ShardPlan:
    """Immutable switch -> shard assignment plus its derived cut.

    Attributes:
        num_shards: worker count; shards are numbered ``0..num_shards-1``.
        shard_of_switch: per-switch shard id, indexed by switch number.
        boundary_links: ids of links whose two endpoints lie in different
            shards (the inter-worker communication surface).
    """

    num_shards: int
    shard_of_switch: tuple[int, ...]
    boundary_links: frozenset[int]

    def shard_of_node(self, topo: NetworkTopology, node: int) -> int:
        """Shard owning ``node`` (= the shard of its attachment switch)."""
        return self.shard_of_switch[topo.switch_of_node(node)]

    def switches_of(self, shard: int) -> list[int]:
        """Switches assigned to ``shard``, ascending."""
        return [s for s, p in enumerate(self.shard_of_switch) if p == shard]

    def lookahead(self, params: SimParams) -> float:
        """Conservative synchronization window width, in cycles.

        Any influence one shard exerts on another travels across a boundary
        forward channel (header crossing) or through the worm constraint
        system along such a channel; either way it is padded by at least one
        forward-channel crossing delay, ``switch_delay + link_delay`` (see
        docs/sharding.md for the derivation).  With no boundary links the
        shards are causally independent and the lookahead is infinite --
        one window covers the whole run.
        """
        if not self.boundary_links:
            return math.inf
        return float(params.switch_delay + params.link_delay)


def _cut_size(topo: NetworkTopology, shard_of: list[int]) -> int:
    return sum(
        1 for lk in topo.links if shard_of[lk.a.switch] != shard_of[lk.b.switch]
    )


def partition_switches(
    topo: NetworkTopology,
    num_shards: int,
    seed: int = 0,
    refine: bool = True,
) -> ShardPlan:
    """Partition the switch graph into ``num_shards`` balanced shards.

    BFS-band seeding: a breadth-first order from a seeded root switch is
    cut into ``num_shards`` contiguous bands of near-equal size, so each
    shard starts as a ball-like region of the irregular graph.  With
    ``refine`` (the default) a greedy pass then moves boundary switches to
    neighboring shards whenever that strictly shrinks the cut without
    unbalancing the shards by more than one switch.

    Raises ``ValueError`` for a shard count outside ``1..num_switches``.
    """
    n = topo.num_switches
    if not 1 <= num_shards <= n:
        raise ValueError(
            f"num_shards must be in 1..{n} (switch count), got {num_shards}"
        )
    rng = random.Random(seed)
    root = rng.randrange(n)

    # Deterministic BFS order (sorted neighbor expansion, seeded root).
    order: list[int] = []
    seen = {root}
    frontier = [root]
    while frontier:
        order.extend(frontier)
        nxt: list[int] = []
        for sw in frontier:
            for nb in sorted(topo.neighbors(sw)):
                if nb not in seen:
                    seen.add(nb)
                    nxt.append(nb)
        frontier = nxt
    # Disconnected remainders (cannot happen for generated topologies, but
    # hand-built fixtures may pass fragments): append in switch order.
    for sw in range(n):
        if sw not in seen:
            order.append(sw)

    # Contiguous bands of near-equal size: the first (n % num_shards) bands
    # take one extra switch.
    shard_of = [0] * n
    base, extra = divmod(n, num_shards)
    start = 0
    for shard in range(num_shards):
        size = base + (1 if shard < extra else 0)
        for sw in order[start:start + size]:
            shard_of[sw] = shard
        start += size

    if refine and num_shards > 1:
        _refine_cut(topo, shard_of, num_shards)

    boundary = frozenset(
        lk.link_id
        for lk in topo.links
        if shard_of[lk.a.switch] != shard_of[lk.b.switch]
    )
    return ShardPlan(num_shards, tuple(shard_of), boundary)


def _refine_cut(
    topo: NetworkTopology, shard_of: list[int], num_shards: int
) -> None:
    """Greedy boundary refinement: move switches to reduce the cut.

    A switch may move to a shard that some neighbor occupies when the move
    strictly reduces the total cut, keeps every shard non-empty, and keeps
    all shard sizes within one of perfect balance.  Switches are visited in
    ascending order; the loop stops after a sweep with no improvement (or
    after ``_REFINE_PASSES`` sweeps).
    """
    n = topo.num_switches
    sizes = [0] * num_shards
    for p in shard_of:
        sizes[p] += 1
    max_size = -(-n // num_shards)  # ceil: perfect balance upper bound

    for _ in range(_REFINE_PASSES):
        improved = False
        for sw in range(n):
            here = shard_of[sw]
            if sizes[here] <= 1:
                continue
            # Cut edges incident to sw per candidate shard.
            neighbor_shards: dict[int, int] = {}
            for nb in topo.neighbors(sw):
                p = shard_of[nb]
                neighbor_shards[p] = neighbor_shards.get(p, 0) + 1
            local = neighbor_shards.get(here, 0)
            best = None
            for p in sorted(neighbor_shards):
                if p == here or sizes[p] >= max_size:
                    continue
                gain = neighbor_shards[p] - local
                if gain > 0 and (best is None or gain > best[0]):
                    best = (gain, p)
            if best is not None:
                shard_of[sw] = best[1]
                sizes[here] -= 1
                sizes[best[1]] += 1
                improved = True
        if not improved:
            break
