"""Boundary messages exchanged between shard workers at window barriers.

Three message kinds cover every cross-partition influence in the worm
model (see docs/sharding.md for the lookahead proof that makes barrier
delivery conservative):

* :class:`ExpandMsg` -- a worm header finished crossing a boundary forward
  channel; the shard owning the far switch must run the header decode
  (replication) there at ``time = h + routing_delay``.
* :class:`GrantFact` -- a hop was granted at its owning shard; every other
  participating shard folds the grant time into its local tail-time
  constraint solver (the fact unblocks parked constraint walks).
* :class:`AbortMsg` -- the worm hit a revoked channel at its owning shard
  and died; remote shards release the worm's local hops.

Messages travel in :class:`Envelope` order ``(time, origin, seq)``, which
every worker applies identically -- part of the determinism contract.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExpandMsg:
    """Run a worm's header decode at the far side of a boundary channel."""

    worm: int
    route_id: int
    time: float


@dataclass(frozen=True)
class GrantFact:
    """A hop's channel was granted; ``h`` is its header-crossed time."""

    worm: int
    route_id: int
    h: float


@dataclass(frozen=True)
class AbortMsg:
    """The worm aborted (revoked channel) at its requesting shard."""

    worm: int
    reason: str
    time: float


@dataclass(frozen=True)
class Envelope:
    """Routing wrapper: which shard sent what, to whom, in what order.

    ``time`` is the earliest simulated time the payload may take effect;
    the conservative window protocol guarantees it is never before the
    barrier the envelope is delivered at.  ``seq`` is the sender's
    monotonic emission counter -- ``(time, origin, seq)`` is the canonical
    application order at the receiver.
    """

    target: int
    time: float
    origin: int
    seq: int
    payload: ExpandMsg | GrantFact | AbortMsg
