"""The shard-local part of a boundary-spanning worm.

One worm of a :class:`~repro.shard.scenario.ShardScenario` may route across
several partitions.  Each participating shard holds a :class:`PartWorm`:
the *full* static replication skeleton (every hop's channel, parent and
children, resolved against the worker's identically-built fabric), of which
only the **locally owned** hops -- those whose channel leaves a switch of
this shard -- are actually simulated.  Remote hops are mirrors: their grant
times arrive as :class:`~repro.shard.messages.GrantFact` boundary messages
and feed the same closed-form tail-time solver the single-process
:class:`~repro.sim.worm.Worm` uses (the solver is inherited unchanged).

Equivalence to the serial worm, hop by hop:

* a hop is *requested* on exactly one shard -- the one owning its channel's
  source switch -- because header decode (:meth:`expand_local`) always runs
  on the shard of the decoding switch, so channel FIFO arbitration is
  entirely shard-local;
* grant times are facts: broadcast once, applied at the next barrier, they
  unblock remote constraint walks no earlier than the serial walk would
  have resolved (the lookahead argument in docs/sharding.md);
* aborts originate at the requesting shard (revoked channel), emit the one
  serial ``abort`` trace record there, and release remote hops via
  :class:`~repro.shard.messages.AbortMsg`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.flitsim import FlitRoute
from repro.sim.worm import Worm, _Hop, _NotFinal

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.shard.worker import ShardWorker


class PartWorm(Worm):
    """One shard's view of one scenario worm.

    Args:
        worker: the owning shard worker (engine, fabric, outbox).
        gid: global worm id = job index (labels are ``w<gid>``).
        route: the job's static replication tree (channel-key nodes).
        src_node: the job's source node (owner of the injection channel).
    """

    def __init__(
        self, worker: "ShardWorker", gid: int, route: FlitRoute, src_node: int
    ) -> None:
        net = worker.net
        super().__init__(
            net.engine,
            net.params,
            steer=_no_steer,
            on_delivered=lambda node, t: worker.record_delivery(gid, node, t),
            rng=net.rng,
            label=f"w{gid}",
            trace=net.trace,
        )
        self.gid = gid
        self.worker = worker
        self._participants: set[int] = set()
        self._local: list[bool] = []
        self._requested: list[bool] = []
        self._by_route_id: list[_Hop] = []
        self._activations = 0
        self._build_skeleton(route, src_node)

    # ------------------------------------------------------------------
    # Static skeleton
    # ------------------------------------------------------------------
    def _resolve_channel(self, key: tuple):
        fab = self.worker.net.fabric
        if key[0] == "inj":
            return fab.inject[key[1]]
        if key[0] == "fwd":
            return fab.forward[(key[1], key[2])]
        if key[0] == "del":
            return fab.deliver[key[1]]
        raise ValueError(f"unknown route channel key {key!r}")

    def _owner_shard(self, key: tuple) -> int:
        """Shard owning a channel = shard of the switch the channel leaves.

        Every request for the channel is issued by code running at that
        switch (injection at the source, forwarding/delivery at the decode
        switch), so FIFO arbitration never crosses a shard boundary.
        """
        topo, plan = self.worker.net.topo, self.worker.plan
        if key[0] == "inj":
            return plan.shard_of_switch[topo.switch_of_node(key[1])]
        if key[0] == "fwd":
            return plan.shard_of_switch[key[2]]
        return plan.shard_of_switch[topo.switch_of_node(key[1])]  # "del"

    def _build_skeleton(self, route: FlitRoute, src_node: int) -> None:
        """Materialize every route node as a (local or mirror) ``_Hop``.

        Route ids are preorder positions -- the cross-shard hop naming used
        in boundary messages.  Local hops get their real ``idx`` (the
        serial worm's creation-order tie-break) lazily at activation time,
        which reproduces the serial creation order among this shard's hops.
        Every hop is pre-marked ``expanded`` so constraint walks descend to
        the (pre-wired) children and park on grant times -- the walk's
        *value* is what the serial walk computes, only its parking spot
        differs (see module docstring).
        """
        me = self.worker.shard_id
        plan_shard_of_switch = self.worker.plan.shard_of_switch
        local_unreleased = 0
        local_deliveries = 0
        stack: list[tuple[FlitRoute, _Hop | None]] = [(route, None)]
        while stack:
            node, parent = stack.pop(0)
            channel = self._resolve_channel(node.channel)
            owner = self._owner_shard(node.channel)
            self._participants.add(owner)
            hop = _Hop(channel=channel, parent=parent, idx=len(self._hops))
            if parent is not None:
                parent.children.append(hop)
            terminal = node.channel[0] == "del"
            hop.terminal = terminal
            # Serial walks gate on ``expanded`` because a hop's children
            # are unknown until its header is decoded.  Here the skeleton
            # is statically complete, so the gate is kept only where the
            # decode runs on *this* shard (exact serial walk/scheduling
            # parity there, flipped by :meth:`expand_local`); a hop decoded
            # elsewhere is pre-marked expanded -- its ExpandMsg goes to the
            # decode shard, never here, and leaving the gate closed would
            # park local walks on it forever.  Ungranted children
            # (``h is None``) still gate those walks, yielding the same
            # tail values -- see docs/sharding.md.
            if terminal:
                hop.expanded = True
            else:
                decode_owner = plan_shard_of_switch[channel.to_switch]
                hop.expanded = decode_owner != me
            self._hops.append(hop)
            self._by_route_id.append(hop)
            self._local.append(owner == me)
            self._requested.append(False)
            if owner == me:
                local_unreleased += 1
                if terminal:
                    local_deliveries += 1
            for child in node.children:
                stack.append((child, hop))
        self._unreleased = local_unreleased
        self._pending_deliveries = local_deliveries
        self._root = self._by_route_id[0]
        self._src_node = src_node
        self._route_id_of = {id(h): i for i, h in enumerate(self._by_route_id)}  # lint: disable=identity-in-sim -- hops pinned by _by_route_id for the worm's lifetime; ids never escape

    def is_participant(self, shard: int) -> bool:
        return shard in self._participants

    def root_is_local(self) -> bool:
        return self._local[0]

    # ------------------------------------------------------------------
    # Local simulation
    # ------------------------------------------------------------------
    def launch(self) -> None:
        """Fire the injection request (root shard only, at the start time)."""
        self._started = True
        self.start_time = self.engine.now
        self._activate(self._root)

    def _activate(self, hop: _Hop) -> None:
        """Request a locally-owned hop's channel (serial ``_request``)."""
        rid = self._route_id_of[id(hop)]  # lint: disable=identity-in-sim -- same pinned-hop map as above
        hop.idx = self._activations
        self._activations += 1
        self._requested[rid] = True
        if hop.channel.revoked:
            self.abort(f"channel {hop.channel.name} revoked")
            return

        def granted(lane: int) -> None:
            hop.lane = lane
            if self.aborted or hop.released:
                hop.released = True
                hop.channel.release(lane)
                return
            hop.h = self.engine.now + hop.channel.delay
            self._trace("grant", hop.channel.name)
            if len(self._participants) > 1:
                self.worker.broadcast_grant(self, rid, hop.h)
            if not hop.terminal:
                when = hop.h + self.params.routing_delay
                to_switch = hop.channel.to_switch
                owner = self.worker.plan.shard_of_switch[to_switch]
                if owner == self.worker.shard_id:
                    self.engine.at(when, lambda: self.expand_local(hop))
                else:
                    self.worker.send_expand(self, rid, when, owner)
            self._refinalize(hop)

        hop.channel.request(granted)

    def expand_local(self, hop: _Hop) -> None:
        """Header decode at a locally-owned switch: activate the children.

        Mirrors the serial ``_expand`` over the static skeleton: delivery
        children count a pending delivery, forward children abort the worm
        when their (single, statically planned) channel has been revoked,
        and expansion re-attempts the hop's parked constraint walks.
        """
        if self.aborted:
            return
        switch = hop.channel.to_switch
        for child in hop.children:
            if self.aborted:
                return
            if child.terminal:
                self._activate(child)
            else:
                if child.channel.revoked:
                    self.abort(f"no surviving route at switch {switch}")
                    return
                self._activate(child)
        hop.expanded = True
        self._refinalize(hop)

    def _refinalize(self, changed: _Hop) -> None:
        """Serial ``_refinalize`` restricted to locally-owned hops.

        Mirror hops may be the *changed* trigger (a grant fact arrived) and
        may carry parked waiters, but only local hops ever get release and
        delivery events scheduled -- their owner shard schedules theirs.
        """
        if self.aborted:
            return
        candidates = [changed]
        if changed.waiters:
            candidates.extend(changed.waiters)
            changed.waiters = []
        candidates.sort(key=lambda h: h.idx)
        length = self.length
        memo: dict[tuple[int, int], float] = {}
        now = self.engine.now
        attempted: set[int] = set()
        for hop in candidates:
            rid = self._route_id_of[id(hop)]  # lint: disable=identity-in-sim -- pinned-hop map, see _build_skeleton
            if not self._local[rid]:
                continue
            if hop.release_scheduled or rid in attempted:
                continue
            attempted.add(rid)
            try:
                tail = hop.channel.delay + self._send_bound(
                    hop, length - 1, memo
                )
            except _NotFinal as nf:
                nf.blocker.waiters.append(hop)
                continue
            hop.release_scheduled = True
            when = max(tail, now)
            self.engine.at(when, lambda h=hop: self._release(h))
            if hop.terminal:
                node = hop.channel.to_node
                assert node is not None
                self.engine.at(when, lambda n=node: self._delivered(n))

    # ------------------------------------------------------------------
    # Cross-shard facts
    # ------------------------------------------------------------------
    def apply_grant_fact(self, route_id: int, h: float) -> None:
        """Fold a remote hop's grant time into the local solver."""
        hop = self._by_route_id[route_id]
        hop.h = h
        self._refinalize(hop)

    def apply_remote_abort(self, reason: str) -> None:
        """The worm died at another shard: release local holdings silently.

        The originating shard emitted the single serial ``abort`` trace
        record; here only the resource bookkeeping happens.
        """
        if self.aborted or self.finish_time is not None:
            return
        self.aborted = True
        self.abort_reason = reason
        self._release_held()
        if self.on_retire is not None:
            self.on_retire(self)

    def abort(self, reason: str) -> None:
        """Locally-originated abort: trace, release, tell the other shards."""
        if self.aborted or self.finish_time is not None:
            return
        self.aborted = True
        self.abort_reason = reason
        self._trace("abort", reason)
        self._release_held()
        if len(self._participants) > 1:
            self.worker.broadcast_abort(self, reason)
        if self.on_abort is not None:
            self.on_abort(reason)
        if self.on_retire is not None:
            self.on_retire(self)

    def _release_held(self) -> None:
        for rid, hop in enumerate(self._by_route_id):
            if self._local[rid] and hop.h is not None and not hop.released:
                hop.released = True
                hop.channel.release(hop.lane)

    def touches_local(self, channel_uids: set[int]) -> bool:
        """Serial ``touches`` restricted to locally-owned hops.

        Only *requested* hops count: the serial worm materializes a hop the
        moment it queues for the channel, so a skeleton hop this shard has
        not yet activated does not make the worm a fault victim -- it will
        abort later, at request time, via the revoked-channel check, just
        as the serial worm does.
        """
        return any(
            self._requested[rid] and not hop.released
            and hop.channel.uid in channel_uids
            for rid, hop in enumerate(self._by_route_id)
        )


def _no_steer(switch: int, state: object):  # pragma: no cover - never called
    raise RuntimeError("PartWorm replicates along its static skeleton")
