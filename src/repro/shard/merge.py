"""Canonical merge of per-shard trace logs.

Every shard traces only what it simulates, with its own local emission
sequence.  The merge re-emits all records into one fresh
:class:`~repro.sim.tracelog.TraceLog` in the canonical order

* fault-phase records (worker 0's "fault"/"fault-skip", per-victim
  "abort", "reconfig") sort as ``(time, 0, emission_index)`` -- before
  every same-time worm record, mirroring the serial injector's
  early-armed, low-sequence fault events;
* worm records sort as ``(time, 1, shard, local_seq)``.

so the merged :meth:`TraceLog.digest` can be compared byte-for-byte with a
single-process run of the same scenario.  The scheme reproduces the serial
digest whenever same-time records from *different* shards are causally
independent (the usual case -- see the determinism caveat in
docs/sharding.md); the shard determinism suite pins the equality for the
scenarios it ships.
"""

from __future__ import annotations

import hashlib

from repro.shard.worker import ShardReport
from repro.sim.tracelog import TraceLog, TraceRecord


def canonical_digest(records: list[TraceRecord]) -> str:
    """SHA-256 over the records re-sorted by content: ``(time, worm, event,
    detail)``.

    Two traces share a canonical digest exactly when they contain the same
    records at the same simulated times -- the order-insensitive face of
    the byte-identity contract.  Sharded runs always reproduce the serial
    run's canonical digest; the *raw* (emission-ordered) digest is
    additionally byte-identical whenever no same-time records from
    different shards interleave in the serial trace (see the determinism
    caveat in docs/sharding.md).
    """
    h = hashlib.sha256()
    for rec in sorted(
        records, key=lambda r: (r.time, r.worm, r.event, r.detail)
    ):
        h.update(str(rec).encode())
        h.update(b"\n")
    return h.hexdigest()


def merge_traces(reports: list[ShardReport]) -> TraceLog:
    """Merge per-shard reports into one canonical trace.

    Raises if any worker's trace ring evicted records: the merge needs the
    complete per-shard record streams (the per-worker ring is sized far
    beyond any scenario this runner targets, so eviction means the caller
    is using the wrong tool).
    """
    for rep in reports:
        if rep.dropped_records:
            raise RuntimeError(
                f"shard {rep.shard_id} evicted {rep.dropped_records} trace "
                "records; the merged digest would not witness the full run"
            )
    keyed = []
    for rep in reports:
        fault_rank = {idx: k for k, idx in enumerate(rep.fault_indices)}
        for seq, rec in enumerate(rep.records):
            if seq in fault_rank:
                key = (rec.time, 0, fault_rank[seq], 0)
            else:
                key = (rec.time, 1, rep.shard_id, seq)
            keyed.append((key, rec))
    keyed.sort(key=lambda kr: kr[0])
    merged = TraceLog(capacity=max(len(keyed), 1))
    for _key, rec in keyed:
        merged.emit(rec.time, rec.event, rec.worm, rec.detail)
    return merged
