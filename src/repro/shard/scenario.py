"""Scenario model shared by the serial reference and the sharded runner.

A :class:`ShardScenario` is a closed description of one simulation: a
topology, simulation parameters, a list of multidestination *jobs* and an
optional static fault schedule.  Both execution paths -- the plain
single-process :func:`run_serial` and the window-synchronized
:class:`~repro.shard.coordinator.ShardSimulation` -- consume the same
scenario and must produce byte-identical traces; the scenario is therefore
deliberately *static-routed*: every job's replication tree is planned once
on the epoch-0 routing tables (via :func:`repro.sim.crossval.multicast_route`),
exactly as the cross-backend validation suite does.  Adaptive tie-breaking
never draws and schemes never replan, so the only nondeterminism left to
control is event ordering -- the thing the shard protocol is about.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.params import SimParams
from repro.sim.crossval import multicast_route, route_steer
from repro.sim.flitsim import FlitRoute
from repro.sim.network import SimNetwork
from repro.sim.tracelog import TraceLog
from repro.sim.worm import Worm
from repro.topology.graph import NetworkTopology
from repro.topology.irregular import generate_irregular_topology

Job = tuple[int, int, tuple[int, ...]]
"""(start_cycle, source_node, destination_nodes)"""


@dataclass(frozen=True)
class ShardScenario:
    """One closed, static-routed simulation scenario.

    ``fault_pairs`` are ``(time, link_id)`` runtime faults, fired with
    :class:`~repro.chaos.injector.FaultInjector` semantics (revoke both
    directional channels, abort touching worms in launch order,
    reconfigure).  ``reconfig_latency`` mirrors the injector knob.
    """

    topo: NetworkTopology
    params: SimParams
    jobs: tuple[Job, ...]
    fault_pairs: tuple[tuple[float, int], ...] = field(default=())
    reconfig_latency: float = 0.0

    def __post_init__(self) -> None:
        starts = [j[0] for j in self.jobs]
        if starts != sorted(starts):
            raise ValueError(
                "jobs must be sorted by start time (worm launch order "
                "defines the fault-abort order; see docs/sharding.md)"
            )

    def plan_routes(self, routing=None) -> list[FlitRoute]:
        """Static replication tree per job, planned on epoch-0 routing.

        Pass the epoch-0 ``UpDownRouting`` of an already-built network to
        avoid constructing a throwaway one (shard workers do; every worker
        builds identical tables, so the plans are identical too).
        """
        if routing is None:
            routing = SimNetwork(self.topo, self.params).routing
        return [
            multicast_route(self.topo, routing, src, dsts)
            for _start, src, dsts in self.jobs
        ]


def smoke_scenario() -> ShardScenario:
    """The seeded 16-switch / 4-worm multidestination scenario.

    The same scenario ``benchmarks/bench_backends.py`` pins as the CI
    cross-backend smoke baseline; the shard determinism suite reuses it as
    the serial-vs-sharded byte-identity witness.
    """
    params = SimParams(
        adaptive_routing=False, num_switches=16, packet_flits=512
    )
    topo = generate_irregular_topology(params, seed=7)
    jobs = (
        (0, 7, (0, 8, 9, 24)),
        (25, 14, (3, 4, 22, 24)),
        (50, 5, (0, 1, 14, 19)),
        (75, 5, (7, 8, 17, 20)),
    )
    return ShardScenario(topo, params, jobs)


def seeded_scenario(
    num_switches: int,
    num_jobs: int,
    seed: int,
    *,
    hosts_per_switch: int = 2,
    packet_flits: int = 128,
    fanout: int = 4,
    spacing: int = 25,
    link_delay: int = 1,
    switch_delay: int = 1,
) -> ShardScenario:
    """Deterministic cluster-scale scenario generator.

    Draws ``num_jobs`` multidestination sends over a seeded irregular
    topology of ``num_switches`` switches with ``hosts_per_switch`` hosts
    each; job ``i`` starts at ``i * spacing``.  Destination draws retry
    until the merged route is a tree (re-convergent draws are skipped the
    same way for every shard count, keeping the stream stable).
    """
    params = SimParams(
        adaptive_routing=False,
        num_switches=num_switches,
        num_nodes=num_switches * hosts_per_switch,
        packet_flits=packet_flits,
        link_delay=link_delay,
        switch_delay=switch_delay,
    )
    topo = generate_irregular_topology(params, seed=seed)
    net = SimNetwork(topo, params)
    rng = random.Random(seed)
    nodes = topo.num_nodes
    jobs: list[Job] = []
    while len(jobs) < num_jobs:
        src = rng.randrange(nodes)
        dsts = tuple(
            sorted(rng.sample([n for n in range(nodes) if n != src], fanout))
        )
        try:
            multicast_route(topo, net.routing, src, dsts)
        except ValueError:
            continue  # re-convergent draw: skip deterministically
        jobs.append((len(jobs) * spacing, src, dsts))
    return ShardScenario(topo, params, tuple(jobs))


def run_serial(
    scenario: ShardScenario,
) -> tuple[dict[tuple[int, int], float], TraceLog]:
    """Single-process reference execution of a scenario.

    Launches one statically-routed :class:`Worm` per job (labelled
    ``w<i>``), registered with the network so the fault injector sees it,
    and returns ``({(job, node): tail_time}, trace)``.  The trace digest is
    the byte-identity witness the sharded runner is held to.
    """
    from repro.chaos import FaultInjector, FaultSchedule

    net = SimNetwork(scenario.topo, scenario.params)
    net.trace = TraceLog()
    if scenario.fault_pairs:
        injector = FaultInjector(
            net,
            FaultSchedule.from_pairs(list(scenario.fault_pairs)),
            reconfig_latency=scenario.reconfig_latency,
        )
        injector.arm()
    routes = scenario.plan_routes()
    deliveries: dict[tuple[int, int], float] = {}

    for i, ((start, src, _dsts), route) in enumerate(
        zip(scenario.jobs, routes)
    ):
        def launch(i=i, src=src, route=route) -> None:
            worm = Worm(
                net.engine,
                net.params,
                route_steer(net, route),
                on_delivered=lambda n, t, i=i: deliveries.__setitem__(
                    (i, n), t
                ),
                rng=net.rng,
                label=f"w{i}",
                trace=net.trace,
            )
            net.register_worm(worm)
            worm.start(net.fabric.inject[src], route)

        if start == 0:
            launch()
        else:
            net.engine.at(start, launch)
    net.run()
    return deliveries, net.trace
