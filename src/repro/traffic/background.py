"""Unicast background traffic (extension beyond the paper's multicast-only
load experiments).

The paper measures multicast latency "under increasing load consisting of
multicast traffic alone".  Real NOW workloads mix collective and
point-to-point traffic, so this driver injects open-loop Poisson *unicast*
messages (uniform random destinations) as background and measures how a
foreground multicast's latency degrades -- a natural extension experiment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.multicast import make_scheme
from repro.params import SimParams
from repro.sim.messaging import HostReceiver, host_send
from repro.sim.network import SimNetwork
from repro.topology.graph import NetworkTopology


@dataclass(frozen=True)
class BackgroundLoadResult:
    """Foreground multicast latency under unicast background traffic."""

    background_load: float
    """Unicast load in flits/cycle/node."""

    multicast_latency: float
    background_sent: int
    background_delivered: int


class UnicastBackground:
    """Open-loop Poisson unicast generator attached to a network."""

    def __init__(
        self,
        net: SimNetwork,
        load: float,
        until: float,
        seed: int = 4242,
    ) -> None:
        """``load`` is in flits/cycle/node; generation stops at ``until``."""
        if load <= 0:
            raise ValueError("load must be positive")
        self.net = net
        self.load = load
        self.until = until
        self.rng = random.Random(seed)
        self.sent = 0
        self.delivered = 0
        rate = load / net.params.message_flits  # messages/cycle/node
        for node in range(net.topo.num_nodes):
            first = self.rng.expovariate(rate)
            if first < until:
                net.engine.at(first, lambda n=node, r=rate: self._issue(n, r))

    def _issue(self, node: int, rate: float) -> None:
        net = self.net
        dst = self.rng.choice(
            [n for n in range(net.topo.num_nodes) if n != node]
        )
        self.sent += 1
        m = net.params.message_packets
        receiver = HostReceiver(
            net.hosts[dst], m, lambda _t: self._delivered()
        )
        steer = net.unicast_steer(dst)

        def launch() -> None:
            net.hosts[node].launch_worm(
                steer,
                initial_state=None,
                on_delivered=lambda _n, _t: receiver.packet_arrived(),
                label=f"bg:{node}->{dst}",
            )

        host_send(net.hosts[node], [launch for _ in range(m)])
        gap = self.rng.expovariate(rate)
        if net.engine.now + gap < self.until:
            net.engine.at(net.engine.now + gap, lambda: self._issue(node, rate))

    def _delivered(self) -> None:
        self.delivered += 1


def multicast_under_background(
    topo: NetworkTopology,
    params: SimParams,
    scheme_name: str,
    source: int,
    dests: list[int],
    background_load: float,
    warmup: int = 20_000,
    seed: int = 4242,
    **scheme_kw,
) -> BackgroundLoadResult:
    """Measure one multicast's latency amid steady unicast background.

    The background runs for ``warmup`` cycles to reach steady state, the
    foreground multicast fires, and generation continues until it completes.
    """
    net = SimNetwork(topo, params)
    bg = UnicastBackground(
        net, background_load, until=float(warmup) * 50, seed=seed
    )
    done: list[float] = []

    def fire() -> None:
        scheme = make_scheme(scheme_name, **scheme_kw)
        scheme.execute(
            net, source, dests, on_complete=lambda r: done.append(r.latency)
        )

    net.engine.at(warmup, fire)
    # Run until the multicast completes (bounded by the generation horizon).
    while not done and net.engine.pending:
        net.engine.step()
    if not done:
        raise RuntimeError(
            "multicast did not complete under the background horizon "
            f"(load {background_load} likely saturates the network)"
        )
    return BackgroundLoadResult(
        background_load=background_load,
        multicast_latency=done[0],
        background_sent=bg.sent,
        background_delivered=bg.delivered,
    )
