"""Traffic drivers: single-multicast latency and open-loop multicast load
(system S13)."""

from repro.traffic.single import (
    average_single_multicast_latency,
    measure_single_multicast,
)
from repro.traffic.load import (
    LoadPoint,
    run_load_experiment,
    saturated_by_shortfall,
    sweep_load,
)
from repro.traffic.background import (
    BackgroundLoadResult,
    multicast_under_background,
)
from repro.traffic.patterns import PATTERNS, resolve_pattern

__all__ = [
    "measure_single_multicast",
    "average_single_multicast_latency",
    "LoadPoint",
    "run_load_experiment",
    "saturated_by_shortfall",
    "sweep_load",
    "BackgroundLoadResult",
    "multicast_under_background",
    "PATTERNS",
    "resolve_pattern",
]
