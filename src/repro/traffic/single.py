"""Single-multicast latency experiments (Section 4.2 of the paper).

"Exactly one multicast occurs in the system at any given time and there is
no other network traffic" -- the best-case latency of each scheme in
isolation, averaged over several random topologies and several random
source/destination draws per topology.
"""

from __future__ import annotations

import random

from repro.metrics.stats import LatencySummary, summarize
from repro.multicast import make_scheme
from repro.multicast.base import MulticastResult
from repro.params import SimParams
from repro.sim.network import SimNetwork
from repro.topology.graph import NetworkTopology
from repro.topology.irregular import generate_topology_family


def measure_single_multicast(
    topo: NetworkTopology,
    params: SimParams,
    scheme_name: str,
    source: int,
    dests: list[int],
    **scheme_kw,
) -> MulticastResult:
    """Run one isolated multicast to completion and return its result."""
    net = SimNetwork(topo, params)
    scheme = make_scheme(scheme_name, **scheme_kw)
    result = scheme.execute(net, source, dests)
    net.run()
    if not result.complete:
        raise RuntimeError(
            f"scheme {scheme_name!r} did not complete (delivered "
            f"{len(result.delivery_times)}/{len(result.dests)})"
        )
    net.assert_quiescent()
    return result


def draw_multicast(
    rng: random.Random, num_nodes: int, group_size: int
) -> tuple[int, list[int]]:
    """A uniform random (source, destination set) of the given degree."""
    if not 1 <= group_size < num_nodes:
        raise ValueError("group size must be in [1, num_nodes)")
    source = rng.randrange(num_nodes)
    pool = [n for n in range(num_nodes) if n != source]
    return source, rng.sample(pool, group_size)


def average_single_multicast_latency(
    params: SimParams,
    scheme_name: str,
    group_size: int,
    n_topologies: int = 5,
    trials_per_topology: int = 3,
    seed: int = 2024,
    **scheme_kw,
) -> LatencySummary:
    """Mean isolated-multicast latency over topologies and random draws.

    This mirrors the paper's methodology ("our results are averaged over all
    these topologies"); the same seed gives the same draw sequence for every
    scheme so comparisons are paired.
    """
    topologies = generate_topology_family(params, n_topologies)
    latencies: list[float] = []
    for ti, topo in enumerate(topologies):
        rng = random.Random(seed * 1_000_003 + ti)
        for _ in range(trials_per_topology):
            source, dests = draw_multicast(rng, topo.num_nodes, group_size)
            res = measure_single_multicast(
                topo, params, scheme_name, source, dests, **scheme_kw
            )
            latencies.append(res.latency)
    return summarize(latencies)
