"""Open-loop multicast load experiments (Section 4.3 of the paper).

Every node generates multicast operations as a Poisson process; each
operation targets a uniform random destination set of fixed degree ``d``.
The paper's stimulus measure is the *effective applied load*: for a
per-multicast generation load of ``l`` (flits/cycle/node of raw message
data), the effective load is ``l * d`` -- each multicast moves ``d`` copies.

Latency is measured on operations issued after a cold-start window; a point
is *saturated* when the system cannot keep up with the offered load, which we
detect by completion shortfall (operations issued in the measurement window
that never complete by the end of a generous drain period).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.metrics.stats import summarize
from repro.multicast import make_scheme
from repro.multicast.base import MulticastResult
from repro.params import SimParams
from repro.sim.network import SimNetwork
from repro.topology.graph import NetworkTopology


@dataclass(frozen=True)
class LoadPoint:
    """One point on a latency-vs-applied-load curve."""

    effective_load: float
    """Offered load x degree, in flits/cycle/node (the paper's x-axis)."""

    degree: int
    mean_latency: float | None
    """Mean multicast latency of measured completed ops; None if nothing
    completed (deeply saturated)."""

    p95_latency: float | None
    issued: int
    """Operations issued in the measurement window (at or after ``warmup``);
    the statistics population and the saturation denominator."""

    completed: int
    saturated: bool
    """True when the offered load exceeded what the system drained."""

    warmup_ops: int = 0
    """Operations generated before ``warmup`` -- they load the network but
    are excluded from latency statistics and the saturation check."""

    measured_window: float = 0.0
    """Length in cycles of the measurement window (generation end minus
    warmup, after any ``min_measured_ops`` extension).  Zero when warmup
    consumed the whole generation window -- such a point has no measured
    population and must report unsaturated, not divide by zero."""

    @property
    def completion_ratio(self) -> float:
        return self.completed / self.issued if self.issued else 1.0

    @property
    def throughput(self) -> float:
        """Measured completions per cycle; 0.0 on a zero-duration window."""
        if self.measured_window <= 0:
            return 0.0
        return self.completed / self.measured_window


def saturated_by_shortfall(
    issued: int, completed: int, threshold: float
) -> bool:
    """The completion-shortfall saturation rule.

    A load point saturates when strictly fewer than ``threshold * issued``
    of the measured operations completed within the drain window; a point
    sitting exactly on the threshold (or with nothing measured) does not.
    """
    return issued > 0 and completed < threshold * issued


def run_load_experiment(
    topo: NetworkTopology,
    params: SimParams,
    scheme_name: str,
    degree: int,
    effective_load: float,
    duration: int = 200_000,
    warmup: int = 20_000,
    drain_factor: float = 1.0,
    seed: int = 99,
    saturation_threshold: float = 0.9,
    min_measured_ops: int = 30,
    pattern: "str | None" = None,
    **scheme_kw,
) -> LoadPoint:
    """Apply Poisson multicast traffic at one load point and measure latency.

    Args:
        degree: destinations per multicast (the paper's "d-way").
        effective_load: ``l * d`` in flits/cycle/node.
        duration: generation window in cycles.
        warmup: ops issued before this time are excluded from statistics
            (the paper's cold-start of the first measurement interval).
        drain_factor: after generation stops, the simulation runs a further
            ``drain_factor * duration`` cycles so in-flight ops can finish.
        saturation_threshold: a point is saturated when fewer than this
            fraction of measured ops completed within the drain window.
        min_measured_ops: the generation window is extended (never shortened)
            so the whole system is expected to issue at least this many
            measured operations -- very light loads with long messages would
            otherwise produce empty samples in short runs.
        pattern: destination-set distribution -- a name from
            :data:`repro.traffic.patterns.PATTERNS` or a callable; default
            uniform (the paper's draw).
    """
    if degree < 1 or degree >= topo.num_nodes:
        raise ValueError("degree must be in [1, num_nodes)")
    if effective_load <= 0:
        raise ValueError("effective load must be positive")
    from repro.traffic.patterns import resolve_pattern

    draw_dests = resolve_pattern(pattern)
    net = SimNetwork(topo, params)
    scheme = make_scheme(scheme_name, **scheme_kw)
    scheme.enable_plan_cache()  # deterministic plans; pure speed-up
    rng = random.Random(seed)
    # ops per cycle per node: raw load l = effective / d, in flits/cyc/node;
    # one op injects message_flits flits.
    rate = effective_load / (degree * params.message_flits)
    if min_measured_ops > 0:
        needed = warmup + min_measured_ops / (rate * topo.num_nodes)
        duration = max(duration, int(needed))

    measured: list[MulticastResult] = []
    warmup_ops = 0

    def issue(node: int) -> None:
        nonlocal warmup_ops
        t = net.engine.now
        dests = draw_dests(rng, topo, node, degree)
        res = scheme.execute(net, node, dests)
        if t >= warmup:
            measured.append(res)
        else:
            warmup_ops += 1
        # next arrival for this node
        gap = rng.expovariate(rate)
        if t + gap < duration:
            net.engine.at(t + gap, lambda: issue(node))

    for node in range(topo.num_nodes):
        first = rng.expovariate(rate)
        if first < duration:
            net.engine.at(first, lambda n=node: issue(n))

    net.run(until=duration + drain_factor * duration)
    # Drop anything still outstanding past the drain horizon.
    completed = [r for r in measured if r.complete]
    lat = [r.latency for r in completed]
    summary = summarize(lat) if lat else None
    # A warmup at or past the generation end leaves a zero-duration
    # measurement window: nothing is measured, so the saturation rule sees
    # issued == 0 and reports False (the shortfall rule's vacuous case),
    # and the throughput property guards the division.
    return LoadPoint(
        effective_load=effective_load,
        degree=degree,
        mean_latency=summary.mean if summary else None,
        p95_latency=summary.p95 if summary else None,
        issued=len(measured),
        completed=len(completed),
        saturated=saturated_by_shortfall(
            len(measured), len(completed), saturation_threshold
        ),
        warmup_ops=warmup_ops,
        measured_window=float(max(0, duration - warmup)),
    )


def sweep_load(
    topo: NetworkTopology,
    params: SimParams,
    scheme_name: str,
    degree: int,
    loads: list[float],
    **kw,
) -> list[LoadPoint]:
    """Latency-vs-load curve: one :func:`run_load_experiment` per point."""
    return [
        run_load_experiment(topo, params, scheme_name, degree, load, **kw)
        for load in loads
    ]
