"""Destination-set distributions and arrival processes for traffic.

The paper draws destination sets uniformly; real collective traffic is
often structured.  The *spatial* patterns plug into the load driver
(``pattern=``) and let extension experiments ask how locality changes the
NI-vs-switch answer.  The *temporal* arrival processes at the bottom drive
the open-loop collective workload engine (:mod:`repro.workloads`): they
emit unit-rate arrival clocks that the engine scales by the offered rate,
so the op sequence is rate-independent by construction.

A pattern is ``fn(rng, topo, source, degree) -> list[int]`` returning
``degree`` distinct destinations excluding the source.  An arrival process
is ``fn(rng) -> Iterator[float]`` yielding a nondecreasing unit-rate
arrival time per operation, forever.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator

from repro.topology.graph import NetworkTopology

PatternFn = Callable[[random.Random, NetworkTopology, int, int], list[int]]


def uniform_pattern(rng: random.Random, topo: NetworkTopology,
                    source: int, degree: int) -> list[int]:
    """Uniform over all other nodes (the paper's draw)."""
    pool = [n for n in range(topo.num_nodes) if n != source]
    return rng.sample(pool, degree)


def clustered_pattern(rng: random.Random, topo: NetworkTopology,
                      source: int, degree: int) -> list[int]:
    """Prefer nodes topologically close to the source.

    Candidates are weighted by 1/(1 + switch-graph distance); models
    collectives over co-located process groups.
    """
    from repro.topology.analysis import switch_distances

    src_sw = topo.switch_of_node(source)
    dist = switch_distances(topo, src_sw)
    pool = [n for n in range(topo.num_nodes) if n != source]
    chosen: list[int] = []
    candidates = list(pool)
    while len(chosen) < degree:
        weights = [
            1.0 / (1 + dist[topo.switch_of_node(n)]) for n in candidates
        ]
        pick = rng.choices(range(len(candidates)), weights=weights)[0]
        chosen.append(candidates.pop(pick))
    return chosen


def hotspot_pattern(rng: random.Random, topo: NetworkTopology,
                    source: int, degree: int,
                    hotspot_fraction: float = 0.25,
                    hotspot_weight: float = 8.0) -> list[int]:
    """A fixed quarter of the nodes is ``hotspot_weight`` times likelier.

    Models popular servers/root processes drawing most of the traffic.
    """
    n = topo.num_nodes
    n_hot = max(1, int(n * hotspot_fraction))
    pool = [x for x in range(n) if x != source]
    chosen: list[int] = []
    candidates = list(pool)
    while len(chosen) < degree:
        weights = [
            hotspot_weight if c < n_hot else 1.0 for c in candidates
        ]
        pick = rng.choices(range(len(candidates)), weights=weights)[0]
        chosen.append(candidates.pop(pick))
    return chosen


def single_switch_pattern(rng: random.Random, topo: NetworkTopology,
                          source: int, degree: int) -> list[int]:
    """All destinations on one (random) switch, as far as its population
    allows; spills to a uniform draw when the switch is too small."""
    switches = [
        s for s in range(topo.num_switches) if topo.nodes_on_switch(s)
    ]
    sw = rng.choice(switches)
    local = [n for n in topo.nodes_on_switch(sw) if n != source]
    rng.shuffle(local)
    chosen = local[:degree]
    if len(chosen) < degree:
        rest = [
            n for n in range(topo.num_nodes)
            if n != source and n not in chosen
        ]
        chosen += rng.sample(rest, degree - len(chosen))
    return chosen


PATTERNS: dict[str, PatternFn] = {
    "uniform": uniform_pattern,
    "clustered": clustered_pattern,
    "hotspot": hotspot_pattern,
    "single-switch": single_switch_pattern,
}
"""Registry consumed by the load driver's ``pattern`` argument."""


def resolve_pattern(pattern: str | PatternFn | None) -> PatternFn:
    """Name or callable -> callable (None = uniform)."""
    if pattern is None:
        return uniform_pattern
    if callable(pattern):
        return pattern
    try:
        return PATTERNS[pattern]
    except KeyError:
        raise ValueError(
            f"unknown pattern {pattern!r}; choose from {sorted(PATTERNS)}"
        )


# ----------------------------------------------------------------------
# Temporal arrival processes (unit rate; the workload engine scales time)
# ----------------------------------------------------------------------
ArrivalProcess = Callable[[random.Random], Iterator[float]]
"""``fn(rng) -> iterator`` of nondecreasing unit-rate arrival times.

Both built-in processes consume exactly one ``rng`` draw per emitted
arrival, so switching processes never desynchronises any stream drawn from
the same :class:`random.Random` afterwards.
"""

MLSTEP_BURST = 8
"""Operations per training step of the bursty ML-step process."""

_MLSTEP_SPREAD = 0.5
"""Intra-burst spacing scale, in unit-rate time per op (must stay < 1 so
bursts never overrun their step and the clock stays monotone)."""


def poisson_arrivals(rng: random.Random) -> Iterator[float]:
    """Memoryless arrivals: i.i.d. unit-mean exponential gaps."""
    t = 0.0
    while True:
        t += rng.expovariate(1.0)
        yield t


def mlstep_arrivals(rng: random.Random) -> Iterator[float]:
    """Bursty ML-step arrivals (synchronized training iterations).

    Time advances in steps of ``MLSTEP_BURST`` unit-rate units; each step
    fires a burst of ``MLSTEP_BURST`` operations bunched at the step start
    with small jittered gaps (stragglers), then the line goes quiet until
    the next step.  Long-run average rate is 1 op per unit time -- the same
    offered load as the Poisson process, delivered in bursts.
    """
    step = 0
    while True:
        t = float(step * MLSTEP_BURST)
        for _ in range(MLSTEP_BURST):
            t += _MLSTEP_SPREAD * rng.random()
            yield t
        step += 1


ARRIVAL_PROCESSES: dict[str, ArrivalProcess] = {
    "poisson": poisson_arrivals,
    "mlstep": mlstep_arrivals,
}
"""Registry consumed by the workload engine's ``process`` argument."""


def resolve_arrival_process(process: str | ArrivalProcess) -> ArrivalProcess:
    """Name or callable -> callable."""
    if callable(process):
        return process
    try:
        return ARRIVAL_PROCESSES[process]
    except KeyError:
        raise ValueError(
            f"unknown arrival process {process!r}; choose from "
            f"{sorted(ARRIVAL_PROCESSES)}"
        )
