"""The four multicast schemes compared in the paper (systems S9-S12).

* :class:`UnicastBinomialScheme` -- the classical multi-phase software
  multicast over unicast messages (Section 3.1 baseline).
* :class:`NIKBinomialScheme` -- NI-based multicast over a k-binomial tree
  with FPFS smart-NI forwarding (Section 3.2.1).
* :class:`TreeWormScheme` -- switch-based single-phase multicast with one
  bit-string-encoded multidestination worm (Section 3.2.3).
* :class:`PathWormScheme` -- switch-based multi-drop path-based multicast
  with MDP-LG worm selection and multi-phase scheduling (Section 3.2.4).
"""

from repro.multicast.base import MulticastResult, MulticastScheme
from repro.multicast.binomial import UnicastBinomialScheme, build_binomial_tree
from repro.multicast.kbinomial import NIKBinomialScheme, build_k_binomial_tree
from repro.multicast.treeworm import TreeWormScheme, plan_tree_worm
from repro.multicast.pathworm import PathWormScheme, plan_path_worms

SCHEMES = {
    "binomial": UnicastBinomialScheme,
    "ni": NIKBinomialScheme,
    "tree": TreeWormScheme,
    "path": PathWormScheme,
}
"""Registry of scheme name -> class, as used by the experiment harness."""


def make_scheme(name: str, **kw) -> MulticastScheme:
    """Instantiate a scheme by registry name."""
    try:
        cls = SCHEMES[name]
    except KeyError:
        raise ValueError(f"unknown scheme {name!r}; choose from {sorted(SCHEMES)}")
    return cls(**kw)


__all__ = [
    "MulticastResult",
    "MulticastScheme",
    "UnicastBinomialScheme",
    "NIKBinomialScheme",
    "TreeWormScheme",
    "PathWormScheme",
    "build_binomial_tree",
    "build_k_binomial_tree",
    "plan_tree_worm",
    "plan_path_worms",
    "SCHEMES",
    "make_scheme",
]
