"""Tree-based single-worm multicast with bit-string headers (system S11).

The strongest switch-supported scheme the paper studies (Sivaram, Panda &
Stunkel, PCRCW'97): the source encodes the whole destination set as an
N-bit string in the worm header.  The worm climbs up-direction links to the
nearest ancestor switch whose down-reachability covers every destination,
then replicates downward: each switch compares the header against the
reachability string of each down output port, forwards a copy with a
suitably masked header through every matching port, and delivers local
copies to attached destinations.  One worm, one communication phase, one
software overhead at the source.

Hardware-faithful details we model:

* Destination bits are assigned to exactly *one* matching down port (the
  copy's header is "modified" per the paper), so no duplicate deliveries;
  we resolve the port choice like a priority encoder programmed for shortest
  down-distance (tie: lowest link id).
* Destinations attached to switches the worm crosses -- including during the
  up phase -- are dropped locally and stripped from the header.
* The up path is fixed per worm (chosen at encode time toward the covering
  ancestor); adaptivity applies among parallel links to the same next switch.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.multicast.base import MulticastResult, MulticastScheme
from repro.sim.messaging import HostReceiver, host_send, host_send_multiworm
from repro.sim.network import SimNetwork
from repro.sim.worm import Deliver, Forward


@dataclass(frozen=True)
class TreeWormPlan:
    """Static route plan for one tree-based multidestination worm."""

    source_switch: int
    turn_switch: int
    up_switch_path: tuple[int, ...]
    """Switch sequence from the source switch to the turn switch, inclusive."""


def _down_distance_table(net: SimNetwork) -> dict[int, dict[int, int]]:
    """dist[s][t] = minimum number of down traversals from s to t."""
    topo, rt = net.topo, net.routing
    dist: dict[int, dict[int, int]] = {}
    for s in range(topo.num_switches):
        d = {s: 0}
        frontier = deque([s])
        while frontier:
            u = frontier.popleft()
            for lk in rt.down_links_of(u):
                v = lk.other_end(u).switch
                if v not in d:
                    d[v] = d[u] + 1
                    frontier.append(v)
        dist[s] = d
    return dist


def plan_tree_worm(net: SimNetwork, source_switch: int,
                   dests: list[int]) -> TreeWormPlan:
    """Choose the covering ancestor and up path for a destination set.

    BFS over up-direction links from the source switch; the first (shallowest,
    then lowest-id) switch whose down-reachability covers all destinations
    becomes the turn.  The root always covers everything, so a turn exists.
    """
    rt, reach = net.routing, net.reach
    dset = frozenset(dests)
    parent: dict[int, int] = {source_switch: -1}
    frontier = [source_switch]
    while frontier:
        for s in sorted(frontier):
            if reach.covers(s, dset):
                path = [s]
                while parent[path[-1]] != -1:
                    path.append(parent[path[-1]])
                path.reverse()
                return TreeWormPlan(source_switch, s, tuple(path))
        nxt = []
        for s in sorted(frontier):
            for lk in rt.up_links_of(s):
                t = lk.other_end(s).switch
                if t not in parent:
                    parent[t] = s
                    nxt.append(t)
        frontier = nxt
    raise AssertionError(
        "no covering ancestor found -- up*/down* invariant violated"
    )


def verify_tree_plan(net: SimNetwork, plan: TreeWormPlan,
                     dests: list[int]) -> list[str]:
    """Statically check a (possibly patched) tree-worm route plan.

    The tree analogue of :func:`repro.multicast.pathworm.verify_plan`,
    used by the group layer to accept or reject an incrementally grafted
    plan.  Returns human-readable problems (empty when the plan is sound):

    * the up path starts at the source switch, ends at the turn switch,
      and each consecutive pair is joined by an up-direction link (so the
      climb is a legal up* prefix by construction);
    * the turn switch down-covers every destination not already dropped
      at a switch on the up path (the down* suffix exists -- the header
      decode then only ever follows down links).
    """
    topo, rt, reach = net.topo, net.routing, net.reach
    problems: list[str] = []
    path = plan.up_switch_path
    if not path:
        return ["up path is empty"]
    if path[0] != plan.source_switch:
        problems.append(
            f"up path starts at switch {path[0]}, "
            f"not the source switch {plan.source_switch}")
    if path[-1] != plan.turn_switch:
        problems.append(
            f"up path ends at switch {path[-1]}, "
            f"not the turn switch {plan.turn_switch}")
    if len(set(path)) != len(path):
        problems.append("up path revisits a switch")
    for a, b in zip(path, path[1:]):
        if not any(
            lk.other_end(a).switch == b for lk in rt.up_links_of(a)
        ):
            problems.append(f"no up-direction link from switch {a} to {b}")
    remaining = frozenset(dests)
    for s in path:
        remaining = remaining - frozenset(topo.nodes_on_switch(s))
    if not reach.covers(plan.turn_switch, remaining):
        uncovered = sorted(remaining - reach.down_reach(plan.turn_switch))
        problems.append(
            f"turn switch {plan.turn_switch} does not down-cover "
            f"destinations {uncovered}")
    return problems


class TreeWormScheme(MulticastScheme):
    """Single-phase switch-based multicast via tree-based multi worms.

    By default one worm carries the whole destination set (the paper's
    scheme: an N-bit header names every node).  ``max_header_dests`` caps
    how many destinations one worm header can encode -- the hardware-cost
    concern the paper raises in Section 3.3 ("depending on the size of the
    bit string ... the cost of such logic may be significant") -- splitting
    the set into several worms injected back to back, still in one
    communication phase.
    """

    name = "tree"

    def __init__(self, max_header_dests: int | None = None) -> None:
        if max_header_dests is not None and max_header_dests < 1:
            raise ValueError("max_header_dests must be >= 1")
        self.max_header_dests = max_header_dests

    def chunk_dests(self, net: SimNetwork, source: int,
                    dests: list[int]) -> list[list[int]]:
        """Partition the destination set into per-worm header chunks.

        Destinations are clustered by switch (far clusters first) before
        chunking so each worm's subtree stays topologically compact.
        """
        from repro.multicast.ordering import contention_aware_order

        if self.max_header_dests is None or len(dests) <= self.max_header_dests:
            return [list(dests)]
        ordered = contention_aware_order(net.topo, net.routing, source, dests)
        k = self.max_header_dests
        return [ordered[i:i + k] for i in range(0, len(ordered), k)]

    def plan(self, net: SimNetwork, source: int, dests: list[int]) -> TreeWormPlan:
        """The (single, uncapped) worm's route plan (exposed for tests)."""
        return plan_tree_worm(net, net.topo.switch_of_node(source), dests)

    def make_steer(
        self,
        net: SimNetwork,
        plan: TreeWormPlan,
        dests: list[int],
        down_dist: dict[int, dict[int, int]] | None = None,
    ) -> Callable:
        """Build the worm steering function implementing header decode.

        Worm state is ``("up", i, remaining)`` while climbing (``i`` indexes
        the up path) or ``("down", remaining)`` during distribution, with
        ``remaining`` the set of destination bits still in the header copy.
        """
        topo, rt, fab = net.topo, net.routing, net.fabric
        if down_dist is None:
            down_dist = _down_distance_table(net)

        def local_drops(switch: int, remaining: frozenset[int]):
            instrs = []
            here = frozenset(topo.nodes_on_switch(switch)) & remaining
            for node in sorted(here):
                instrs.append(Deliver(fab.deliver[node]))
            return instrs, remaining - here

        def distribute_down(switch: int, remaining: frozenset[int]):
            """Priority-encode remaining header bits onto down ports."""
            instrs, remaining = local_drops(switch, remaining)
            assignment: dict[int, set[int]] = {}
            link_of: dict[int, object] = {}
            for d in sorted(remaining):
                t = topo.switch_of_node(d)
                best = None
                for lk in rt.down_links_of(switch):
                    v = lk.other_end(switch).switch
                    dd = down_dist[v].get(t)
                    if dd is None:
                        continue
                    key = (dd, lk.link_id)
                    if best is None or key < best[0]:
                        best = (key, lk)
                if best is None:
                    raise AssertionError(
                        f"switch {switch} cannot reach destination {d} "
                        "downward despite covering it"
                    )
                lk = best[1]
                assignment.setdefault(lk.link_id, set()).add(d)
                link_of[lk.link_id] = lk
            for link_id in sorted(assignment):
                lk = link_of[link_id]
                subset = frozenset(assignment[link_id])
                ch = fab.forward_channel(lk, switch)
                instrs.append(Forward([(ch, ("down", subset))]))
            return instrs

        def steer(switch: int, state):
            mode = state[0]
            if mode == "down":
                return distribute_down(switch, state[1])
            _tag, idx, remaining = state
            assert plan.up_switch_path[idx] == switch
            if switch == plan.turn_switch:
                return distribute_down(switch, remaining)
            instrs, remaining = local_drops(switch, remaining)
            nxt = plan.up_switch_path[idx + 1]
            # Adaptivity among parallel up links to the same next switch.
            options = [
                (fab.forward_channel(lk, switch), ("up", idx + 1, remaining))
                for lk in rt.up_links_of(switch)
                if lk.other_end(switch).switch == nxt
            ]
            if remaining or not instrs:
                instrs.append(Forward(options))
            return instrs

        return steer

    def execute(
        self,
        net: SimNetwork,
        source: int,
        dests: list[int],
        on_complete: Callable[[MulticastResult], None] | None = None,
    ) -> MulticastResult:
        result = self._new_result(net, source, dests)
        dlist = list(result.dests)
        m = net.params.message_packets
        receivers = {
            d: HostReceiver(
                net.hosts[d],
                m,
                on_delivered=lambda t, n=d: result._record(n, t, on_complete),
            )
            for d in dlist
        }

        def make_launcher(steer, initial_state) -> Callable[[], None]:
            def launch() -> None:
                net.hosts[source].launch_worm(
                    steer,
                    initial_state=initial_state,
                    on_delivered=lambda n, _t: receivers[n].packet_arrived(),
                    label=f"tree:{source}",
                )

            return launch

        down_dist = self._cached_plan(
            net, ("downdist",), lambda: _down_distance_table(net)
        )
        chunks = self._cached_plan(
            net,
            ("chunks", source, result.dests),
            lambda: self.chunk_dests(net, source, dlist),
        )
        groups: list[list[Callable[[], None]]] = []
        for chunk in chunks:

            def plan_chunk(c=chunk):
                p = plan_tree_worm(net, net.topo.switch_of_node(source), c)
                return p, self.make_steer(net, p, c, down_dist)

            _plan, steer = self._cached_plan(
                net, ("worm", source, tuple(chunk)), plan_chunk
            )
            state = ("up", 0, frozenset(chunk))
            groups.append([make_launcher(steer, state) for _ in range(m)])
        if len(groups) == 1:
            host_send(net.hosts[source], groups[0])
        else:
            host_send_multiworm(net.hosts[source], groups)
        return result
