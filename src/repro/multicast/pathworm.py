"""Multi-drop path-based multicast with MDP-LG scheduling (system S12).

The second switch-supported scheme the paper studies (Kesavan & Panda,
PCRCW'97): a *multi-drop path-based* worm follows a single legal up*/down*
path; at every switch along the path it may replicate to the ports of
attached destination nodes and to at most one further switch port.  Because
one path rarely strings together every destination's switch, an arbitrary
multicast needs several worms, organised in *phases*: destinations covered in
phase ``p`` act as secondary sources in phase ``p+1`` (recursive doubling of
the sender pool), and each phase's worms are chosen to cover as many
still-uncovered destinations as possible.

The paper uses the **MDP-LG** ("Multi-Drop Path-based Less Greedy")
algorithm.  The original pseudo-code is not in the (OCR-degraded) text, so we
reconstruct it from its description -- "finds a small number of multi worms
to cover the set and decides how to send these worms in multiple phases so
as to reduce contention":

* **worm search** (:func:`best_single_worm`): a multi-drop worm "uses almost
  exactly the same path followed by a unicast worm from a source to one of
  its destinations" (Section 3.2.4), so the candidate set is every *minimal
  legal path* from the sender to each still-uncovered destination; a
  candidate covers every uncovered destination attached to a switch it
  crosses.
* **greedy vs. less-greedy selection**: plain greedy maximises (coverage,
  -path length).  The *less greedy* variant, used by default, additionally
  prefers -- among candidates of equal coverage -- paths that reach the
  farthest destinations, leaving nearby destinations (cheap for any later
  secondary source) to subsequent phases; this balances phase load, which is
  how the LG variant earns its name.
* **phase schedule**: "worms are transmitted in multiple phases with the
  destinations in a phase acting as secondary sources in succeeding phases",
  and "a phase finishes only when all the packets of the message arrive at an
  intermediate destination: only then can the node initiate the ... worm of
  the next phase" (Section 4.2.3).  We therefore assign *at most one worm per
  sender*: phase 1 is the source's worm; every destination covered so far is
  an eligible sender for the next phase.  The phase boundary then needs no
  global barrier -- it is exactly the local "I have the whole message"
  dependency at each secondary source.

Interior destinations use the *conventional* NI path (full host receive,
then host send) -- the paper explicitly withholds smart-NI support from the
switch-based schemes to keep the comparison clean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.multicast.base import MulticastResult, MulticastScheme
from repro.routing.paths import is_legal_path, path_switches
from repro.routing.updown import Phase, UpDownRouting
from repro.sim.messaging import HostReceiver, host_send
from repro.sim.network import SimNetwork
from repro.sim.worm import Deliver, Forward
from repro.topology.graph import SwitchLink


@dataclass(frozen=True)
class PathWormPlan:
    """One multi-drop worm: its link path and per-position drop lists."""

    sender: int
    switch_path: tuple[int, ...]
    links: tuple[SwitchLink, ...]
    drops: tuple[tuple[int, ...], ...]
    """``drops[i]`` = nodes dropped at ``switch_path[i]`` (a path may cross
    the same switch twice -- once climbing, once descending -- so drops are
    keyed by path position, not by switch)."""

    @property
    def covered(self) -> frozenset[int]:
        return frozenset(n for nodes in self.drops for n in nodes)

    @property
    def deepest_drop(self) -> int:
        """The first destination dropped at the last dropping position (the
        worm's secondary-source representative)."""
        for nodes in reversed(self.drops):
            if nodes:
                return nodes[0]
        raise ValueError("worm drops nothing")


@dataclass(frozen=True)
class MulticastPathPlan:
    """Full MDP plan: worms grouped by phase, in send order per sender."""

    phases: tuple[tuple[PathWormPlan, ...], ...]

    @property
    def worms(self) -> list[PathWormPlan]:
        return [w for ph in self.phases for w in ph]

    @property
    def num_phases(self) -> int:
        return len(self.phases)


# ----------------------------------------------------------------------
# Worm search
# ----------------------------------------------------------------------
MAX_PATHS_PER_DEST = 24
"""Cap on minimal-path enumeration per anchor destination (the paper's
networks have few parallel minimal routes; the cap guards degenerate
topologies)."""


def _minimal_paths(
    rt: UpDownRouting, src_switch: int, dst_switch: int
) -> list[list[SwitchLink]]:
    """Up to MAX_PATHS_PER_DEST minimal legal link paths between switches."""
    results: list[list[SwitchLink]] = []

    def walk(here: int, phase, acc: list[SwitchLink]) -> bool:
        if here == dst_switch:
            results.append(list(acc))
            return len(results) < MAX_PATHS_PER_DEST
        for hop in rt.next_hops(here, phase, dst_switch):
            acc.append(hop.link)
            keep_going = walk(hop.to_switch, hop.next_phase, acc)
            acc.pop()
            if not keep_going:
                return False
        return True

    walk(src_switch, Phase.UP, [])
    return results


def best_single_worm(
    net: SimNetwork,
    sender: int,
    remaining: frozenset[int],
    strategy: str = "lg",
) -> PathWormPlan:
    """Find the best multi-drop worm from ``sender`` over ``remaining``.

    Candidates are minimal legal unicast paths from the sender's switch to
    each uncovered destination's switch (the worm "uses almost exactly the
    same path followed by a unicast worm ... to one of its destinations");
    each candidate covers all uncovered destinations on switches it crosses.
    Selection keys: greedy maximises (coverage, -length); the less-greedy
    default additionally prefers anchoring on *far* destinations, leaving
    near ones (cheap for any later secondary source) to later phases.
    """
    if not remaining:
        raise ValueError("no destinations remaining")
    if strategy not in ("lg", "greedy"):
        raise ValueError(f"unknown strategy {strategy!r}")
    topo, rt = net.topo, net.routing
    start = topo.switch_of_node(sender)
    dest_by_switch: dict[int, list[int]] = {}
    for d in sorted(remaining):
        dest_by_switch.setdefault(topo.switch_of_node(d), []).append(d)

    best_key: tuple | None = None
    best_path: list[SwitchLink] | None = None
    for anchor_switch in sorted(dest_by_switch):
        for links in _minimal_paths(rt, start, anchor_switch):
            switches = path_switches(start, links)
            coverage = sum(
                len(dest_by_switch.get(s, ()))
                for s in dict.fromkeys(switches)
            )
            far = rt.distance(start, anchor_switch)
            if strategy == "lg":
                key = (coverage, far, -len(links))
            else:
                key = (coverage, -len(links), far)
            if best_key is None or key > best_key:
                best_key = key
                best_path = links
    assert best_path is not None and best_key is not None
    full = path_switches(start, best_path)

    # Per-position drops (each destination dropped at its first chance), and
    # trim trailing switches past the last drop (they would carry nothing).
    covered: set[int] = set()
    drops: list[tuple[int, ...]] = []
    last_useful = 0
    for i, s in enumerate(full):
        here = tuple(d for d in dest_by_switch.get(s, []) if d not in covered)
        drops.append(here)
        if here:
            covered.update(here)
            last_useful = i
    full = full[: last_useful + 1]
    drops = drops[: last_useful + 1]
    links = list(best_path[:last_useful])
    if not is_legal_path(rt, full[0], links):
        raise AssertionError("constructed worm path violates up*/down*")
    return PathWormPlan(
        sender=sender,
        switch_path=tuple(full),
        links=tuple(links),
        drops=tuple(drops),
    )


# ----------------------------------------------------------------------
# Phase scheduling
# ----------------------------------------------------------------------
def plan_path_worms(
    net: SimNetwork,
    source: int,
    dests: list[int],
    strategy: str = "lg",
) -> MulticastPathPlan:
    """The MDP-LG (or MDP-G) multi-phase worm schedule.

    One worm per sender, recursive doubling of the sender pool: phase 1 is
    the source's single worm; every destination covered in phases ``<= p``
    that has not yet sent is eligible to send one worm in phase ``p + 1``.
    """
    remaining = frozenset(dests)
    available: list[int] = [source]
    used: set[int] = set()
    phases: list[tuple[PathWormPlan, ...]] = []
    while remaining:
        phase: list[PathWormPlan] = []
        covered_this_phase: list[int] = []
        for s in available:
            if s in used:
                continue
            if not remaining:
                break
            worm = best_single_worm(net, s, remaining, strategy=strategy)
            used.add(s)
            remaining = remaining - worm.covered
            phase.append(worm)
            # Deterministic sender-pool order: deepest drop first (it is
            # farthest out, diversifying the next phase's send locations).
            covered_this_phase.append(worm.deepest_drop)
            covered_this_phase.extend(
                d for d in sorted(worm.covered) if d != worm.deepest_drop
            )
        if not phase:
            raise AssertionError("no eligible sender despite remaining dests")
        available = available + covered_this_phase
        phases.append(tuple(phase))
    return MulticastPathPlan(phases=tuple(phases))


# ----------------------------------------------------------------------
# Static plan verification
# ----------------------------------------------------------------------
def verify_plan(
    topo,
    rt: UpDownRouting,
    source: int,
    dests: list[int],
    plan: MulticastPathPlan,
) -> list[str]:
    """Statically check a plan against the paper's structural invariants.

    Returns a list of human-readable violations (empty when the plan is
    sound).  Checked invariants, each tied to Section 3.2.4 / 4.2.3:

    * every worm's link sequence decomposes into an up* prefix followed by
      a down* suffix (route legality);
    * the switch path recorded in the plan matches its link sequence;
    * drops happen only at switches the worm actually crosses, at nodes
      attached to those switches;
    * the phases cover the destination set exactly once overall;
    * every sender is the source or a destination covered in an *earlier*
      phase, and no sender launches worms in two phases.
    """
    from repro.routing.paths import updown_decomposition

    problems: list[str] = []
    dset = frozenset(dests)
    covered_so_far: set[int] = set()
    dropped: list[int] = []
    senders_used: set[int] = set()
    for pi, phase in enumerate(plan.phases):
        eligible = {source} | covered_so_far
        for worm in phase:
            tag = f"phase {pi + 1} worm from {worm.sender}"
            if worm.sender not in eligible:
                problems.append(f"{tag}: sender not yet covered")
            if worm.sender in senders_used:
                problems.append(f"{tag}: sender already sent in an earlier phase")
            senders_used.add(worm.sender)
            start = topo.switch_of_node(worm.sender)
            if worm.switch_path[0] != start:
                problems.append(f"{tag}: path does not start at the sender's switch")
            if path_switches(worm.switch_path[0], list(worm.links)) != list(
                worm.switch_path
            ):
                problems.append(f"{tag}: switch path disagrees with link sequence")
            try:
                updown_decomposition(rt, worm.switch_path[0], list(worm.links))
            except ValueError as exc:
                problems.append(f"{tag}: not an up*/down* path ({exc})")
            if len(worm.drops) != len(worm.switch_path):
                problems.append(f"{tag}: drop list length mismatch")
            for pos, nodes in zip(worm.switch_path, worm.drops):
                for n in nodes:
                    if topo.switch_of_node(n) != pos:
                        problems.append(
                            f"{tag}: drops node {n} at switch {pos}, "
                            f"but it is attached to switch {topo.switch_of_node(n)}"
                        )
            dropped.extend(worm.covered)
        covered_so_far |= {n for worm in phase for n in worm.covered}
    if len(dropped) != len(set(dropped)):
        dupes = sorted({n for n in dropped if dropped.count(n) > 1})
        problems.append(f"destinations dropped more than once: {dupes}")
    missing = sorted(dset - set(dropped))
    extra = sorted(set(dropped) - dset)
    if missing:
        problems.append(f"destinations never covered: {missing}")
    if extra:
        problems.append(f"non-destinations dropped: {extra}")
    return problems


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
class PathWormScheme(MulticastScheme):
    """Multi-phase multi-drop path-based multicast (MDP-LG by default)."""

    name = "path"

    def __init__(self, strategy: str = "lg") -> None:
        if strategy not in ("lg", "greedy"):
            raise ValueError("strategy must be 'lg' or 'greedy'")
        self.strategy = strategy

    def plan(self, net: SimNetwork, source: int,
             dests: list[int]) -> MulticastPathPlan:
        """The worm/phase plan (exposed for tests)."""
        return plan_path_worms(net, source, dests, strategy=self.strategy)

    def make_steer(self, net: SimNetwork, worm_plan: PathWormPlan) -> Callable:
        """Steer function walking the planned path and dropping copies.

        Worm state is the index into the switch path.
        """
        fab = net.fabric

        def steer(switch: int, state):
            idx: int = state
            assert worm_plan.switch_path[idx] == switch
            instrs = [
                Deliver(fab.deliver[n]) for n in worm_plan.drops[idx]
            ]
            if idx + 1 < len(worm_plan.switch_path):
                ch = fab.forward_channel(worm_plan.links[idx], switch)
                instrs.append(Forward([(ch, idx + 1)]))
            return instrs

        return steer

    def execute(
        self,
        net: SimNetwork,
        source: int,
        dests: list[int],
        on_complete: Callable[[MulticastResult], None] | None = None,
    ) -> MulticastResult:
        result = self._new_result(net, source, dests)
        plan = self._cached_plan(
            net,
            ("mdp", source, result.dests),
            lambda: self.plan(net, source, list(result.dests)),
        )
        m = net.params.message_packets

        # Worm send-lists per sender, in phase order.
        sends: dict[int, list[PathWormPlan]] = {}
        for phase in plan.phases:
            for worm_plan in phase:
                sends.setdefault(worm_plan.sender, []).append(worm_plan)

        receivers: dict[int, HostReceiver] = {}

        def on_host_delivery(node: int, time: float) -> None:
            result._record(node, time, on_complete)
            start_sends(node)

        for d in result.dests:
            receivers[d] = HostReceiver(
                net.hosts[d], m,
                on_delivered=lambda t, n=d: on_host_delivery(n, t),
            )

        def start_sends(node: int) -> None:
            for worm_plan in sends.get(node, ()):  # in phase order
                steer = self.make_steer(net, worm_plan)

                def make_launcher(wp=worm_plan, st=steer) -> Callable[[], None]:
                    def launch() -> None:
                        net.hosts[wp.sender].launch_worm(
                            st,
                            initial_state=0,
                            on_delivered=lambda n, _t: receivers[
                                n
                            ].packet_arrived(),
                            label=f"path:{wp.sender}",
                        )

                    return launch

                host_send(
                    net.hosts[node], [make_launcher() for _ in range(m)]
                )

        start_sends(source)
        return result
