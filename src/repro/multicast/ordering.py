"""Destination ordering heuristics for software multicast trees.

The paper's NI-based scheme uses k-binomial trees "with minimized contention
on irregular switch-based networks" (Kesavan et al.).  The key property of
that construction is *clustering*: destinations attached to the same or
nearby switches end up in the same subtree, so subtree traffic stays inside a
region of the network instead of criss-crossing it; and *far-first* sending:
the subtrees informed earliest are the ones with the longest way to go.

We reproduce both properties with a simple ordering: destinations are grouped
by attached switch, groups sorted by routing distance from the source switch
(farthest first), and the recursive-halving tree construction then keeps
consecutive runs of the list -- i.e. whole clusters -- inside single
subtrees.
"""

from __future__ import annotations

from repro.routing.updown import UpDownRouting
from repro.topology.graph import NetworkTopology


def contention_aware_order(
    topo: NetworkTopology, routing: UpDownRouting, source: int, dests: list[int]
) -> list[int]:
    """Order destinations far-cluster-first for tree construction."""
    src_switch = topo.switch_of_node(source)
    groups: dict[int, list[int]] = {}
    for d in dests:
        groups.setdefault(topo.switch_of_node(d), []).append(d)
    ordered_switches = sorted(
        groups,
        key=lambda s: (-routing.distance(src_switch, s), s),
    )
    out: list[int] = []
    for s in ordered_switches:
        out.extend(sorted(groups[s]))
    return out
