"""Common interface and result record for multicast schemes."""

from __future__ import annotations

import abc
import weakref
from dataclasses import dataclass, field
from typing import Callable

from repro.sim.network import SimNetwork


@dataclass
class MulticastResult:
    """Outcome of one multicast operation.

    ``delivery_times[d]`` is the time destination ``d``'s *host* received the
    complete message (after its receive software overhead) -- the paper's
    completion criterion.  ``latency`` is the multicast latency: last host
    delivery minus operation start.
    """

    source: int
    dests: tuple[int, ...]
    start_time: float
    delivery_times: dict[int, float] = field(default_factory=dict)
    complete_time: float | None = None
    dest_hook: "Callable[[int, float], None] | None" = None
    """Optional observer fired on every per-destination host delivery
    (used e.g. by ack-collecting collectives)."""

    @property
    def complete(self) -> bool:
        """All destinations have received the message at the host."""
        return self.complete_time is not None

    @property
    def latency(self) -> float:
        """Multicast latency (raises if the operation has not finished)."""
        if self.complete_time is None:
            raise RuntimeError("multicast not complete")
        return self.complete_time - self.start_time

    def dest_latency(self, dest: int) -> float:
        """Latency to one destination."""
        return self.delivery_times[dest] - self.start_time

    def _record(self, dest: int, time: float,
                on_complete: Callable[["MulticastResult"], None] | None) -> None:
        if dest in self.delivery_times:
            raise RuntimeError(f"destination {dest} delivered twice")
        if dest not in self.dests:
            raise RuntimeError(f"{dest} is not a destination of this multicast")
        self.delivery_times[dest] = time
        if self.dest_hook is not None:
            self.dest_hook(dest, time)
        if len(self.delivery_times) == len(self.dests):
            self.complete_time = time
            if on_complete is not None:
                on_complete(self)


class MulticastScheme(abc.ABC):
    """A multicast implementation: plans statically, executes on a network.

    Subclasses keep no per-operation state; many concurrent operations can
    run through one scheme instance (the load experiments do exactly that).

    Plan caching: every scheme's static planning (trees, worm routes, phase
    schedules) is a pure function of (network, source, destination set).
    :meth:`enable_plan_cache` memoises those computations per network --
    semantically invisible (plans are deterministic) but a large speed-up
    for load experiments that re-issue the same groups.
    """

    name: str = "abstract"

    def enable_plan_cache(self) -> None:
        """Turn on plan memoisation for this scheme instance."""
        self._plan_cache: "weakref.WeakKeyDictionary[SimNetwork, dict]" = (
            weakref.WeakKeyDictionary()
        )

    def _cached_plan(self, net: SimNetwork, key: tuple, compute):
        """Memoise ``compute()`` under (network, epoch, key) if caching is on.

        Plans live in a per-network dict inside a weak-keyed mapping: the
        network object itself is the outer key (never ``id(net)``, whose
        integer can be reused by a later allocation once a network is
        collected), and dropping a network drops its plans.  The routing
        epoch is part of the inner key so an Autonet-style runtime
        reconfiguration (see :meth:`SimNetwork.reconfigure`) invalidates
        every plan cached on the pre-fault orientation.
        """
        cache = getattr(self, "_plan_cache", None)
        if cache is None:
            return compute()
        per_net = cache.get(net)
        if per_net is None:
            per_net = cache[net] = {}
        full_key = (net.routing_epoch, key)
        if full_key not in per_net:
            per_net[full_key] = compute()
        return per_net[full_key]

    def install_plan(self, net: SimNetwork, key: tuple, value) -> bool:
        """Seed the plan cache with an externally computed plan entry.

        The entry is stored under the network's *current* routing epoch, so
        a later reconfiguration invalidates it exactly like a computed plan.
        Used by the group layer to make :meth:`execute` pick up an
        incrementally repaired plan instead of replanning from scratch.
        Returns False (and stores nothing) when caching is disabled.
        """
        cache = getattr(self, "_plan_cache", None)
        if cache is None:
            return False
        per_net = cache.get(net)
        if per_net is None:
            per_net = cache[net] = {}
        per_net[(net.routing_epoch, key)] = value
        return True

    def discard_group_plans(self, net: SimNetwork, source: int,
                            dests: tuple[int, ...]) -> int:
        """Drop cached plans belonging to one (source, destination-set) group.

        Every scheme in this library keys its per-operation plans as
        ``(tag, source, ...)`` with any further tuple components drawn from
        the destination set (``("mdp", src, dests)``, ``("tree", src,
        dests)``, ``("worm", src, chunk)`` with ``chunk`` a subset of
        ``dests``, ...), while shared network-wide tables carry no source
        field (``("downdist",)``).  Matching on that structure -- across
        every epoch -- lets a group invalidate exactly its own entries
        without wiping other groups' plans or the shared tables.  A key
        whose dest components are a *subset* of ``dests`` is also dropped
        (chunked plans); that can touch a same-source group with a nested
        destination set, which costs that group one replan but is never
        unsound.  Returns the number of entries dropped.
        """
        cache = getattr(self, "_plan_cache", None)
        if cache is None:
            return 0
        per_net = cache.get(net)
        if not per_net:
            return 0
        dset = frozenset(dests)
        doomed = []
        for full_key in per_net:
            _epoch, key = full_key
            if len(key) < 2 or key[1] != source:
                continue  # shared, source-free tables survive
            if all(
                frozenset(part) <= dset
                for part in key[2:]
                if isinstance(part, tuple)
            ):
                doomed.append(full_key)
        for full_key in doomed:
            del per_net[full_key]
        return len(doomed)

    @abc.abstractmethod
    def execute(
        self,
        net: SimNetwork,
        source: int,
        dests: list[int],
        on_complete: Callable[[MulticastResult], None] | None = None,
    ) -> MulticastResult:
        """Begin one multicast at the engine's current time.

        Returns the (initially incomplete) result record; the simulation must
        be run for it to fill in.
        """

    def _new_result(self, net: SimNetwork, source: int,
                    dests: list[int]) -> MulticastResult:
        dset = tuple(dict.fromkeys(dests))
        if source in dset:
            raise ValueError("source must not be one of the destinations")
        if len(dset) != len(dests):
            raise ValueError("duplicate destinations")
        if not dset:
            raise ValueError("multicast needs at least one destination")
        for d in (source, *dset):
            if not 0 <= d < net.topo.num_nodes:
                raise ValueError(f"node {d} out of range")
        return MulticastResult(source, dset, net.engine.now)
