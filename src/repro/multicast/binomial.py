"""Multi-phase software multicast over unicast messages (Section 3.1).

The classical baseline: a binomial tree over {source} + destinations, taking
ceil(log2(n)) communication steps.  Every edge of the tree is a full
conventional message -- the sender pays ``o_host`` + DMA + per-packet
``o_ni``, the receiver pays per-packet ``o_ni`` + DMA + ``o_host`` -- which
is precisely why the paper calls multicast latency "dominated by the
communication software overhead" even with lightweight messaging layers.
"""

from __future__ import annotations

from typing import Callable

from repro.multicast.base import MulticastResult, MulticastScheme
from repro.multicast.ordering import contention_aware_order
from repro.sim.messaging import HostReceiver, host_send
from repro.sim.network import SimNetwork


def build_binomial_tree(members: list[int]) -> dict[int, list[int]]:
    """Binomial multicast tree over ``members`` (``members[0]`` is the root).

    Children lists are in *send order*.  The construction is the classic
    recursive halving: in every communication step each informed node informs
    the representative of the farther half of its remaining responsibility
    (callers pass a far-first ordering, so "farther" = "earlier in the
    list"), giving ceil(log2 n) steps total.
    """
    if not members:
        raise ValueError("empty member list")
    if len(set(members)) != len(members):
        raise ValueError("duplicate members")
    tree: dict[int, list[int]] = {m: [] for m in members}

    def rec(mem: list[int]) -> None:
        root, rest = mem[0], mem[1:]
        while rest:
            take = (len(rest) + 1) // 2
            group, rest = rest[:take], rest[take:]
            tree[root].append(group[0])
            rec(group)

    rec(list(members))
    return tree


def tree_depth_in_steps(tree: dict[int, list[int]], root: int) -> int:
    """Completion step count: child ``i`` (0-based) of a node informed at
    step ``s`` is informed at step ``s + i + 1``."""

    def rec(node: int, informed_at: int) -> int:
        worst = informed_at
        for i, c in enumerate(tree[node]):
            worst = max(worst, rec(c, informed_at + i + 1))
        return worst

    return rec(root, 0)


class UnicastBinomialScheme(MulticastScheme):
    """The software baseline: a tree of full unicast messages.

    The default tree is binomial ("the best of these schemes ... the best
    achievable using unicast communication primitives", Section 1).  The
    ``fanout`` knob generalises to the whole hierarchical software family:
    ``fanout=1`` is a chain, small fanouts are k-binomial trees, and
    ``fanout=None`` with ``flat=True`` degenerates to *separate addressing*
    (the source unicasts to every destination itself -- the naive scheme the
    hierarchical algorithms were invented to beat).
    """

    name = "binomial"

    def __init__(self, fanout: int | None = None, flat: bool = False) -> None:
        if fanout is not None and fanout < 1:
            raise ValueError("fanout must be >= 1")
        if flat and fanout is not None:
            raise ValueError("flat separate-addressing ignores fanout")
        self.fanout = fanout
        self.flat = flat

    def plan(self, net: SimNetwork, source: int,
             dests: list[int]) -> dict[int, list[int]]:
        """The multicast tree this scheme would use (exposed for tests)."""
        ordered = contention_aware_order(net.topo, net.routing, source, dests)
        if self.flat:
            tree = {n: [] for n in [source] + ordered}
            tree[source] = list(ordered)
            return tree
        if self.fanout is not None:
            from repro.multicast.kbinomial import build_k_binomial_tree

            return build_k_binomial_tree([source] + ordered, self.fanout)
        return build_binomial_tree([source] + ordered)

    def execute(
        self,
        net: SimNetwork,
        source: int,
        dests: list[int],
        on_complete: Callable[[MulticastResult], None] | None = None,
    ) -> MulticastResult:
        result = self._new_result(net, source, dests)
        tree = self._cached_plan(
            net,
            ("tree", source, result.dests),
            lambda: self.plan(net, source, list(result.dests)),
        )
        n_packets = net.params.message_packets

        def sends_for(node: int) -> None:
            """Issue this node's child messages (back-to-back host sends)."""
            for child in tree[node]:
                receiver = HostReceiver(
                    net.hosts[child],
                    n_packets,
                    on_delivered=_make_on_delivered(child),
                )
                launchers = [
                    _make_launcher(net, node, child, receiver)
                    for _ in range(n_packets)
                ]
                host_send(net.hosts[node], launchers)

        def _make_on_delivered(node: int) -> Callable[[float], None]:
            def fire(time: float) -> None:
                result._record(node, time, on_complete)
                sends_for(node)

            return fire

        sends_for(source)
        return result


def _make_launcher(net: SimNetwork, src: int, dst: int,
                   receiver: HostReceiver) -> Callable[[], None]:
    steer = net.unicast_steer(dst)

    def launch() -> None:
        net.hosts[src].launch_worm(
            steer,
            initial_state=None,
            on_delivered=lambda _node, _t: receiver.packet_arrived(),
            label=f"uni:{src}->{dst}",
        )

    return launch
