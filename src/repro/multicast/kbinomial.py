"""NI-based multicast: k-binomial tree + FPFS smart-NI forwarding (S10).

The scheme of Kesavan & Panda (ICPP'97) as used by the paper: destinations
form a k-binomial tree (recursive doubling, at most ``k`` children per
vertex).  Interior nodes never involve their host processor in forwarding --
the smart NI forwards each packet to all children as soon as it arrives
(First-Packet-First-Served), paying only ``o_ni`` per replica, while the
packet is DMA'd to host memory in the background.

The optimal ``k`` trades serialisation at the NI (more children = more
``o_ni`` blocks back to back) against tree depth (fewer children = more
store-and-forward NI hops); it depends on the destination-set size and the
packet count.  We pick ``k`` by evaluating a contention-free analytic model
of the FPFS pipeline for each candidate (see :func:`estimate_fpfs_completion`)
-- a faithful stand-in for the closed-form selection of the original paper,
whose numeric tables the OCR'd text does not preserve.
"""

from __future__ import annotations

from typing import Callable

from repro.multicast.base import MulticastResult, MulticastScheme
from repro.multicast.ordering import contention_aware_order
from repro.params import SimParams
from repro.sim.messaging import (
    HostReceiver,
    SmartNIForwarder,
    smart_ni_source_send,
)
from repro.sim.network import SimNetwork

MAX_K = 8
"""Largest fan-out considered by the k selector."""


def build_k_binomial_tree(members: list[int], k: int) -> dict[int, list[int]]:
    """k-binomial tree over ``members`` (``members[0]`` is the root).

    "A recursively doubling tree where each vertex has at most k children":
    every node hands the (far) half of its remaining responsibility to a new
    child, up to ``k`` times; the k-th child inherits everything left.
    ``k = 1`` degenerates to a chain, large ``k`` to the plain binomial tree.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if not members:
        raise ValueError("empty member list")
    if len(set(members)) != len(members):
        raise ValueError("duplicate members")
    tree: dict[int, list[int]] = {m: [] for m in members}

    def rec(mem: list[int]) -> None:
        root, rest = mem[0], mem[1:]
        sent = 0
        while rest:
            if sent == k - 1:
                group, rest = rest, []
            else:
                take = (len(rest) + 1) // 2
                group, rest = rest[:take], rest[take:]
            tree[root].append(group[0])
            rec(group)
            sent += 1

    rec(list(members))
    return tree


def base_packet_hop_latency(net: SimNetwork, src: int, dst: int) -> float:
    """Contention-free NI-to-NI latency of one packet between two nodes."""
    p = net.params
    hops = net.routing.distance(
        net.topo.switch_of_node(src), net.topo.switch_of_node(dst)
    )
    header = (
        p.link_delay  # injection
        + p.routing_delay
        + hops * (p.switch_delay + p.link_delay + p.routing_delay)
        + (p.switch_delay + p.link_delay)  # delivery
    )
    return header + p.packet_flits - 1


def estimate_fpfs_completion(
    tree: dict[int, list[int]],
    root: int,
    params: SimParams,
    hop_latency: Callable[[int, int], float],
) -> float:
    """Contention-free completion time of the FPFS pipeline over ``tree``.

    Models, per node: one ``o_ni`` receive block plus one ``o_ni`` replica
    set-up block per child; the injection channel serialising replica packets
    at ``L`` cycles each in FPFS (packet-major) order, gated by each packet's
    arrival; and per-destination host delivery (packet DMAs + ``o_host``).
    Used only to select ``k``; the real simulation measures actual latency
    including network contention.
    """
    m = params.message_packets
    o_ni, o_host = params.o_ni, params.o_host
    per_pkt = params.o_ni_per_packet
    L = params.packet_flits
    bus = params.io_bus_flits_per_cycle

    # avail[n][p]: time packet p sits complete in n's NI memory.
    avail: dict[int, list[float]] = {
        root: [o_host + m * L / bus] * m  # whole message DMA'd, then NI runs
    }
    completion = 0.0
    stack = [root]
    while stack:
        node = stack.pop()
        arr = avail[node]
        children = tree[node]
        # Walk the FPFS program: packet-major replicas, per-child o_ni
        # set-up interleaved at each child's first replica.
        t_ni = arr[0] + (0 if node == root else o_ni)
        inj_free = 0.0
        setup_done: set[int] = set()
        child_arr: dict[int, list[float]] = {c: [] for c in children}
        for p in range(m):
            for ci, c in enumerate(children):
                t_ni = max(t_ni, arr[p])
                if ci not in setup_done:
                    setup_done.add(ci)
                    t_ni += o_ni
                t_ni += per_pkt
                start = max(t_ni, inj_free)
                inj_free = start + L
                child_arr[c].append(start + hop_latency(node, c))
        for c in children:
            avail[c] = child_arr[c]
            stack.append(c)
        if node != root:
            dma_done = arr[0] + o_ni
            for p in range(m):
                dma_done = max(dma_done, arr[p]) + L / bus
            completion = max(completion, dma_done + o_host)
    return completion


def choose_k(
    net: SimNetwork, source: int, ordered_dests: list[int]
) -> tuple[int, dict[int, list[int]]]:
    """Pick the fan-out minimising the analytic FPFS completion estimate."""
    members = [source] + ordered_dests
    best: tuple[float, int, dict[int, list[int]]] | None = None
    for k in range(1, min(MAX_K, len(ordered_dests)) + 1):
        tree = build_k_binomial_tree(members, k)
        est = estimate_fpfs_completion(
            tree, source, net.params,
            lambda a, b: base_packet_hop_latency(net, a, b),
        )
        if best is None or est < best[0]:
            best = (est, k, tree)
    assert best is not None
    return best[1], best[2]


class NIKBinomialScheme(MulticastScheme):
    """NI-supported multicast on a k-binomial tree with FPFS forwarding."""

    name = "ni"

    def __init__(self, fixed_k: int | None = None) -> None:
        """``fixed_k`` pins the fan-out (for ablations); default auto-selects."""
        self.fixed_k = fixed_k

    def plan(self, net: SimNetwork, source: int,
             dests: list[int]) -> tuple[int, dict[int, list[int]]]:
        """(k, tree) this scheme would use (exposed for tests)."""
        ordered = contention_aware_order(net.topo, net.routing, source, dests)
        if self.fixed_k is not None:
            return self.fixed_k, build_k_binomial_tree(
                [source] + ordered, self.fixed_k
            )
        return choose_k(net, source, ordered)

    def execute(
        self,
        net: SimNetwork,
        source: int,
        dests: list[int],
        on_complete: Callable[[MulticastResult], None] | None = None,
    ) -> MulticastResult:
        result = self._new_result(net, source, dests)
        _k, tree = self._cached_plan(
            net,
            ("ktree", source, result.dests),
            lambda: self.plan(net, source, list(result.dests)),
        )
        m = net.params.message_packets
        receivers: dict[int, HostReceiver | SmartNIForwarder] = {}

        def make_launcher(src: int, dst: int) -> Callable[[], None]:
            steer = net.unicast_steer(dst)

            def launch() -> None:
                net.hosts[src].launch_worm(
                    steer,
                    initial_state=None,
                    on_delivered=lambda _n, _t: receivers[dst].packet_arrived(),
                    label=f"ni:{src}->{dst}",
                )

            return launch

        def build(node: int) -> None:
            for c in tree[node]:
                build(c)
            if node == source:
                return
            on_deliv = lambda t, n=node: result._record(n, t, on_complete)
            rows = [
                [make_launcher(node, c) for c in tree[node]] for _ in range(m)
            ]
            if tree[node]:
                receivers[node] = SmartNIForwarder(
                    net.hosts[node], m, rows, on_deliv
                )
            else:
                receivers[node] = HostReceiver(net.hosts[node], m, on_deliv)

        build(source)
        source_rows = [
            [make_launcher(source, c) for c in tree[source]] for _ in range(m)
        ]
        smart_ni_source_send(net.hosts[source], source_rows)
        return result
