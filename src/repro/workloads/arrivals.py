"""Seeded open-loop arrival schedules for collective workloads.

The schedule is materialised *before* the simulation starts and is the sole
source of admissions: the driver admits op ``i`` at ``time_i`` no matter
what is still in flight, which is exactly the open-loop contract -- a slow
scheme cannot throttle its own offered load.

Rate independence is built in rather than tested for: the arrival process
(:mod:`repro.traffic.patterns`) emits a *unit-rate* clock, and only the
scaled ``time = unit_time / rate`` depends on the offered rate.  Per-op
attributes (kind, root) come from a second RNG stream derived from the same
seed, so two schedules at different rates share a byte-identical
``(index, unit_time, kind, root)`` prefix for as long as both are still
admitting.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Sequence

from repro.traffic.patterns import ArrivalProcess, resolve_arrival_process

COLLECTIVE_KINDS = ("broadcast", "allreduce", "barrier")
"""The collectives the workload engine can drive, in canonical order."""


def derive_seed(base_seed: int, *key: object) -> int:
    """Deterministic sub-seed (sha256 over canonical JSON, never hash())."""
    payload = json.dumps([base_seed, list(key)], sort_keys=True,
                         separators=(",", ":"))
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (1 << 62)


@dataclass(frozen=True)
class OpArrival:
    """One scheduled collective admission."""

    index: int
    time: float
    """Admission time in cycles (``unit_time / rate``)."""

    unit_time: float
    """Rate-independent arrival clock -- the prefix-sharing invariant lives
    here, not in ``time`` (dividing by different rates is not exact)."""

    kind: str
    root: int

    def key(self) -> tuple[int, float, str, int]:
        """The rate-independent identity used by prefix/digest checks."""
        return (self.index, self.unit_time, self.kind, self.root)


def arrival_schedule(
    seed: int,
    *,
    rate: float,
    duration: float,
    num_nodes: int,
    kinds: Sequence[str] = COLLECTIVE_KINDS,
    process: "str | ArrivalProcess" = "poisson",
) -> list[OpArrival]:
    """Materialise the admission schedule for one workload run.

    Args:
        seed: workload seed; the gap and attribute streams are derived from
            it, so the schedule is a pure function of the arguments.
        rate: offered load in operations per cycle (whole machine).
        duration: admission horizon in cycles; ops whose scaled time lands
            at or past it are not admitted (the run then drains).
        num_nodes: root draw range.
        kinds: collective kinds to mix, drawn uniformly per op.  Order
            matters for determinism; pass a subset of
            :data:`COLLECTIVE_KINDS` for single-collective cells.
        process: temporal arrival process name or callable
            (:data:`repro.traffic.patterns.ARRIVAL_PROCESSES`).
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if not kinds:
        raise ValueError("at least one collective kind required")
    for k in kinds:
        if k not in COLLECTIVE_KINDS:
            raise ValueError(
                f"unknown collective kind {k!r}; "
                f"choose from {list(COLLECTIVE_KINDS)}"
            )
    gap_rng = random.Random(derive_seed(seed, "workload-gaps"))
    attr_rng = random.Random(derive_seed(seed, "workload-attrs"))
    clock = resolve_arrival_process(process)(gap_rng)

    kinds = tuple(kinds)
    ops: list[OpArrival] = []
    for unit_time in clock:
        time = unit_time / rate
        if time >= duration:
            break
        # Attribute draws happen for every *emitted* clock tick in order,
        # so the attribute stream position only depends on the op index --
        # never on the rate.
        kind = kinds[attr_rng.randrange(len(kinds))]
        root = attr_rng.randrange(num_nodes)
        ops.append(OpArrival(len(ops), time, unit_time, kind, root))
    return ops


def schedule_digest(ops: Sequence[OpArrival]) -> str:
    """sha256 over the rate-independent schedule identity.

    Uses ``repr`` of the float unit times (shortest round-trip repr), so
    equal digests mean byte-identical schedules.
    """
    h = hashlib.sha256()
    for op in ops:
        h.update(
            f"{op.index}:{op.unit_time!r}:{op.kind}:{op.root}\n".encode()
        )
    return h.hexdigest()
