"""Data-center collective workloads under open-loop deadline traffic.

The paper's figures time one multicast at a time; this package asks its
question -- NI support or switch support? -- under the traffic that makes
it urgent today: ML-cluster collectives (broadcast, allreduce, barrier)
arriving as a sustained, *open-loop* stream with per-operation deadlines.

* :mod:`repro.workloads.arrivals` -- the seeded arrival schedule: a
  rate-independent unit-rate clock (Poisson or bursty ML-step, from
  :mod:`repro.traffic.patterns`) plus per-op kind/root draws, so schedules
  at different rates share their op sequence byte for byte.
* :mod:`repro.workloads.driver` -- the engine: admits every scheduled op at
  its arrival time regardless of what is still in flight (the open-loop
  contract), runs it through :mod:`repro.collectives.ops` over the chosen
  multicast scheme, and accounts completions against deadlines into a
  :class:`repro.metrics.QuantileDigest` (p50/p99/p999, miss fraction,
  saturation throughput).

The ``collective-load`` experiment
(:mod:`repro.experiments.collective_load`) sweeps this engine over
(scheme x collective x load) through the cell runner; ``benchmarks/
bench_workloads.py`` pins the deterministic raw-speed trajectory.
"""

from repro.workloads.arrivals import (
    COLLECTIVE_KINDS,
    OpArrival,
    arrival_schedule,
    schedule_digest,
)
from repro.workloads.driver import (
    OpRecord,
    WorkloadReport,
    drive_admissions,
    run_workload,
    run_workload_cell,
)

__all__ = [
    "COLLECTIVE_KINDS",
    "OpArrival",
    "OpRecord",
    "WorkloadReport",
    "arrival_schedule",
    "drive_admissions",
    "run_workload",
    "run_workload_cell",
    "schedule_digest",
]
