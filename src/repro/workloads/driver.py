"""The open-loop collective workload engine.

:func:`drive_admissions` is the low-level loop: given a materialised
arrival schedule (:mod:`repro.workloads.arrivals`), it admits every
operation at its scheduled time -- *never* waiting for earlier operations
to finish -- and records completion times as the collectives fire their
callbacks.  The fuzz collectives oracle drives scenarios through this same
function, so the tested admission path and the fuzzed one are one path.

:func:`run_workload` is the full experiment cell: calibrate per-kind
deadlines against an isolated baseline, admit the schedule, drain, and
fold completions into a :class:`~repro.metrics.QuantileDigest` tail
summary (p50/p99/p999, deadline-miss fraction, saturation throughput).

The open-loop contract, concretely: the number of admitted operations is a
pure function of ``(seed, rate, duration, kinds, process)`` -- the same for
a fast scheme and a slow one -- so comparing schemes at one load point
compares them under identical offered traffic.  A closed loop (admit on
completion) would let the slow scheme throttle its own stimulus and hide
exactly the congestion collapse the tail percentiles exist to show.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.collectives import ops as collectives
from repro.metrics.quantiles import QuantileDigest
from repro.params import SimParams
from repro.sim.network import SimNetwork
from repro.topology.graph import NetworkTopology
from repro.traffic.load import saturated_by_shortfall
from repro.workloads.arrivals import (
    COLLECTIVE_KINDS,
    OpArrival,
    arrival_schedule,
    derive_seed,
    schedule_digest,
)

DEFAULT_DEADLINE_FACTOR = 4.0
"""Deadline budget per op = factor x the kind's isolated baseline latency."""

DEFAULT_DRAIN_FACTOR = 2.0
"""Post-admission drain window = factor x the admission duration."""

SATURATION_THRESHOLD = 0.9
"""Same completion-shortfall rule as :mod:`repro.traffic.load`."""

_MAX_EVENTS = 5_000_000
"""Engine safety valve per workload run (a saturated mix must terminate)."""


@dataclass
class OpRecord:
    """One admitted collective operation's lifecycle."""

    index: int
    kind: str
    root: int
    admit_time: float
    deadline: float | None
    """Absolute completion deadline, or None when deadlines are off."""

    complete_time: float | None = None
    gave_up: bool = False
    """Reliable delivery exhausted its retries (faulted runs only)."""

    delivered: int = 0
    """Distinct per-node completion notifications -- the exactly-once
    audit surface (each participant must appear exactly once)."""

    @property
    def complete(self) -> bool:
        return self.complete_time is not None

    @property
    def latency(self) -> float:
        if self.complete_time is None:
            raise RuntimeError(f"op {self.index} ({self.kind}) not complete")
        return self.complete_time - self.admit_time

    @property
    def met_deadline(self) -> bool:
        """Deadline verdict; completion *exactly at* the deadline is met.

        The boundary is a contract, not an accident: latencies are sums of
        integer-cycle overheads, so an op tuned to land on its budget must
        count as on-time on every platform.
        """
        if self.deadline is None:
            return self.complete
        return (
            self.complete_time is not None
            and self.complete_time <= self.deadline
        )


def collective_baselines(
    topo: NetworkTopology,
    params: SimParams,
    scheme_name: str,
    kinds: Sequence[str] = COLLECTIVE_KINDS,
    **scheme_kw,
) -> dict[str, float]:
    """Isolated (zero-contention) latency of each collective kind.

    Each kind runs alone, from root 0, on a fresh network -- the deadline
    calibration reference.  Deterministic: no random draws anywhere.
    """
    out: dict[str, float] = {}
    for kind in kinds:
        net = SimNetwork(topo, params)
        rec = _admit(net, scheme_name, kind, 0, scheme_kw, None, None)
        net.run(max_events=_MAX_EVENTS)
        if not rec.complete:
            raise RuntimeError(
                f"isolated {kind} baseline did not complete on an idle "
                f"network ({scheme_name})"
            )
        out[kind] = rec.latency
    return out


def _admit(
    net: SimNetwork,
    scheme_name: str,
    kind: str,
    root: int,
    scheme_kw: Mapping[str, object],
    record: "OpRecord | None",
    reliable,
) -> OpRecord:
    """Launch one collective now; return its (live) record."""
    rec = record or OpRecord(0, kind, root, net.engine.now, None)

    def done(res) -> None:
        rec.complete_time = net.engine.now
        rec.delivered = len(getattr(res, "node_times", getattr(res, "acked", ())))

    if kind == "broadcast":
        if reliable is not None:
            dests = [n for n in range(net.topo.num_nodes) if n != root]

            def rel_done(res) -> None:
                rec.complete_time = net.engine.now
                rec.delivered = len(res.acked)

            res = reliable.send(root, dests, rel_done)
            # A send that exhausts retries never calls back; the gave_up
            # flag is read off the result after the drain (see run_workload).
            rec._reliable = res  # type: ignore[attr-defined]
        else:
            collectives.broadcast(net, root, scheme_name, done, **scheme_kw)
    elif kind == "allreduce":
        collectives.allreduce(net, root, scheme_name, done, **scheme_kw)
    elif kind == "barrier":
        collectives.barrier(net, root, scheme_name, done, **scheme_kw)
    else:
        raise ValueError(f"unknown collective kind {kind!r}")
    return rec


def drive_admissions(
    net: SimNetwork,
    scheme_name: str,
    schedule: Sequence[OpArrival],
    *,
    deadline_budget: Mapping[str, float] | None = None,
    scheme_kw: Mapping[str, object] | None = None,
    reliable=None,
) -> list[OpRecord]:
    """Arm the whole schedule on the engine; open-loop by construction.

    Every op is scheduled *before* the run starts, purely from its arrival
    time -- no admission consults any completion state, so the offered
    sequence cannot depend on how the network is coping.  Run the engine
    afterwards; records fill in as collectives complete.

    Args:
        deadline_budget: per-kind relative budgets (cycles); an op's
            absolute deadline is ``admit_time + budget[kind]``.  None
            disables deadline accounting.
        reliable: a :class:`~repro.chaos.ReliableMulticast` to route
            broadcast ops through (faulted runs); other kinds reject it
            since their control planes have no retry path.
    """
    kw = dict(scheme_kw or {})
    if reliable is not None:
        bad = sorted({op.kind for op in schedule} - {"broadcast"})
        if bad:
            raise ValueError(
                f"reliable delivery only covers broadcast workloads; "
                f"schedule contains {bad}"
            )
    records: list[OpRecord] = []
    for op in schedule:
        budget = None
        if deadline_budget is not None:
            budget = float(deadline_budget[op.kind])
        rec = OpRecord(
            index=op.index,
            kind=op.kind,
            root=op.root,
            admit_time=op.time,
            deadline=None if budget is None else op.time + budget,
        )
        records.append(rec)
        net.engine.at(
            op.time,
            lambda rec=rec: _admit(
                net, scheme_name, rec.kind, rec.root, kw, rec, reliable
            ),
        )
    return records


@dataclass
class WorkloadReport:
    """Everything one workload cell reports (JSON-able via to_value)."""

    scheme: str
    kinds: tuple[str, ...]
    process: str
    rate: float
    duration: float
    warmup: float
    deadline_factor: float
    baselines: dict[str, float]
    schedule_sha: str
    records: list[OpRecord] = field(default_factory=list)
    faults_fired: int = 0
    gave_up: int = 0
    events: int = 0
    """Engine events fired by the run -- the deterministic work measure the
    raw-speed benchmark trajectory tracks (wall clock is not committed)."""

    # ------------------------------------------------------------------
    # Derived accounting (measured = admitted at or after warmup)
    # ------------------------------------------------------------------
    @property
    def admitted(self) -> int:
        return len(self.records)

    def _measured(self) -> list[OpRecord]:
        return [r for r in self.records if r.admit_time >= self.warmup]

    @property
    def measured(self) -> int:
        return len(self._measured())

    @property
    def completed(self) -> int:
        return sum(1 for r in self._measured() if r.complete)

    @property
    def missed(self) -> int:
        """Measured ops that blew their deadline *or* never completed."""
        return sum(1 for r in self._measured() if not r.met_deadline)

    @property
    def miss_fraction(self) -> float:
        n = self.measured
        return self.missed / n if n else 0.0

    @property
    def measured_window(self) -> float:
        return max(0.0, self.duration - self.warmup)

    @property
    def throughput(self) -> float:
        """Measured completions per cycle (0.0 on a zero-length window)."""
        w = self.measured_window
        return self.completed / w if w > 0 else 0.0

    @property
    def saturated(self) -> bool:
        return saturated_by_shortfall(
            self.measured, self.completed, SATURATION_THRESHOLD
        )

    def latency_digest(self) -> QuantileDigest:
        """Tail digest over measured *completed* op latencies."""
        digest = QuantileDigest()
        for r in self._measured():
            if r.complete:
                digest.add(r.latency)
        return digest

    def digest(self) -> str:
        """sha256 replay fingerprint over every op's full lifecycle."""
        h = hashlib.sha256()
        h.update(self.schedule_sha.encode())
        for r in self.records:
            line = (
                f"{r.index}:{r.kind}:{r.root}:{r.admit_time!r}:"
                f"{r.complete_time!r}:{int(r.met_deadline)}:"
                f"{int(r.gave_up)}:{r.delivered}\n"
            )
            h.update(line.encode())
        return h.hexdigest()

    def to_value(self) -> dict:
        """Plain-data cell value (what the cell cache stores)."""
        per_kind: dict[str, dict] = {}
        for kind in self.kinds:
            recs = [r for r in self._measured() if r.kind == kind]
            digest = QuantileDigest()
            for r in recs:
                if r.complete:
                    digest.add(r.latency)
            per_kind[kind] = {
                "measured": len(recs),
                "completed": sum(1 for r in recs if r.complete),
                "missed": sum(1 for r in recs if not r.met_deadline),
                "latency": digest.summary(),
            }
        return {
            "scheme": self.scheme,
            "kinds": list(self.kinds),
            "process": self.process,
            "rate": self.rate,
            "admitted": self.admitted,
            "measured": self.measured,
            "completed": self.completed,
            "missed": self.missed,
            "miss_fraction": self.miss_fraction,
            "throughput": self.throughput,
            "saturated": self.saturated,
            "latency": self.latency_digest().summary(),
            "per_kind": per_kind,
            "baselines": dict(self.baselines),
            "deadline_factor": self.deadline_factor,
            "faults_fired": self.faults_fired,
            "gave_up": self.gave_up,
            "events": self.events,
            "schedule_digest": self.schedule_sha,
        }


def run_workload(
    topo: NetworkTopology,
    params: SimParams,
    scheme_name: str,
    *,
    seed: int,
    rate: float,
    duration: float,
    warmup: float = 0.0,
    kinds: Sequence[str] = COLLECTIVE_KINDS,
    process: str = "poisson",
    deadline_factor: float = DEFAULT_DEADLINE_FACTOR,
    drain_factor: float = DEFAULT_DRAIN_FACTOR,
    fault_count: int = 0,
    reconfig_latency: float = 500.0,
    **scheme_kw,
) -> WorkloadReport:
    """One complete workload cell: calibrate, admit, drain, account.

    Args:
        rate: offered load in collective operations per cycle (whole
            machine) -- the workload sweep's x-axis.
        duration: admission horizon (cycles); warmup ops load the network
            but are excluded from the statistics, as in the load driver.
        deadline_factor: per-op deadline = this x the kind's isolated
            baseline latency (measured fresh per cell, so deadlines track
            the topology and parameter set automatically).
        fault_count: runtime link failures to inject (broadcast-only
            workloads; ops then go through reliable retried delivery).
        **scheme_kw: forwarded to the multicast scheme (e.g. NI variants).
    """
    if warmup >= duration:
        raise ValueError("warmup must be smaller than duration")
    kinds = tuple(kinds)
    schedule = arrival_schedule(
        seed,
        rate=rate,
        duration=duration,
        num_nodes=topo.num_nodes,
        kinds=kinds,
        process=process,
    )
    baselines = collective_baselines(
        topo, params, scheme_name, kinds, **scheme_kw
    )
    budget = {k: deadline_factor * v for k, v in baselines.items()}

    net = SimNetwork(topo, params)
    reliable = None
    if fault_count > 0:
        if kinds != ("broadcast",):
            raise ValueError(
                "faulted workloads are broadcast-only (allreduce/barrier "
                "control planes have no retry path)"
            )
        import random

        from repro.chaos import FaultInjector, FaultSchedule, ReliableMulticast
        from repro.multicast import make_scheme

        fault_rng = random.Random(derive_seed(seed, "workload-faults"))
        fault_sched = FaultSchedule.random(
            topo, fault_count, fault_rng, window=(warmup, duration)
        )
        FaultInjector(net, fault_sched, reconfig_latency).arm()
        reliable = ReliableMulticast(net, make_scheme(scheme_name, **scheme_kw))

    records = drive_admissions(
        net,
        scheme_name,
        schedule,
        deadline_budget=budget,
        scheme_kw=scheme_kw,
        reliable=reliable,
    )
    net.run(
        until=duration + drain_factor * duration, max_events=_MAX_EVENTS
    )

    gave_up = 0
    for rec in records:
        res = getattr(rec, "_reliable", None)
        if res is not None and res.gave_up:
            rec.gave_up = True
            gave_up += 1
    return WorkloadReport(
        scheme=scheme_name,
        kinds=kinds,
        process=process,
        rate=rate,
        duration=float(duration),
        warmup=float(warmup),
        deadline_factor=deadline_factor,
        baselines=baselines,
        schedule_sha=schedule_digest(schedule),
        records=records,
        faults_fired=net.chaos.faults_fired,
        gave_up=gave_up,
        events=net.engine.events_fired,
    )


def run_workload_cell(
    params: SimParams,
    scheme: str,
    *,
    seed: int,
    collective: str,
    rate: float,
    duration: float,
    warmup: float,
    process: str,
    deadline_factor: float,
    fault_count: int = 0,
    scheme_kw: Mapping[str, object] | None = None,
) -> dict:
    """Cell-runner entry point: topology from params, report as plain data.

    ``collective`` is one kind name or a ``"+"``-joined mix (canonical
    order), e.g. ``"broadcast+allreduce"``.
    """
    from repro.topology.irregular import generate_topology_family

    topo = generate_topology_family(params, 1)[0]
    report = run_workload(
        topo,
        params,
        scheme,
        seed=seed,
        rate=rate,
        duration=duration,
        warmup=warmup,
        kinds=tuple(collective.split("+")),
        process=process,
        deadline_factor=deadline_factor,
        fault_count=fault_count,
        **dict(scheme_kw or {}),
    )
    value = report.to_value()
    value["digest"] = report.digest()
    return value
