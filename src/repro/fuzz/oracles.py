"""Invariant oracles: everything a scenario run must satisfy.

The paper's Figures 6-11 compare three multicast support levels under the
claim that all of them implement the *same* semantics: exactly-once delivery
to every destination over legal up*/down* routes, on any connected irregular
topology.  This module turns that claim into executable checks, run after
every fuzz scenario:

* **delivery** -- the operation completes, every destination's host receives
  the message exactly once, never before the operation started;
* **quiescence** -- no channel, CPU, or NI is still held after the engine
  drains (a leak here is the event-model analogue of a deadlocked worm);
* **hop-legality** -- the *dynamic* replication tree of every worm launched
  (read back through :meth:`repro.sim.worm.Worm.hop_records`) is contiguous,
  ends every branch in a delivery channel, and decomposes into up* then
  down* (reusing :func:`repro.routing.paths.updown_decomposition`);
* **plan-static** -- the path scheme's worm/phase plan passes
  :func:`repro.multicast.pathworm.verify_plan`; the tree scheme's turn
  switch really down-covers the destination set;
* **epoch-static** -- for scenarios with a fault schedule: the
  epoch-sequence verifier (:mod:`repro.analyze.epochs`) statically proves
  CDG acyclicity and reachability completeness at every routing epoch the
  schedule reaches, before any dynamic replay is attempted;
* **header** -- the bit-string header round-trips and fits the configured
  packet (the lint model rule's capacity formula, checked dynamically);
* **reachability** -- the reachability table is internally consistent: the
  root covers all nodes, attached nodes are self-reachable, port strings
  are subsets of their switch's own string;
* **conservation** -- per-channel flit/worm counters equal the sum over
  audited worms that crossed the channel (flits are neither lost nor
  duplicated in flight);
* **lane-conservation** -- virtual-channel bookkeeping balances on every
  channel: lane grants equal lane releases after the run, no lane is still
  owned, and the concurrent-owner high-water mark never exceeded the
  configured ``vc_count``;
* **monotone-time** -- trace timestamps never decrease and the engine clock
  ends at/after the last delivery;
* **scheme-differential** -- every scheme in the roster delivers the same
  destination set for the same (topology, operation) cell;
* **backend-differential** -- the merged static-route tree produces
  identical per-destination tail times on the worm-level event backend and
  the flit-level reference backend (skipped when deterministic unicast
  routes re-converge and no merged tree exists, and for chaos scenarios --
  the flit-level reference has no fault support);
* **chaos** -- for scenarios with a runtime fault schedule
  (:mod:`repro.chaos`): every armed fault is accounted for (fired or
  skipped), no send gives up (exactly-once-after-retry), and a second run
  of the same seed + schedule produces a byte-identical trace digest;
* **churn** -- for scenarios with a membership churn stream
  (:mod:`repro.groups`): a graft/prune-patched dynamic group and a
  replan-every-change twin are driven through the same join/leave ops,
  and after every op both must deliver exactly the current member set
  (exactly-once under churn), with every accepted patch passing the
  static plan verifiers;
* **collectives** -- for scenarios with an open-loop collective admission
  schedule (:mod:`repro.workloads`): every scheme drives the identical
  schedule through the workload engine's admission loop, every admitted
  operation must complete by the drain horizon with its kind's exact
  participant accounting (exactly-once delivery under overlapping
  collectives), the network must end quiescent, and channel/lane
  conservation must hold after the drain.

Chaos scenarios change the dynamic checks, not the bar: each scheme is
wrapped in :class:`~repro.chaos.ReliableMulticast`, deliveries are the
first-ack-wins ack set, aborted worms are audited to a relaxed standard
(their partial routes must still be continuous, legal prefixes; their
released channels must carry no traffic), and hop legality is judged
against the routing *epoch* each worm launched under -- pre-fault worms
against the original orientation, post-retry worms against the
reconfigured one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.chaos import FaultInjector, FaultSchedule, ReliableMulticast
from repro.multicast import make_scheme
from repro.multicast.pathworm import plan_path_worms, verify_plan
from repro.routing.paths import updown_decomposition
from repro.routing.reachability import (
    ReachabilityTable,
    decode_mask,
    header_mask,
)
from repro.routing.updown import UpDownRouting
from repro.sim.crossval import (
    multicast_route,
    run_event_scenario,
    run_flit_scenario,
)
from repro.sim.network import SimNetwork
from repro.sim.tracelog import TraceLog
from repro.fuzz.scenario import FuzzScenario, SchemeSpec, spec_label

MAX_EVENTS = 500_000
"""Event budget per scheme run; exceeding it is reported as a runaway."""

FLIT_BITS = 8
"""Bits per flit (1-byte flits), as in the lint header-capacity rule."""

ORACLES = (
    "delivery",
    "quiescence",
    "hop-legality",
    "plan-static",
    "epoch-static",
    "header",
    "reachability",
    "conservation",
    "lane-conservation",
    "monotone-time",
    "scheme-differential",
    "backend-differential",
    "chaos",
    "churn",
    "collectives",
)
"""Every oracle name, in report order."""


@dataclass(frozen=True)
class Violation:
    """One broken invariant, attributed to an oracle and a context."""

    oracle: str
    context: str
    """Scheme label (``path(strategy=greedy)``), ``topology``, or
    ``backends`` -- where the violation was observed."""

    message: str

    def render(self) -> str:
        return f"[{self.oracle}] {self.context}: {self.message}"


@dataclass
class ScenarioReport:
    """Outcome of one scenario's full oracle pass."""

    scenario: FuzzScenario
    violations: list[Violation] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    deliveries: dict[str, dict[int, float]] = field(default_factory=dict)
    """Per-scheme-label map of destination -> host delivery time."""

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        """Deterministic multi-line report (byte-stable across runs)."""
        sc = self.scenario
        head = (
            f"scenario {sc.digest()[:12]}"
            f" switches={sc.topo.num_switches} nodes={sc.topo.num_nodes}"
            f" links={len(sc.topo.links)} source={sc.source}"
            f" dests={list(sc.dests)}"
            f" schemes=[{', '.join(spec_label(s) for s in sc.schemes)}]"
        )
        if sc.degraded_links:
            head += f" degraded={list(sc.degraded_links)}"
        if sc.fault_schedule:
            head += f" faults={[lk for _t, lk in sc.fault_schedule]}"
        if sc.churn_ops:
            head += f" churn={[f'{op}:{n}' for op, n in sc.churn_ops]}"
        if sc.collective_ops:
            head += (
                " collectives="
                f"{[f'{k}@{t:g}->r{r}' for t, k, r in sc.collective_ops]}"
            )
        if sc.label:
            head += f" ({sc.label})"
        lines = [head]
        for note in self.skipped:
            lines.append(f"  skipped: {note}")
        if self.ok:
            lines.append("  ok")
        else:
            lines.append(f"  {len(self.violations)} violation(s):")
            for v in self.violations:
                lines.append(f"    {v.render()}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Per-scheme dynamic run
# ----------------------------------------------------------------------
def _audit_worm_hops(
    net: SimNetwork, label: str, out: list[Violation]
) -> dict[int, tuple[int, int]]:
    """Check every launched worm's hop tree; return per-channel traffic.

    Returns ``{channel uid: (flits, worms)}`` accumulated over the audited
    worms, which the conservation oracle compares against the fabric's own
    counters.  Each worm is judged against the routing tables of the epoch
    it launched under (a runtime reconfiguration must not retroactively
    outlaw in-flight routes).  Aborted worms get the relaxed standard:
    their partial chains must still be continuous legal prefixes, but need
    not end in a delivery channel, and only hops that committed traffic
    (``hop_counted``) count toward conservation.
    """
    expected: dict[int, tuple[int, int]] = {}
    for w_index, worm in enumerate(net.worm_log or ()):
        rt = net.routing_history[worm.epoch]
        hops = worm.hop_records()
        counted = worm.hop_counted()
        tag = f"worm {w_index} ({worm.label or 'unlabelled'})"
        if not hops:
            out.append(Violation(
                "hop-legality", label, f"{tag} recorded no hops"))
            continue
        children: dict[int, list[int]] = {i: [] for i in range(len(hops))}
        root_idx = None
        for i, (parent, ch) in enumerate(hops):
            if counted[i]:
                flits, worms = expected.get(ch.uid, (0, 0))
                expected[ch.uid] = (flits + worm.length, worms + 1)
            if parent is None:
                if ch.kind != "inject":
                    out.append(Violation(
                        "hop-legality", label,
                        f"{tag} roots at non-injection channel {ch.name}"))
                root_idx = i
            else:
                children[parent].append(i)
                p_ch = hops[parent][1]
                from_sw = ch.from_switch if ch.kind != "inject" else None
                if p_ch.to_switch is None or from_sw != p_ch.to_switch:
                    out.append(Violation(
                        "hop-legality", label,
                        f"{tag} discontinuous: {p_ch.name} -> {ch.name}"))
        if root_idx is None:
            out.append(Violation(
                "hop-legality", label, f"{tag} has no injection root"))
            continue
        # Every leaf must deliver; every root-to-leaf chain must be up*/down*.
        # Aborted worms are cut short, so their leaves may be non-delivery
        # hops -- the chain must still be a legal up*/down* prefix.
        for i, (parent, ch) in enumerate(hops):
            if children[i]:
                continue
            if ch.kind != "deliver":
                if not worm.aborted:
                    out.append(Violation(
                        "hop-legality", label,
                        f"{tag} leaves the worm stranded on {ch.name}"))
                    continue
            chain = []
            j: int | None = i
            while j is not None:
                chain.append(hops[j][1])
                j = hops[j][0]
            chain.reverse()
            links = [c.link for c in chain if c.kind == "forward"]
            start = chain[0].to_switch
            where = (
                f"to node {ch.to_node}" if ch.kind == "deliver"
                else f"ending on {ch.name} (aborted)"
            )
            try:
                updown_decomposition(rt, start, links)
            except ValueError as exc:
                out.append(Violation(
                    "hop-legality", label,
                    f"{tag} illegal route {where}: {exc}"))
    return expected


def _check_conservation(
    net: SimNetwork,
    expected: dict[int, tuple[int, int]],
    label: str,
    out: list[Violation],
) -> None:
    for ch in net.fabric.all_channels():
        flits, worms = expected.get(ch.uid, (0, 0))
        if ch.flits_carried != flits or ch.worms_carried != worms:
            out.append(Violation(
                "conservation", label,
                f"channel {ch.name} carried {ch.flits_carried} flits / "
                f"{ch.worms_carried} worms but audited worms account for "
                f"{flits} flits / {worms} worms"))


def _check_lane_conservation(
    net: SimNetwork, label: str, out: list[Violation]
) -> None:
    """Virtual-channel bookkeeping: grants/releases balance, lanes bounded."""
    vcs = net.params.vc_count
    for ch in net.fabric.all_channels():
        if ch.peak_owned > vcs:
            out.append(Violation(
                "lane-conservation", label,
                f"channel {ch.name} had {ch.peak_owned} concurrent lane "
                f"owners but vc_count is {vcs}"))
        if ch.grants != ch.releases:
            out.append(Violation(
                "lane-conservation", label,
                f"channel {ch.name} granted {ch.grants} lane(s) but "
                f"released {ch.releases}"))
        if ch.owned_lanes:
            out.append(Violation(
                "lane-conservation", label,
                f"channel {ch.name} still owns {ch.owned_lanes} lane(s) "
                "after the run"))


def _execute_scheme(scenario: FuzzScenario, spec: SchemeSpec):
    """One fresh network + one run of the scheme (chaos-wrapped if needed).

    Returns ``(net, deliveries, start_time, complete)`` where deliveries is
    destination -> first host delivery time: the result record's map on a
    fault-free run, the reliable layer's first-ack-wins set under a fault
    schedule.
    """
    net = SimNetwork(scenario.topo, scenario.params)
    net.trace = TraceLog(capacity=1_000_000)
    net.worm_log = []
    scheme = make_scheme(spec[0], **dict(spec[1]))
    if scenario.fault_schedule:
        injector = FaultInjector(
            net, FaultSchedule.from_pairs(list(scenario.fault_schedule))
        )
        injector.arm()
        reliable = ReliableMulticast(net, scheme)
        op = reliable.send(scenario.source, list(scenario.dests))
        net.engine.run(max_events=MAX_EVENTS)
        return net, dict(op.acked), op.start_time, op.complete
    result = scheme.execute(net, scenario.source, list(scenario.dests))
    net.engine.run(max_events=MAX_EVENTS)
    return net, dict(result.delivery_times), result.start_time, result.complete


def run_scheme(
    scenario: FuzzScenario, spec: SchemeSpec
) -> tuple[dict[int, float] | None, list[Violation]]:
    """Execute one scheme on a fresh network and run the dynamic oracles.

    Returns the per-destination host delivery times (``None`` when the run
    crashed before completing) and the violations observed.
    """
    label = spec_label(spec)
    out: list[Violation] = []
    try:
        net, deliveries, start_time, complete = _execute_scheme(
            scenario, spec)
    except (RuntimeError, ValueError, AssertionError, KeyError,
            TypeError) as exc:
        out.append(Violation(
            "delivery", label, f"run crashed: {type(exc).__name__}: {exc}"))
        return None, out

    # delivery: exactly once, never early, all destinations.
    dset = set(scenario.dests)
    got = set(deliveries)
    if missing := sorted(dset - got):
        out.append(Violation(
            "delivery", label, f"destinations never delivered: {missing}"))
    if extra := sorted(got - dset):
        out.append(Violation(
            "delivery", label, f"non-destinations delivered: {extra}"))
    if not complete and not (dset - got):
        out.append(Violation(
            "delivery", label, "all destinations delivered but the result "
            "record never completed"))
    for d in sorted(got & dset):
        when = deliveries[d]
        if not math.isfinite(when) or when < start_time:
            out.append(Violation(
                "delivery", label,
                f"destination {d} delivered at {when!r}, before start "
                f"{start_time!r}"))

    # quiescence: nothing may still hold a channel or processor.
    try:
        net.assert_quiescent()
    except AssertionError as exc:
        out.append(Violation("quiescence", label, str(exc)))

    # monotone-time: traced events in nondecreasing order, clock at the end.
    records = net.trace.records()
    for earlier, later in zip(records, records[1:]):
        if later.time < earlier.time:
            out.append(Violation(
                "monotone-time", label,
                f"trace went backwards: {earlier.event}@{earlier.time} then "
                f"{later.event}@{later.time}"))
            break
    last_delivery = max(deliveries.values(), default=0.0)
    if net.engine.now < last_delivery:
        out.append(Violation(
            "monotone-time", label,
            f"engine stopped at {net.engine.now} before the last delivery "
            f"at {last_delivery}"))

    # hop-legality + conservation over every worm actually launched.
    expected = _audit_worm_hops(net, label, out)
    _check_conservation(net, expected, label, out)
    _check_lane_conservation(net, label, out)

    # plan-static: re-derive and verify the scheme's static plan (against
    # the network's *final* topology and routing, which under a fault
    # schedule is the post-reconfiguration state -- exactly what a retry
    # would plan on).
    if spec[0] == "path":
        strategy = dict(spec[1]).get("strategy", "lg")
        plan = plan_path_worms(
            net, scenario.source, list(scenario.dests), strategy=strategy
        )
        for problem in verify_plan(
            net.topo, net.routing, scenario.source,
            list(scenario.dests), plan,
        ):
            out.append(Violation("plan-static", label, problem))
    elif spec[0] == "tree" and not dict(spec[1]).get("max_header_dests"):
        scheme = make_scheme(spec[0], **dict(spec[1]))
        plan = scheme.plan(net, scenario.source, list(scenario.dests))
        if not net.reach.covers(plan.turn_switch, dset):
            out.append(Violation(
                "plan-static", label,
                f"turn switch {plan.turn_switch} does not down-cover "
                f"{sorted(dset)}"))

    # chaos: fault accounting, no give-ups, and seed-replay byte-identity.
    if scenario.fault_schedule:
        armed = len(scenario.fault_schedule)
        accounted = net.chaos.faults_fired + net.chaos.faults_skipped
        if accounted != armed:
            out.append(Violation(
                "chaos", label,
                f"{armed} fault(s) armed but {accounted} accounted for "
                f"({net.chaos.faults_fired} fired, "
                f"{net.chaos.faults_skipped} skipped)"))
        if net.chaos.gave_up:
            out.append(Violation(
                "chaos", label,
                f"{net.chaos.gave_up} send(s) gave up before delivering "
                "to every destination"))
        try:
            net2, _, _, _ = _execute_scheme(scenario, spec)
        except (RuntimeError, ValueError, AssertionError, KeyError,
                TypeError) as exc:
            out.append(Violation(
                "chaos", label,
                f"replay crashed: {type(exc).__name__}: {exc}"))
        else:
            if net2.trace.digest() != net.trace.digest():
                out.append(Violation(
                    "chaos", label,
                    "replay of the same seed + schedule produced a "
                    "different trace digest"))

    return deliveries, out


# ----------------------------------------------------------------------
# Scenario-level checks
# ----------------------------------------------------------------------
def _check_topology(scenario: FuzzScenario, out: list[Violation]) -> None:
    """Reachability- and header-consistency of the system itself."""
    topo = scenario.topo
    rt = UpDownRouting.build(topo, orientation=scenario.params.routing_tree)
    reach = ReachabilityTable.build(rt)
    all_nodes = frozenset(range(topo.num_nodes))
    if reach.down_reach(rt.tree.root) != all_nodes:
        out.append(Violation(
            "reachability", "topology",
            f"root switch {rt.tree.root} does not down-reach every node"))
    for s in range(topo.num_switches):
        local = set(topo.nodes_on_switch(s))
        if not local <= reach.down_reach(s):
            out.append(Violation(
                "reachability", "topology",
                f"switch {s} does not down-reach its own attached nodes"))
        for lk in rt.down_links_of(s):
            if not reach.port_reach(s, lk) <= reach.down_reach(s):
                out.append(Violation(
                    "reachability", "topology",
                    f"switch {s} port on link {lk.link_id} claims nodes "
                    "its switch cannot down-reach"))

    if decode_mask(header_mask(scenario.dests)) != frozenset(scenario.dests):
        out.append(Violation(
            "header", "topology",
            "bit-string header does not round-trip the destination set"))
    if any(name == "tree" for name, _ in scenario.schemes):
        n = topo.num_nodes
        node_id_bits = max(1, math.ceil(math.log2(n)))
        header_flits = math.ceil((n + node_id_bits) / FLIT_BITS)
        if header_flits >= scenario.params.packet_flits:
            out.append(Violation(
                "header", "topology",
                f"bit-string header needs {header_flits} flits but packets "
                f"are only {scenario.params.packet_flits} flits"))


def _check_backends(scenario: FuzzScenario, report: ScenarioReport) -> None:
    """Static-route differential: event backend vs flit-level reference."""
    topo, params = scenario.topo, scenario.params
    rt = UpDownRouting.build(topo, orientation=params.routing_tree)
    try:
        multicast_route(topo, rt, scenario.source, scenario.dests)
    except ValueError:
        report.skipped.append(
            "backend-differential (deterministic routes re-converge; "
            "no merged tree exists)")
        return
    jobs = [(0, scenario.source, tuple(scenario.dests))]
    event_deliveries = run_event_scenario(topo, params, jobs)
    flit_deliveries = run_flit_scenario(topo, params, jobs)
    if event_deliveries != flit_deliveries:
        keys = sorted(set(event_deliveries) | set(flit_deliveries))
        diff = [
            f"{k}: event={event_deliveries.get(k)} "
            f"flit={flit_deliveries.get(k)}"
            for k in keys
            if event_deliveries.get(k) != flit_deliveries.get(k)
        ]
        report.violations.append(Violation(
            "backend-differential", "backends",
            "delivery maps disagree: " + "; ".join(diff)))


def _check_churn(scenario: FuzzScenario, report: ScenarioReport) -> None:
    """Churn differential: patched dynamic group vs replan-every-change twin.

    Runs fault-free on a fresh network per scheme (the chaos injector and
    the churn stream are orthogonal stressors; their interaction is covered
    by the paired-churn harness's ``fault_steps``).  After the initial send
    and after every op, both groups must deliver exactly the current member
    set, and every patch the patched group accepted must have passed the
    static verifiers (surfaced through its ``verify_failures`` counter).
    """
    from repro.groups import DynamicGroupManager

    for spec in scenario.schemes:
        label = spec_label(spec)
        try:
            net = SimNetwork(scenario.topo, scenario.params)
            patched_mgr = DynamicGroupManager(net, default_scheme=spec[0])
            twin_mgr = DynamicGroupManager(net, default_scheme=spec[0])
            kw = dict(spec[1])
            patched = patched_mgr.create(
                scenario.source, list(scenario.dests), repair=True, **kw)
            twin = twin_mgr.create(
                scenario.source, list(scenario.dests), repair=False, **kw)
            stages = [("initial", None)] + [
                (f"op {i} ({op} {node})", (op, node))
                for i, (op, node) in enumerate(scenario.churn_ops)
            ]
            for stage, change in stages:
                if change is not None:
                    op, node = change
                    for g in (patched, twin):
                        if op == "join":
                            g.join(node)
                        else:
                            g.leave(node)
                want = tuple(sorted(patched.members))
                rp = patched.send()
                net.engine.run(max_events=MAX_EVENTS)
                rt_ = twin.send()
                net.engine.run(max_events=MAX_EVENTS)
                delivered_patched = tuple(sorted(rp.delivery_times))
                delivered_twin = tuple(sorted(rt_.delivery_times))
                if not rp.complete or delivered_patched != want:
                    report.violations.append(Violation(
                        "churn", label,
                        f"{stage}: patched group delivered {list(delivered_patched)}, "
                        f"members are {list(want)}"))
                if delivered_twin != delivered_patched:
                    report.violations.append(Violation(
                        "churn", label,
                        f"{stage}: patched {list(delivered_patched)} != "
                        f"replanned {list(delivered_twin)}"))
            if patched.stats.verify_failures:
                report.violations.append(Violation(
                    "churn", label,
                    f"repair produced {patched.stats.verify_failures} "
                    "illegal patch(es) (caught by the static verifiers "
                    "and replanned, but the repair functions promise "
                    "legal-or-None)"))
        except (RuntimeError, ValueError, AssertionError, KeyError,
                TypeError) as exc:
            report.violations.append(Violation(
                "churn", label,
                f"churn run crashed: {type(exc).__name__}: {exc}"))


def _check_collectives(scenario: FuzzScenario, report: ScenarioReport) -> None:
    """Collectives accounting: the open-loop admission loop under oracles.

    Per scheme, a fresh network drives the scenario's admission schedule
    through the workload engine's :func:`repro.workloads.driver
    .drive_admissions` -- the very loop the ``collective-load`` experiment
    uses -- then requires: every admitted op completed by the drain horizon
    (an incomplete collective on a fully drained engine is a hang, the
    collective analogue of a deadlocked worm); each op's per-node
    accounting matches its kind exactly (broadcast and allreduce notify
    every non-root node once, a barrier releases every participant
    including the root); the network ends quiescent; and channel/lane
    conservation holds after the drain (reported under those oracles'
    own names).
    """
    from repro.workloads.arrivals import OpArrival
    from repro.workloads.driver import drive_admissions

    expected_notified = {
        "broadcast": scenario.topo.num_nodes - 1,
        "allreduce": scenario.topo.num_nodes - 1,
        "barrier": scenario.topo.num_nodes,
    }
    schedule = [
        OpArrival(i, t, t, kind, root)
        for i, (t, kind, root) in enumerate(scenario.collective_ops)
    ]
    for spec in scenario.schemes:
        label = f"collectives:{spec_label(spec)}"
        try:
            net = SimNetwork(scenario.topo, scenario.params)
            net.worm_log = []
            records = drive_admissions(
                net, spec[0], schedule, scheme_kw=dict(spec[1])
            )
            net.engine.run(max_events=MAX_EVENTS)
            if net.engine.pending:
                report.violations.append(Violation(
                    "collectives", label,
                    f"engine hit the {MAX_EVENTS}-event budget with "
                    f"{net.engine.pending} event(s) still pending"))
                continue
            for rec in records:
                if not rec.complete:
                    report.violations.append(Violation(
                        "collectives", label,
                        f"op {rec.index} ({rec.kind} root {rec.root}, "
                        f"admitted at {rec.admit_time:g}) never completed "
                        "on a drained engine"))
                    continue
                if rec.complete_time < rec.admit_time:
                    report.violations.append(Violation(
                        "collectives", label,
                        f"op {rec.index} completed at {rec.complete_time!r} "
                        f"before its admission at {rec.admit_time!r}"))
                want = expected_notified[rec.kind]
                if rec.delivered != want:
                    report.violations.append(Violation(
                        "collectives", label,
                        f"op {rec.index} ({rec.kind}) notified "
                        f"{rec.delivered} node(s); its kind requires "
                        f"exactly {want}"))
            try:
                net.assert_quiescent()
            except AssertionError as exc:
                report.violations.append(Violation(
                    "collectives", label, str(exc)))
            expected = _audit_worm_hops(net, label, report.violations)
            _check_conservation(net, expected, label, report.violations)
            _check_lane_conservation(net, label, report.violations)
        except (RuntimeError, ValueError, AssertionError, KeyError,
                TypeError) as exc:
            report.violations.append(Violation(
                "collectives", label,
                f"collectives run crashed: {type(exc).__name__}: {exc}"))


def run_oracles(scenario: FuzzScenario) -> ScenarioReport:
    """Run every oracle on one scenario; the full differential pass."""
    report = ScenarioReport(scenario=scenario)
    _check_topology(scenario, report.violations)

    # epoch-static: before any dynamic replay, statically prove the fault
    # schedule keeps the multicast CDG acyclic and the reachability strings
    # complete at every routing epoch it reaches.  A schedule that is
    # provably unsafe would make the dynamic chaos run's failures
    # uninterpretable, so it is caught here first.
    if scenario.fault_schedule:
        from repro.analyze.epochs import verify_scenario_epochs

        for problem in verify_scenario_epochs(scenario):
            report.violations.append(Violation(
                "epoch-static", "topology", problem.message()))

    for spec in scenario.schemes:
        deliveries, violations = run_scheme(scenario, spec)
        report.violations.extend(violations)
        if deliveries is not None:
            report.deliveries[spec_label(spec)] = deliveries

    if scenario.churn_ops:
        _check_churn(scenario, report)

    if scenario.collective_ops:
        _check_collectives(scenario, report)

    # scheme-differential: identical delivery sets across the roster.
    by_set: dict[tuple[int, ...], list[str]] = {}
    for label in sorted(report.deliveries):
        key = tuple(sorted(report.deliveries[label]))
        by_set.setdefault(key, []).append(label)
    if len(by_set) > 1:
        parts = [
            f"{labels} -> {list(key)}" for key, labels in sorted(by_set.items())
        ]
        report.violations.append(Violation(
            "scheme-differential", "schemes",
            "delivery sets diverge: " + "; ".join(parts)))

    if scenario.compare_backends:
        if scenario.fault_schedule:
            report.skipped.append(
                "backend-differential (fault schedule armed; the "
                "flit-level reference backend has no fault support)")
        else:
            _check_backends(scenario, report)
    return report
